"""E7 — Section 5.4: the cost of instrumenting array accesses.

Both checkers conflate array elements with array-level metadata (which
makes them imprecise, so cycle detection is disabled for all four
configurations), and xalan6/xalan9 are excluded (they run out of
memory in the paper).

Paper: DoubleChecker 3.1X → 3.7X with arrays; Velodrome 6.3X → 7.3X.
The shape checked here: arrays add a moderate relative overhead to
both checkers, and DoubleChecker stays well below Velodrome either way.
"""

import pytest

from repro.harness import section54


@pytest.fixture(scope="module")
def result(write_result):
    outcome = section54.arrays(trials=2)
    write_result("array_instrumentation", outcome.render())
    return outcome


def test_generate_arrays_cell(benchmark, result):
    benchmark.pedantic(
        lambda: section54.arrays(["hedc"], trials=1),
        rounds=1,
        iterations=1,
    )


def test_xalan_benchmarks_excluded(result):
    assert "xalan6" not in result.rows
    assert "xalan9" not in result.rows


def test_arrays_add_overhead_to_both_checkers(result):
    dc, dc_arrays, velodrome, velodrome_arrays = result.geomeans()
    assert dc_arrays > dc
    assert velodrome_arrays > velodrome


def test_overhead_increase_is_moderate(result):
    """Paper: +19% for DoubleChecker, +16% for Velodrome."""
    dc, dc_arrays, velodrome, velodrome_arrays = result.geomeans()
    assert dc_arrays / dc < 1.8
    assert velodrome_arrays / velodrome < 1.8


def test_doublechecker_still_wins_with_arrays(result):
    dc, dc_arrays, velodrome, velodrome_arrays = result.geomeans()
    assert dc_arrays < velodrome_arrays
    assert dc < velodrome
