"""Executor hot-path throughput microbenchmark.

Times the scheduler loop itself — uninstrumented (no listeners, the
Figure 7 baseline configuration) and with the single-run DoubleChecker
pipeline attached — and records steps/sec into
``results/BENCH_executor.json`` so future optimization work has a
committed baseline to compare against.

Each configuration is measured in two arms: the columnar batch
interpreter (the default) and the reference per-op interpreter
(``DOUBLECHECKER_BATCH_EXECUTOR=0``).  Both arms must execute the
exact same schedule — the batch interpreter is a pure optimization —
so the step counts are asserted identical.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_executor_throughput.py -q

or standalone (no pytest-benchmark timings, JSON only)::

    PYTHONPATH=src python benchmarks/bench_executor_throughput.py
"""

import json
import os
import platform
import sys
from contextlib import contextmanager

BENCH_NAMES = ["hsqldb6", "xalan6", "sor"]
RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_executor.json"
)


@contextmanager
def _batch_env(enabled):
    from repro.runtime.lowering import BATCH_ENV

    saved = os.environ.get(BATCH_ENV)
    os.environ[BATCH_ENV] = "1" if enabled else "0"
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(BATCH_ENV, None)
        else:
            os.environ[BATCH_ENV] = saved


def _measure():
    """steps/sec per workload for the executor configurations."""
    from repro.harness import runner

    report = {}
    for name in BENCH_NAMES:
        spec = runner.final_spec(name)
        with _batch_env(True):
            baseline = runner.baseline_steps(name, seed=0)
            single = runner.run_single(name, spec, seed=0)
        with _batch_env(False):
            baseline_nb = runner.baseline_steps(name, seed=0)
            single_nb = runner.run_single(name, spec, seed=0)
        # the batch interpreter must replay the identical schedule
        assert baseline.steps == baseline_nb.steps, name
        assert single.execution.steps == single_nb.execution.steps, name
        report[name] = {
            "steps": baseline.steps,
            "baseline_steps_per_second": round(baseline.steps_per_second),
            "baseline_nobatch_steps_per_second": round(
                baseline_nb.steps_per_second
            ),
            "single_run_steps_per_second": round(
                single.execution.steps_per_second
            ),
            "single_run_nobatch_steps_per_second": round(
                single_nb.execution.steps_per_second
            ),
        }
    return report


def write_report():
    report = {
        "python": platform.python_version(),
        "workloads": _measure(),
    }
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def test_executor_throughput(benchmark):
    """Times the uninstrumented hsqldb6 run and refreshes the JSON
    baseline as a side effect."""
    from repro.harness import runner

    result = benchmark.pedantic(
        lambda: runner.baseline_steps("hsqldb6", seed=0),
        rounds=3,
        iterations=1,
    )
    assert result.steps_per_second > 0
    report = write_report()
    for stats in report["workloads"].values():
        assert stats["baseline_steps_per_second"] > 0
        assert stats["baseline_nobatch_steps_per_second"] > 0
        assert stats["single_run_steps_per_second"] > 0
        assert stats["single_run_nobatch_steps_per_second"] > 0
        # instrumentation costs something; baseline must stay faster
        assert (
            stats["baseline_steps_per_second"]
            > stats["single_run_steps_per_second"]
        )


if __name__ == "__main__":
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), "..", "src")
    )
    printed = write_report()
    json.dump(printed, sys.stdout, indent=2, sort_keys=True)
    print()
