"""E6 — Section 5.4: performance across iterative refinement.

Paper: single-run mode slows programs 3.4X at the strictest
specification, 3.6X halfway through refinement, and 3.6X at the final
specification — i.e., performance during refinement is similar to
performance after it, so the methodology itself is affordable.
"""

import pytest

from repro.harness import section54

# refinement is re-run per benchmark here; a representative subset
# keeps the bench under a minute while spanning the profile space
NAMES = ["eclipse6", "hsqldb6", "lusearch9", "xalan9", "tsp", "montecarlo"]


@pytest.fixture(scope="module")
def result(write_result):
    outcome = section54.refinement_phases(NAMES, trials=2)
    write_result("refinement_phases", outcome.render())
    return outcome


def test_generate_refinement_phase_cell(benchmark, result):
    benchmark.pedantic(
        lambda: section54.refinement_phases(["hedc"], trials=1),
        rounds=1,
        iterations=1,
    )


def test_phases_have_similar_cost(result):
    """All three phases land within a tight band of each other."""
    start, half, final = result.geomeans()
    ratios = [start / final, half / final]
    for ratio in ratios:
        assert 0.7 <= ratio <= 1.4, (start, half, final)


def test_all_phases_show_overhead(result):
    start, half, final = result.geomeans()
    assert min(start, half, final) > 1.5
