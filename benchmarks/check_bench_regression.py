"""Throughput-regression gate for the committed benchmark baselines.

Re-runs the measurement functions behind every committed
``results/BENCH_*.json`` baseline and compares each throughput metric
(keys named ``*steps_per_second``) against the stored value.  A fresh
value more than ``--threshold`` (default 30%) below the baseline is a
regression: the script prints every offending metric and exits
nonzero, so CI — or a pre-commit run — fails loudly instead of
silently shipping a slower analysis pipeline.

Counters that are deterministic (visit counts, check counts) are not
compared here; the benchmark suites assert their invariants
themselves.  Throughput baselines are machine-dependent, so after an
intentional change — or on new hardware — regenerate them with::

    PYTHONPATH=src python benchmarks/bench_executor_throughput.py
    PYTHONPATH=src python benchmarks/bench_analysis_throughput.py

Run the gate with::

    PYTHONPATH=src python benchmarks/check_bench_regression.py
"""

import argparse
import importlib
import json
import os
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))

#: committed baseline -> benchmark module that regenerates it
BASELINES = {
    "BENCH_executor.json": "bench_executor_throughput",
    "BENCH_analysis.json": "bench_analysis_throughput",
}


def _throughput_metrics(node, prefix=""):
    """Yield (dotted-path, value) for every ``*steps_per_second`` key."""
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (int, float)) and key.endswith(
                "steps_per_second"
            ):
                yield path, value
            else:
                yield from _throughput_metrics(value, path)


def check(threshold):
    sys.path.insert(0, BENCH_DIR)
    regressions = []
    checked = 0
    for filename, module_name in BASELINES.items():
        path = os.path.join(BENCH_DIR, "..", "results", filename)
        if not os.path.exists(path):
            print(f"-- {filename}: no committed baseline, skipping")
            continue
        with open(path) as handle:
            committed = dict(_throughput_metrics(json.load(handle)))
        module = importlib.import_module(module_name)
        fresh = dict(_throughput_metrics({"workloads": module._measure()}))
        for metric, baseline in sorted(committed.items()):
            current = fresh.get(metric)
            if current is None:
                regressions.append(
                    f"{filename}:{metric}: missing from fresh measurement"
                )
                continue
            checked += 1
            floor = baseline * (1.0 - threshold)
            marker = "ok"
            if current < floor:
                regressions.append(
                    f"{filename}:{metric}: {current:.0f} < {floor:.0f} "
                    f"(baseline {baseline:.0f}, -{threshold:.0%} floor)"
                )
                marker = "REGRESSION"
            print(
                f"{marker:>10}  {filename}:{metric}  "
                f"baseline={baseline:.0f} fresh={current:.0f}"
            )
    return checked, regressions


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional slowdown before failing (default 0.30)",
    )
    args = parser.parse_args(argv)
    checked, regressions = check(args.threshold)
    if regressions:
        print(f"\n{len(regressions)} regression(s) of {checked} metrics:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"\nall {checked} throughput metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(BENCH_DIR, "..", "src"))
    raise SystemExit(main())
