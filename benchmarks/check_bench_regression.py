"""Throughput-regression gate for the committed benchmark baselines.

Re-runs the measurement functions behind every committed
``results/BENCH_*.json`` baseline, compares each throughput metric
(keys named ``*steps_per_second``) against the stored value, and
prints a per-metric PASS/FAIL table.  A fresh value below its
baseline's tolerance floor is a regression: the script lists every
offending metric and exits nonzero, so CI — or a pre-commit run —
fails loudly instead of silently shipping a slower analysis pipeline.

Each baseline carries its own default tolerance (see ``BASELINES``);
``--tolerance`` overrides them all, e.g. a tight local gate with
``--tolerance 0.05`` or a loose cross-machine CI gate with
``--tolerance 0.60``.  The ``BENCH_obs.json`` baseline additionally
re-checks the telemetry overhead budget: disabled-mode overhead is
measured *paired* against the pre-telemetry loop (machine-independent,
see ``bench_obs_overhead``), so its 2% bound holds at full strength
even where raw throughput tolerances must be loose.

Counters that are deterministic (visit counts, check counts) are not
compared here; the benchmark suites assert their invariants
themselves.  Throughput baselines are machine-dependent, so after an
intentional change — or on new hardware — regenerate them with::

    PYTHONPATH=src python benchmarks/bench_executor_throughput.py
    PYTHONPATH=src python benchmarks/bench_analysis_throughput.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_fault_overhead.py
    PYTHONPATH=src python benchmarks/bench_access_barrier.py

Run the gate with::

    PYTHONPATH=src python benchmarks/check_bench_regression.py
"""

import argparse
import importlib
import json
import os
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))

#: committed baseline -> (benchmark module regenerating it, default
#: fractional tolerance for its throughput metrics)
BASELINES = {
    "BENCH_executor.json": ("bench_executor_throughput", 0.30),
    "BENCH_analysis.json": ("bench_analysis_throughput", 0.30),
    "BENCH_obs.json": ("bench_obs_overhead", 0.30),
    "BENCH_faults.json": ("bench_fault_overhead", 0.30),
    "BENCH_access.json": ("bench_access_barrier", 0.30),
    "BENCH_sharded.json": ("bench_sharded_analysis", 0.30),
}

#: fallback tolerance for baselines discovered on disk but missing
#: from ``BASELINES`` (gated via their embedded ``module`` field)
DISCOVERED_TOLERANCE = 0.30


def discover_baselines():
    """Every committed baseline, including ones not wired into
    ``BASELINES``.

    A ``results/BENCH_*.json`` that names its regenerating benchmark in
    a top-level ``module`` field is gated automatically (with a warning
    that it should be added to ``BASELINES``); one that does not is
    reported as a gate failure — a committed baseline must never
    silently skip the gate.

    Returns ``(entries, warnings, failures)`` where ``entries`` maps
    filename -> (module_name, tolerance).
    """
    entries = dict(BASELINES)
    warnings = []
    failures = []
    results_dir = os.path.join(BENCH_DIR, "..", "results")
    if os.path.isdir(results_dir):
        for filename in sorted(os.listdir(results_dir)):
            if not (filename.startswith("BENCH_") and filename.endswith(".json")):
                continue
            if filename in entries:
                continue
            try:
                with open(os.path.join(results_dir, filename)) as handle:
                    module_name = json.load(handle).get("module")
            except (OSError, ValueError) as exc:
                failures.append(f"{filename}: unreadable baseline: {exc}")
                continue
            if module_name:
                warnings.append(
                    f"{filename}: not in BASELINES; gating via its "
                    f"'module' field ({module_name}) — add it to "
                    f"BASELINES in {os.path.basename(__file__)}"
                )
                entries[filename] = (module_name, DISCOVERED_TOLERANCE)
            else:
                failures.append(
                    f"{filename}: committed baseline is not wired into the "
                    f"gate: add it to BASELINES or embed a top-level "
                    f"'module' field naming its benchmark module"
                )
    return entries, warnings, failures


def _throughput_metrics(node, prefix=""):
    """Yield (dotted-path, value) for every ``*steps_per_second`` key."""
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (int, float)) and key.endswith(
                "steps_per_second"
            ):
                yield path, value
            else:
                yield from _throughput_metrics(value, path)


def _render_table(rows):
    """Plain fixed-width PASS/FAIL table (no repro imports: the gate
    must stay runnable even when the package itself is broken)."""
    headers = ("status", "baseline", "metric", "committed", "fresh", "floor")
    table = [headers] + [
        (
            status,
            filename,
            metric,
            f"{committed:.0f}" if committed is not None else "-",
            f"{fresh:.0f}" if fresh is not None else "-",
            f"{floor:.0f}" if floor is not None else "-",
        )
        for status, filename, metric, committed, fresh, floor in rows
    ]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def check(tolerance=None):
    """Compare fresh measurements against every committed baseline.

    ``tolerance`` overrides the per-baseline defaults when given.
    Returns ``(checked, regressions, table_rows)``.
    """
    sys.path.insert(0, BENCH_DIR)
    baselines, warnings, failures = discover_baselines()
    for warning in warnings:
        print(f"-- warning: {warning}")
    regressions = list(failures)
    rows = []
    checked = 0
    for filename, (module_name, default_tolerance) in baselines.items():
        path = os.path.join(BENCH_DIR, "..", "results", filename)
        if not os.path.exists(path):
            print(f"-- {filename}: no committed baseline, skipping")
            continue
        allowed = default_tolerance if tolerance is None else tolerance
        with open(path) as handle:
            committed = dict(_throughput_metrics(json.load(handle)))
        module = importlib.import_module(module_name)
        fresh_workloads = module._measure()
        fresh = dict(_throughput_metrics({"workloads": fresh_workloads}))
        for metric, baseline in sorted(committed.items()):
            current = fresh.get(metric)
            if current is None:
                regressions.append(
                    f"{filename}:{metric}: missing from fresh measurement"
                )
                rows.append(("MISSING", filename, metric, baseline, None, None))
                continue
            checked += 1
            floor = baseline * (1.0 - allowed)
            if current < floor:
                regressions.append(
                    f"{filename}:{metric}: {current:.0f} < {floor:.0f} "
                    f"(baseline {baseline:.0f}, -{allowed:.0%} floor)"
                )
                rows.append(("FAIL", filename, metric, baseline, current, floor))
            else:
                rows.append(("PASS", filename, metric, baseline, current, floor))
        # the telemetry bench also carries a machine-independent paired
        # overhead budget; re-check it on the fresh measurement
        if hasattr(module, "check_overhead_budget"):
            fresh_report = {
                "overhead_budget_percent": module.OVERHEAD_BUDGET_PERCENT,
                "workloads": fresh_workloads,
            }
            for violation in module.check_overhead_budget(fresh_report):
                checked += 1
                regressions.append(f"{filename}:overhead: {violation}")
                rows.append(
                    ("FAIL", filename, f"overhead:{violation.split(':')[0]}",
                     None, None, None)
                )
    return checked, regressions, rows


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=(
            "allowed fractional slowdown before failing; overrides the "
            "per-baseline defaults (executor/analysis/obs: 0.30)"
        ),
    )
    # backward-compatible alias for the pre-table flag name
    parser.add_argument(
        "--threshold",
        type=float,
        dest="tolerance",
        help=argparse.SUPPRESS,
    )
    args = parser.parse_args(argv)
    checked, regressions, rows = check(args.tolerance)
    if rows:
        print(_render_table(rows))
    if regressions:
        print(f"\n{len(regressions)} regression(s) of {checked} checks:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"\nall {checked} checks within tolerance")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(BENCH_DIR, "..", "src"))
    raise SystemExit(main())
