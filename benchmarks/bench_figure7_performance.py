"""E3 — Figure 7: normalized execution time of every configuration.

Regenerates the headline performance comparison on the 16
compute-bound benchmarks under their final refined specifications,
reporting the modelled normalized execution times (calibrated
event-cost model) and measured wall-clock ratios.

Paper claims checked (shape, not absolute numbers):

* geomean ordering: first run < second run < single-run < Velodrome
  (paper: 1.9X < 2.4X < 3.6X < 6.1X);
* single-run mode beats Velodrome on every benchmark except xalan6,
  where imprecise SCCs make PCD dominate (the crossover);
* single-run mode's GC share is visible (long-lived read/write logs),
  Velodrome's is comparatively small.
"""

import pytest

from repro.harness import figure7, runner


@pytest.fixture(scope="module")
def result(write_result):
    outcome = figure7.generate(trials=2, first_trials=2)
    write_result("figure7_performance", outcome.render())
    return outcome


def test_generate_figure7_cell(benchmark, result):
    """Times one (benchmark, configuration) cell: Velodrome on hsqldb6 —
    and validates the headline shape under --benchmark-only."""
    spec = runner.final_spec("hsqldb6")
    benchmark.pedantic(
        lambda: runner.run_velodrome("hsqldb6", spec, 0),
        rounds=1,
        iterations=1,
    )
    means = result.geomeans()
    assert means["first"] < means["second"] < means["single"] < means["velodrome"]
    rows = {r.name: r for r in result.rows}
    assert rows["xalan6"].normalized["single"] > rows["xalan6"].normalized["velodrome"]


def test_geomean_ordering_matches_paper(result):
    means = result.geomeans()
    assert means["first"] < means["second"] < means["velodrome"]
    assert means["single"] < means["velodrome"]
    assert means["first"] < means["single"]


def test_geomean_bands(result):
    """The calibrated model lands near the paper's 6.1/3.6/1.9/2.4."""
    means = result.geomeans()
    assert 5.0 <= means["velodrome"] <= 7.5
    assert 2.5 <= means["single"] <= 4.5
    assert 1.3 <= means["first"] <= 2.4
    assert 1.7 <= means["second"] <= 3.1


def test_xalan6_crossover(result):
    """The one benchmark where Velodrome outperforms single-run mode."""
    rows = {r.name: r for r in result.rows}
    xalan6 = rows["xalan6"]
    assert xalan6.normalized["single"] > xalan6.normalized["velodrome"]
    others = [
        r for r in result.rows if r.name != "xalan6"
    ]
    wins = sum(
        1 for r in others if r.normalized["single"] < r.normalized["velodrome"]
    )
    assert wins >= len(others) - 2  # DoubleChecker wins almost everywhere


def test_gc_share_driven_by_logging(result):
    for row in result.rows:
        assert row.gc_fraction["single"] >= row.gc_fraction["velodrome"]


def test_measured_overheads_follow_same_ordering(result):
    """The Python wall-clock ratios (secondary signal) agree on the
    cheap-vs-expensive split between the first run and single-run."""
    measured = result.measured_geomeans()
    assert measured["first"] < measured["single"]
