"""Access-barrier benchmark: batch/fused fast paths vs reference.

Times the hubstress/ICD *single-run* configuration — the paper's main
mode, where every instrumented access pays the Octet barrier **and**
read/write logging — in three arms:

``batch``
    the columnar batch executor feeding the fused per-access barrier
    with pre-lowered, pre-interned column values (the default
    configuration);
``fused``
    the reference per-op interpreter with the fused barrier
    (``DOUBLECHECKER_BATCH_EXECUTOR=0``) — the configuration the
    previous committed baseline measured;
``reference``
    both optimizations off (additionally
    ``DOUBLECHECKER_BARRIER_FASTPATH=0``): the classify-everything
    reference pipeline.

Reports instrumented steps/sec plus the fast-path hit rate (the
fraction of barriers resolved without the slow path — the quantity the
paper's entire efficiency argument rests on) and asserts that all arms
produce identical deterministic counters: both fast paths must be pure
optimizations.

Records ``results/BENCH_access.json`` so future work has a committed
baseline (``benchmarks/check_bench_regression.py`` compares fresh runs
against it).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_access_barrier.py -q

or standalone (JSON only)::

    PYTHONPATH=src python benchmarks/bench_access_barrier.py

CI smoke-tests the harness with ``--iterations 1 --out /tmp/...`` (a
shrunken workload written away from the committed baseline).
"""

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import replace

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_access.json"
)

#: wall-clock repetitions per configuration (minimum is reported)
REPS = 3

#: hubstress/ICD single-run steps/sec measured at the commit *before*
#: the fused barrier landed, on the machine that produced the committed
#: BENCH_access.json.  Machine-dependent — regenerate it together with
#: the baseline on new hardware (run this file at the pre-change commit,
#: or scale by the machine ratio of any other committed BENCH metric).
PRECHANGE_STEPS_PER_SECOND = 11009

#: the acceptance bar for the fused pipeline against that number
SPEEDUP_TARGET = 1.4

#: hubstress/ICD single-run steps/sec of the fused arm at the commit
#: before the batch executor landed (same machine caveat as above)
BATCH_PRECHANGE_STEPS_PER_SECOND = 25569

#: the acceptance bar for the batch executor against the fused arm's
#: pre-change number (kept below the ~3.9x measured headline so the
#: assertion survives machine noise)
BATCH_SPEEDUP_TARGET = 3.0


def _hubstress_spec(iterations=None):
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_analysis_throughput import hubstress_spec

    spec = hubstress_spec()
    if iterations is not None:
        # smoke configuration: shrink both the worker loops and the hub
        # rounds so `--iterations 1` finishes in seconds
        spec = replace(
            spec, iterations=iterations, hub_rounds=1, hub_scan_iters=50
        )
    return spec


def _single_run(fastpath, batch, iterations=None, reps=None):
    from repro.core.doublechecker import DoubleChecker
    from repro.harness.runner import make_scheduler
    from repro.octet.runtime import FASTPATH_ENV
    from repro.runtime.lowering import BATCH_ENV
    from repro.spec.specification import AtomicitySpecification
    from repro.workloads.builder import build_program

    spec = _hubstress_spec(iterations)
    aspec = AtomicitySpecification.initial(build_program(spec))
    saved_fp = os.environ.get(FASTPATH_ENV)
    saved_batch = os.environ.get(BATCH_ENV)
    os.environ[FASTPATH_ENV] = "1" if fastpath else "0"
    os.environ[BATCH_ENV] = "1" if batch else "0"
    try:
        best = None
        for _ in range(reps or REPS):
            start = time.perf_counter()
            checker = DoubleChecker(aspec)
            result = checker.run_single(build_program(spec), make_scheduler(0))
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[0]:
                best = (elapsed, result)
    finally:
        for env, saved in ((FASTPATH_ENV, saved_fp), (BATCH_ENV, saved_batch)):
            if saved is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = saved
    elapsed, result = best
    octet = result.octet_stats
    icd = result.icd_stats
    return {
        "steps_per_second": round(result.execution.steps / elapsed),
        "barriers": octet.barriers,
        "fast_path": octet.fast_path,
        "fast_path_fused": octet.fast_path_fused,
        "fast_path_rate": round(octet.fast_path / octet.barriers, 4),
        # deterministic outputs all arms must agree on exactly
        "idg_edges": icd.idg_edges,
        "log_entries": icd.log_entries,
        "sccs": icd.sccs,
        "violations": len(result.violations.records),
    }


def _measure(iterations=None, reps=None):
    batch = _single_run(True, True, iterations, reps)
    fused = _single_run(True, False, iterations, reps)
    reference = _single_run(False, False, iterations, reps)
    return {
        "hubstress_single": {
            "batch": batch,
            "fused": fused,
            "reference": reference,
            "prechange": {"steps_per_second": PRECHANGE_STEPS_PER_SECOND},
            "speedup_vs_prechange": round(
                fused["steps_per_second"] / PRECHANGE_STEPS_PER_SECOND, 2
            ),
            "batch_prechange": {
                "steps_per_second": BATCH_PRECHANGE_STEPS_PER_SECOND
            },
            "batch_speedup_vs_prechange": round(
                batch["steps_per_second"] / BATCH_PRECHANGE_STEPS_PER_SECOND,
                2,
            ),
        }
    }


def write_report(out=None, iterations=None, reps=None):
    report = {
        "python": platform.python_version(),
        "workloads": _measure(iterations, reps),
    }
    path = out or RESULTS_PATH
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def test_access_barrier(tmp_path):
    """Regenerates the measurement and checks the fast paths' contract.

    Identity first: the batch and fused arms must reproduce the
    reference arm's deterministic counters exactly — same barriers,
    same fast-path classification counts, same IDG edges, logs, SCCs,
    and violations.  Then performance: a high fast-path hit rate
    (hubstress is dominated by owner re-accesses, like the paper's
    benchmarks), the fused arm beating the committed pre-fused-barrier
    throughput, and the batch arm beating the committed pre-batch
    (fused) throughput by their acceptance bars.
    """
    report = write_report(out=str(tmp_path / "BENCH_access.json"))
    row = report["workloads"]["hubstress_single"]
    batch, fused, reference = row["batch"], row["fused"], row["reference"]

    for key in (
        "barriers", "fast_path", "idg_edges", "log_entries", "sccs",
        "violations",
    ):
        assert batch[key] == reference[key], key
        assert fused[key] == reference[key], key
    assert batch["fast_path_fused"] > 0
    assert fused["fast_path_fused"] > 0
    assert reference["fast_path_fused"] == 0

    assert fused["fast_path_rate"] >= 0.85
    assert (
        fused["steps_per_second"]
        >= SPEEDUP_TARGET * PRECHANGE_STEPS_PER_SECOND
    )
    assert (
        batch["steps_per_second"]
        >= BATCH_SPEEDUP_TARGET * BATCH_PRECHANGE_STEPS_PER_SECOND
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="override the workload's per-thread iterations (smoke runs)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the JSON report here instead of results/BENCH_access.json",
    )
    args = parser.parse_args(argv)
    reps = 1 if args.iterations is not None else None
    report = write_report(out=args.out, iterations=args.iterations, reps=reps)
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    raise SystemExit(main())
