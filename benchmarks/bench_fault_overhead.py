"""Fault-tolerance-engine overhead microbenchmark.

The recovery engine in :class:`repro.harness.parallel.CellPool`
(retries, timeouts, fault injection, checkpointing) must be free when
it is not in use: a serial pool with every knob at its default routes
``starmap`` through a bare list comprehension, and this benchmark
holds that fast path to a **2% budget** against the comprehension
itself.  Results land in ``results/BENCH_faults.json``.

**The budget is measured paired**, the same way as
``bench_obs_overhead``: each round times the two arms in an ABBA
sequence (bare, pool, pool, bare) with the cyclic garbage collector
paused, and the overhead is the ratio of the two arms' **minimum**
elapsed time across rounds — timing noise is strictly additive, so the
per-arm minimum converges to the true unloaded cost.  A workload that
exceeds the budget is re-measured (up to ``MAX_ATTEMPTS`` windows,
minima pooled) to shake off co-tenant load bursts.

The cells are synthetic arithmetic loops far *smaller* than any real
(workload, checker, seed) cell, so the per-cell dispatch cost this
measures is a conservative upper bound on what an experiment grid
would see.

Two informational rates show what *enabling* the machinery costs:

* ``engine`` — the recovery engine active (``retries=2`` plus an inert
  ``crash:0.0`` fault plan) but never firing: per-cell key assignment,
  fault decisions, and the retry bookkeeping;
* ``checkpoint`` — the engine plus a checkpoint file, paying one
  atomic write-then-rename flush per completed cell.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_fault_overhead.py -q

or standalone (JSON only)::

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py
"""

import gc
import json
import os
import platform
import sys
import tempfile
import time

#: pseudo-workload -> (cells per batch, inner-loop steps per cell)
BENCH_SIZES = {
    "small_cells": (64, 400),
    "medium_cells": (16, 8000),
}
#: interleaved paired rounds for the bare-vs-pool comparison
ROUNDS = 10
#: extra measurement windows when a load burst poisons the first one
MAX_ATTEMPTS = 3
#: rounds for the informational engine/checkpoint rates
ENABLED_ROUNDS = 4
#: maximum tolerated fast-path slowdown vs a bare list comprehension
#: (the PR acceptance budget)
OVERHEAD_BUDGET_PERCENT = 2.0

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
RESULTS_PATH = os.path.join(RESULTS_DIR, "BENCH_faults.json")

#: environment knobs that would silently push the default pool off the
#: fast path mid-benchmark
_KNOB_ENVS = (
    "DOUBLECHECKER_JOBS",
    "DOUBLECHECKER_RETRIES",
    "DOUBLECHECKER_CELL_TIMEOUT",
    "DOUBLECHECKER_CHECKPOINT",
    "DOUBLECHECKER_FAULT_SPEC",
    "DOUBLECHECKER_FAULT_SEED",
)


def _cell(n):
    total = 0
    for i in range(n):
        total += (i ^ (i >> 3)) * 31 % 97
    return total


def _measure():
    """Steps/sec per pseudo-workload for each arm, plus the paired
    fast-path overhead ratio."""
    from repro.harness.parallel import CellPool

    saved = {name: os.environ.pop(name, None) for name in _KNOB_ENVS}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    report = {}
    try:
        for name, (cells, inner) in BENCH_SIZES.items():
            argslists = [(inner,)] * cells
            steps = cells * inner

            def bare():
                start = time.perf_counter()
                results = [_cell(*args) for args in argslists]
                elapsed = time.perf_counter() - start
                assert len(results) == cells
                return elapsed

            def pooled(**knobs):
                pool = CellPool(1, **knobs)
                start = time.perf_counter()
                results = pool.starmap(_cell, argslists)
                elapsed = time.perf_counter() - start
                pool.close()
                assert len(results) == cells
                return elapsed

            bare_times, pool_times = [], []
            for attempt in range(MAX_ATTEMPTS):
                for _ in range(ROUNDS):
                    gc.collect()
                    # ABBA: the bare comprehension brackets the default
                    # pool, so linear load drift hits both arms equally
                    bare_times.append(bare())
                    pool_times.append(pooled())
                    pool_times.append(pooled())
                    bare_times.append(bare())
                overhead = 100.0 * (min(pool_times) / min(bare_times) - 1.0)
                if overhead <= OVERHEAD_BUDGET_PERCENT:
                    break

            engine_times, checkpoint_times = [], []
            for _ in range(ENABLED_ROUNDS):
                gc.collect()
                engine_times.append(
                    pooled(retries=2, fault_spec="crash:0.0", fault_seed=0)
                )
                fd, ck_path = tempfile.mkstemp(suffix=".jsonl")
                os.close(fd)
                os.unlink(ck_path)  # the pool creates it on first flush
                try:
                    checkpoint_times.append(
                        pooled(retries=2, checkpoint=ck_path)
                    )
                finally:
                    if os.path.exists(ck_path):
                        os.unlink(ck_path)

            report[name] = {
                "bare_loop_steps_per_second": round(steps / min(bare_times)),
                "pool_steps_per_second": round(steps / min(pool_times)),
                "engine_steps_per_second": round(steps / min(engine_times)),
                "checkpoint_steps_per_second": round(
                    steps / min(checkpoint_times)
                ),
                "fastpath_overhead_percent": round(
                    100.0 * (min(pool_times) / min(bare_times) - 1.0), 2
                ),
            }
    finally:
        if gc_was_enabled:
            gc.enable()
        for name, value in saved.items():
            if value is not None:
                os.environ[name] = value
    return report


def write_report():
    workloads = _measure()
    report = {
        "python": platform.python_version(),
        "rounds": ROUNDS,
        "overhead_budget_percent": OVERHEAD_BUDGET_PERCENT,
        "max_fastpath_overhead_percent": max(
            stats["fastpath_overhead_percent"] for stats in workloads.values()
        ),
        "workloads": workloads,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def check_overhead_budget(report=None):
    """Return a list of budget violations (empty = within budget).

    Shared by the pytest wrapper below and
    ``benchmarks/check_bench_regression.py``.
    """
    if report is None:
        report = write_report()
    budget = report["overhead_budget_percent"]
    violations = []
    for name, stats in sorted(report["workloads"].items()):
        overhead = stats["fastpath_overhead_percent"]
        if overhead > budget:
            violations.append(
                f"{name}: fast-path overhead {overhead:.2f}% exceeds the "
                f"{budget:.0f}% budget "
                f"(pool={stats['pool_steps_per_second']} vs "
                f"bare={stats['bare_loop_steps_per_second']})"
            )
    return violations


def test_fastpath_overhead():
    """The default pool's starmap must stay within the 2% budget of a
    bare list comprehension (min of paired rounds); refreshes
    ``results/BENCH_faults.json`` as a side effect."""
    report = write_report()
    for stats in report["workloads"].values():
        assert stats["pool_steps_per_second"] > 0
        assert stats["engine_steps_per_second"] > 0
        assert stats["checkpoint_steps_per_second"] > 0
    violations = check_overhead_budget(report)
    assert not violations, "\n".join(violations)


if __name__ == "__main__":
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), "..", "src")
    )
    printed = write_report()
    json.dump(printed, sys.stdout, indent=2, sort_keys=True)
    print()
