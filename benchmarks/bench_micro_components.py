"""Micro-benchmarks of the analysis building blocks.

Not a paper artefact — these time the Python implementations of the
hot paths (barriers, per-access analysis bodies, SCC detection, PCD
replay) so regressions in the library itself are visible.
"""

import pytest

from repro.core.doublechecker import DoubleChecker
from repro.core.pcd import PCD
from repro.core.rwlog import ReadWriteLog
from repro.core.scc import scc_containing
from repro.core.transactions import IdgEdge, Transaction
from repro.runtime.events import AccessKind
from repro.runtime.executor import Executor
from repro.runtime.scheduler import RandomScheduler
from repro.velodrome.checker import VelodromeChecker

import sys
import os

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from tests.util import counter_program, spec_for  # noqa: E402


def test_executor_throughput(benchmark):
    """Uninstrumented interpretation speed (the 1.0 baseline)."""

    def run():
        program = counter_program(threads=2, iterations=40)
        Executor(program, RandomScheduler(seed=1, switch_prob=0.5)).run()

    benchmark(run)


def test_velodrome_full_run(benchmark):
    def run():
        program = counter_program(threads=2, iterations=40)
        VelodromeChecker(spec_for(program)).run(
            program, RandomScheduler(seed=1, switch_prob=0.5)
        )

    benchmark(run)


def test_doublechecker_single_full_run(benchmark):
    def run():
        program = counter_program(threads=2, iterations=40)
        DoubleChecker(spec_for(program)).run_single(
            program, RandomScheduler(seed=1, switch_prob=0.5)
        )

    benchmark(run)


def test_doublechecker_first_run(benchmark):
    def run():
        program = counter_program(threads=2, iterations=40)
        DoubleChecker(spec_for(program)).run_first(
            program, RandomScheduler(seed=1, switch_prob=0.5)
        )

    benchmark(run)


def test_scc_on_large_cycle(benchmark):
    txs = [Transaction(i + 1, f"T{i % 4}", "m", False) for i in range(600)]
    for tx in txs:
        tx.finished = True
    for i, tx in enumerate(txs):
        nxt = txs[(i + 1) % len(txs)]
        edge = IdgEdge(tx, nxt, "bench", i)
        tx.out_edges.append(edge)
        nxt.in_edges.append(edge)
    result = benchmark(scc_containing, txs[0])
    assert len(result) == 600


def test_pcd_replay_throughput(benchmark):
    def build_component():
        a = Transaction(1, "T1", "a", False)
        b = Transaction(2, "T2", "b", False)
        for tx in (a, b):
            tx.finished = True
            tx.log = ReadWriteLog()
        for i in range(400):
            a.log.append_access(AccessKind.WRITE, 1, f"f{i % 50}", 2 * i, "s")
            b.log.append_access(AccessKind.READ, 1, f"f{i % 50}", 2 * i + 1, "s")
        return [a, b]

    component = build_component()
    benchmark(lambda: PCD().process(component))
