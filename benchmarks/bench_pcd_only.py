"""E8 — Section 5.4: the PCD-only straw man.

PCD processes every executed transaction instead of only the ones ICD
implicates.  Paper: the slowdown explodes from 3.1X to 16.6X, and four
benchmarks (eclipse6, xalan6, avrora9, xalan9) run out of memory —
"ICD is essential as a first-pass filter for PCD".
"""

import pytest

from repro.harness import section54

#: log-entry budget per replay, chosen so the heavyweight benchmarks
#: exceed it (reproducing the paper's 32-bit out-of-memory exclusions)
BUDGET = 9_000


@pytest.fixture(scope="module")
def result(write_result):
    outcome = section54.pcd_only(trials=1, pcd_memory_budget=BUDGET)
    write_result("pcd_only", outcome.render())
    return outcome


def test_generate_pcd_only_cell(benchmark, result):
    benchmark.pedantic(
        lambda: section54.pcd_only(
            ["hedc"], trials=1, pcd_memory_budget=10_000_000
        ),
        rounds=1,
        iterations=1,
    )
    single, pcd = result.geomeans()
    assert pcd > single
    assert set(result.oom) & {"eclipse6", "xalan6", "avrora9", "xalan9"}


def test_pcd_only_dramatically_slower(result):
    single, pcd = result.geomeans()
    assert pcd > single * 1.5


def test_heavy_benchmarks_run_out_of_memory(result):
    assert len(result.oom) >= 2
    assert set(result.oom) & {"eclipse6", "xalan6", "avrora9", "xalan9"}


def test_light_benchmarks_complete(result):
    completed = [n for n, v in result.rows.items() if v[1] is not None]
    assert len(completed) >= 6
