"""E5 — Section 5.3: the unsound Velodrome variant.

Paper claims checked:

* skipping synchronization when metadata need not change cuts the
  slowdown (4.1X vs 6.1X) but stays above DoubleChecker's single-run
  mode;
* the variant crashes on avrora9 due to metadata races.
"""

import pytest

from repro.harness import figure7, section54


@pytest.fixture(scope="module")
def result(write_result):
    outcome = section54.unsound_velodrome(trials=2)
    write_result("unsound_velodrome", outcome.render())
    return outcome


def test_generate_unsound_cell(benchmark, result):
    benchmark.pedantic(
        lambda: section54.unsound_velodrome(["hsqldb6"], trials=1),
        rounds=1,
        iterations=1,
    )
    sound, unsound = result.geomeans()
    assert unsound < sound
    assert any(note == "crash" for _n, _s, _u, note in result.rows)


def test_unsound_variant_is_cheaper(result):
    sound, unsound = result.geomeans()
    assert unsound < sound


def test_avrora9_crashes(result):
    notes = {name: note for name, _s, _u, note in result.rows}
    assert notes.get("avrora9") == "crash"


def test_still_slower_than_doublechecker(result, write_result):
    """Paper: 'DoubleChecker still outperforms this unsound variant.'"""
    _, unsound = result.geomeans()
    single = figure7.generate(trials=1, first_trials=1).geomeans()["single"]
    assert single < unsound
