"""E1 — Table 1: the Octet state-transition machinery.

Table 1 is the specification of Octet's transition relation; its
correctness is covered exhaustively in ``tests/octet``.  This bench
measures the costs the paper's design argument depends on — the fast
path must be much cheaper than the slow paths — and emits a transition
census for a representative access mix.
"""

import itertools
import random

from repro.harness.rendering import render_table
from repro.octet.runtime import OctetRuntime
from repro.runtime.events import AccessEvent, AccessKind, Site
from repro.runtime.heap import Heap

_seq = itertools.count(1)


def make_event(obj, thread, kind):
    return AccessEvent(
        seq=next(_seq), thread_name=thread, obj=obj, fieldname="f",
        kind=kind, is_sync=False, is_array=False, site=Site("m", 0),
    )


def test_fast_path_barrier(benchmark):
    """Same-state read barrier: the hot path of the whole system."""
    runtime = OctetRuntime(live_threads=lambda: ["T1", "T2"])
    obj = Heap().alloc("o")
    runtime.observe(make_event(obj, "T1", AccessKind.WRITE))
    event = make_event(obj, "T1", AccessKind.READ)
    benchmark(runtime.observe, event)
    assert runtime.stats.fast_path > 0


def test_conflicting_barrier(benchmark):
    """Ownership ping-pong: every access is a conflicting transition."""
    runtime = OctetRuntime(live_threads=lambda: ["T1", "T2"])
    obj = Heap().alloc("o")
    threads = itertools.cycle(["T1", "T2"])

    def flip():
        runtime.observe(make_event(obj, next(threads), AccessKind.WRITE))

    benchmark(flip)
    assert runtime.stats.conflicting > 0


def test_rdsh_fence_barrier(benchmark):
    """Fence transitions: read-shared data with stale counters."""
    runtime = OctetRuntime(live_threads=lambda: ["T1", "T2", "T3"])
    heap = Heap()
    objects = [heap.alloc(f"o{i}") for i in range(16)]
    threads = itertools.cycle(["T1", "T2", "T3"])

    def mixed_reads():
        thread = next(threads)
        for obj in objects[:4]:
            runtime.observe(make_event(obj, thread, AccessKind.READ))

    benchmark(mixed_reads)


def test_transition_census(benchmark, write_result):
    """Census of transition kinds over a seeded random access mix."""

    def census():
        runtime = OctetRuntime(live_threads=lambda: ["T1", "T2", "T3", "T4"])
        heap = Heap()
        objects = [heap.alloc(f"o{i}") for i in range(12)]
        rng = random.Random(7)
        for _ in range(20_000):
            thread = f"T{rng.randrange(4) + 1}"
            obj = objects[rng.randrange(len(objects))]
            # 80% reads: read-mostly data drives RdSh/fence traffic
            kind = AccessKind.READ if rng.random() < 0.8 else AccessKind.WRITE
            runtime.observe(make_event(obj, thread, kind))
        return runtime.stats

    stats = benchmark.pedantic(census, rounds=1, iterations=1)
    rows = [
        ["same-state (fast path)", stats.fast_path],
        ["initial", stats.initial],
        ["upgrading RdEx->WrEx", stats.upgrading_wr_ex],
        ["upgrading ->RdSh", stats.upgrading_rd_sh],
        ["fence", stats.fences],
        ["conflicting", stats.conflicting],
    ]
    text = render_table(
        ["transition", "count"], rows,
        title="Table 1 census: transitions over 20k random accesses",
    )
    write_result("table1_octet_census", text)
    assert stats.fast_path > stats.conflicting
