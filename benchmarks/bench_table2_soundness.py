"""E2 — Table 2: static atomicity violations per checker.

Regenerates the full soundness comparison: iterative refinement to
convergence under Velodrome, single-run mode, and multi-run mode on
all 19 benchmarks.  The paper's qualitative claims checked here:

* Velodrome and single-run mode report closely matching sets (small
  ``Unique`` counts from schedule nondeterminism);
* multi-run mode detects a high fraction (~83–90%) of single-run's
  violations;
* the zero-violation benchmarks stay at zero everywhere.
"""

import pytest

from repro.harness import table2

ZERO_VIOLATION = {"jython9", "luindex9", "pmd9", "philo", "sor", "moldyn", "raytracer"}


@pytest.fixture(scope="module")
def result(write_result):
    outcome = table2.generate(trials_per_step=2)
    write_result("table2_soundness", outcome.render())
    return outcome


def test_generate_table2(benchmark, result):
    """Times one refinement-to-convergence on a mid-size benchmark —
    and validates the headline soundness claims under --benchmark-only."""
    benchmark.pedantic(
        lambda: table2.generate(["hsqldb6"], trials_per_step=2),
        rounds=1,
        iterations=1,
    )
    assert result.multi_detection_rate() >= 0.6
    for row in result.rows:
        if row.name in ZERO_VIOLATION:
            assert row.single_total == 0, row.name


def test_zero_violation_benchmarks_stay_clean(result):
    for row in result.rows:
        if row.name in ZERO_VIOLATION:
            assert row.single_total == 0, row.name
            assert row.velodrome_total == 0, row.name


def test_eclipse6_has_most_violations(result):
    by_name = {r.name: r for r in result.rows}
    eclipse = by_name["eclipse6"].single_total
    assert eclipse == max(r.single_total for r in result.rows)
    assert eclipse >= 10


def test_multi_run_detection_rate_is_high(result):
    """Paper: 83% of all single-run violations, 90% per program."""
    assert result.multi_detection_rate() >= 0.6


def test_velodrome_and_single_run_match_closely(result):
    totals = result.totals()
    velodrome, single = totals["velodrome_total"], totals["single_total"]
    assert velodrome > 0 and single > 0
    assert 0.5 <= velodrome / single <= 2.0
    # unique counts are a small fraction of the totals
    assert totals["velodrome_unique"] <= velodrome // 2
