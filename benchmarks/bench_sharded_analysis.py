"""Sharded-analysis benchmark: address-partitioned pipeline vs serial.

Times the ``pcdheavy`` workload — large eagerly-detected SCCs with a
high violating-method density, so PCD log construction and replay (the
work the log shards absorb) dominates the serial run — in three arms:

``shards1``
    ``shards=1``: the degradation path, identical to a plain serial
    ``run_single`` (the sharded entry point never forks);
``shards2`` / ``shards4``
    the real multiprocess pipeline (coordinator + analysis shard +
    N-1 log shards) via :func:`repro.shard.coordinator.run_single_sharded`.

``shards4a4``
    ``shards=4 --analysis-shards=4``: the partitioned analysis plane —
    four partition workers absorb certain-fast Octet records for their
    object partitions and forward the rest to the exchange owner, which
    folds the globally seq-ordered residue through the single cycle
    engine.

The same arms run on ``hubstress`` (the largest stress workload).
Hubstress is ICD-bound — almost no PCD work to offload — so its row
documents merge overhead and the lower bound of the speedup range;
``pcdheavy`` carries the headline and the acceptance assert.

Where the partitioned plane lands (measured, honest)
----------------------------------------------------

On hubstress, ``--analysis-shards 4`` absorbs ~70% of the access
records at the partition workers (each <20% of the A=1 analyzer's
CPU), but the exchange owner keeps the transaction demarcation,
slow-path barriers, IDG edges, SCC checks, and GC — work that cannot
leave the single cycle engine while unary transaction ids are minted
globally (a unary access merges into the running unary transaction
only if no cross-thread edge touched it, which is owner-side
knowledge).  That irreducible share keeps the owner the critical path,
so the arm lands at ~1.2x serial (up from ~1.17x at A=1) rather than
the ~2x an embarrassingly parallel split would give.  Moving
transaction demarcation off the owner is the follow-up recorded in
ROADMAP.md.  On pcdheavy the slow path dominates and absorption buys
nothing; the arm is recorded to show it does not regress.

Methodology — critical-path CPU on a time-shared container
----------------------------------------------------------

This container exposes a single schedulable CPU, so raw wall-clock for
a 4-process pipeline measures time-slicing, not the pipeline.  Each
arm therefore reports per-role CPU seconds (``time.process_time`` in
every process, collected through ``stats_out``), and the headline
metric is::

    steps_per_second = steps / max(role CPU seconds)

i.e. throughput over the pipeline's *critical path* — the wall-clock a
machine with one idle core per role would see, modulo queue-wait.
Raw ``wall_seconds`` is reported alongside, un-headlined, for honesty:
on this container it is *larger* than serial (the processes time-share
one core and pay the wire overhead), and on a multicore machine it is
the number to re-measure.  The speedup claim is that sharding cuts the
critical path, i.e. no single process does more than ``1/speedup`` of
the serial CPU work.

All arms must agree exactly on every deterministic counter (steps,
IDG edges, log entries, SCCs, violations) — the partition is a pure
reorganisation; ``tests/integration/test_sharded_determinism.py``
checks the full transition/log/edge dumps byte for byte.

Each sharded arm also records a per-stage busy/stall breakdown (chunk
decode, PCD jobs, merge vs blocking queue gets) measured by one extra
``--obs counters`` run — the same histograms ``repro obs analyze``
reads, committed so the pipeline's utilization profile is reviewable
alongside its throughput.

Records ``results/BENCH_sharded.json``
(``benchmarks/check_bench_regression.py`` compares fresh runs against
it).  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded_analysis.py -q

or standalone (JSON only)::

    PYTHONPATH=src python benchmarks/bench_sharded_analysis.py

CI smoke-tests the harness with ``--iterations 40 --out /tmp/...`` (a
shrunken workload written away from the committed baseline).
"""

import argparse
import json
import os
import platform
import sys
import time

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_sharded.json"
)

#: repetitions per arm; the rep with the smallest critical path is
#: reported (minimum filters out scheduler noise on a shared box)
REPS = 3

#: the acceptance bar for 4 shards against the 1-shard arm of the same
#: run (a paired, same-machine ratio: both arms drift together).  Kept
#: below the ~2.2x measured headline so the assertion survives machine
#: noise.
SPEEDUP_TARGET = 1.8

#: workload seed (any fixed value; all arms share it)
SEED = 1234


def _pcdheavy_spec(iterations=None):
    """High violating-density ring workload: PCD-dominated serial run.

    Eight threads over six hot shared objects with a wide violating
    method population keep eager SCC detection busy (≈2.4k components)
    and push PCD replay to ~60% of serial CPU — the share the log
    shards can absorb.  ``iterations`` shrinks it for smoke runs.
    """
    from repro.workloads.builder import WorkloadSpec

    return WorkloadSpec(
        name="pcdheavy",
        threads=8,
        iterations=iterations if iterations is not None else 500,
        shared_objects=6,
        readonly_objects=2,
        violating_methods=8,
        safe_methods=4,
        unary_ops=1,
        violating_weight=0.30,
        sliced_weight=0.20,
        sliced_methods=8,
        ring_size=8,
        ring_weight=0.35,
        pad=3,
    )


def _hubstress_spec(iterations=None):
    """The cycle-check stress workload (largest catalog-adjacent run).

    Hubstress is ICD-bound — its violating density is tiny, so there
    is little PCD/log work to offload and the analysis shard stays the
    critical path.  It is measured for merge overhead and as the
    honest lower bound of the speedup range, not for the headline.
    """
    from dataclasses import replace

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_analysis_throughput import hubstress_spec

    spec = hubstress_spec()
    if iterations is not None:
        spec = replace(
            spec, iterations=iterations, hub_rounds=1, hub_scan_iters=50
        )
    return spec


def _checker(spec):
    from repro.core.doublechecker import DoubleChecker
    from repro.spec.specification import AtomicitySpecification
    from repro.workloads.builder import build_program

    return DoubleChecker(AtomicitySpecification.initial(build_program(spec)))


def _counters(result):
    """The deterministic outputs every arm must reproduce exactly."""
    return {
        "steps": result.execution.steps,
        "idg_edges": result.icd_stats.idg_edges,
        "log_entries": result.icd_stats.log_entries,
        "sccs": result.icd_stats.sccs,
        "pcd_entries_replayed": result.pcd_stats.entries_replayed,
        "violations": len(result.violations.records),
    }


def _serial_arm(spec, reps):
    """shards=1: the degradation path — a plain in-process run_single."""
    from repro.harness.runner import make_scheduler
    from repro.workloads.builder import build_program

    best = None
    for _ in range(reps or REPS):
        program = build_program(spec)
        checker = _checker(spec)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        result = checker.run_single(program, make_scheduler(SEED), shards=1)
        cpu = time.process_time() - cpu0
        wall = time.perf_counter() - wall0
        if best is None or cpu < best[0]:
            best = (cpu, wall, result)
    cpu, wall, result = best
    row = {
        "steps_per_second": round(result.execution.steps / cpu),
        "critical_path_cpu_seconds": round(cpu, 3),
        "wall_seconds": round(wall, 3),
        "cpu_seconds": {"serial": round(cpu, 3)},
    }
    row.update(_counters(result))
    return row


def _sharded_arm(spec, shards, reps, analysis_shards=1):
    from repro.harness.runner import make_scheduler
    from repro.shard.coordinator import run_single_sharded
    from repro.workloads.builder import build_program

    best = None
    for _ in range(reps or REPS):
        program = build_program(spec)
        checker = _checker(spec)
        stats = {}
        result, _ = run_single_sharded(
            checker, program, make_scheduler(SEED), shards,
            analysis_shards=analysis_shards, stats_out=stats
        )
        cpu = stats["cpu_seconds"]
        # with --analysis-shards the "analyzer" role is the exchange
        # owner and cpu["analysis"] lists the partition workers; all of
        # them sit on the critical path
        crit = max(cpu["coordinator"], cpu["analyzer"], max(cpu["workers"]),
                   max(cpu.get("analysis", [0.0])))
        if best is None or crit < best[0]:
            best = (crit, stats, result)
    crit, stats, result = best
    cpu = stats["cpu_seconds"]
    row = {
        "steps_per_second": round(result.execution.steps / crit),
        "critical_path_cpu_seconds": round(crit, 3),
        "wall_seconds": round(stats["wall_seconds"], 3),
        "cpu_seconds": {
            "coordinator": round(cpu["coordinator"], 3),
            "analyzer": round(cpu["analyzer"], 3),
            "workers": [round(w, 3) for w in cpu["workers"]],
        },
        "merge_seconds": round(stats["merge_seconds"], 3),
        "stream_bytes": stats["stream_bytes"],
        "stream_records": stats["stream_records"],
        "breakdown": _stage_breakdown(spec, shards, analysis_shards),
    }
    if "analysis" in cpu:
        row["cpu_seconds"]["analysis"] = [round(a, 3) for a in cpu["analysis"]]
    row.update(_counters(result))
    return row


def _stage_breakdown(spec, shards, analysis_shards=1):
    """Per-stage busy/stall seconds from one instrumented run.

    A separate run with ``--obs counters`` (timing histograms, no event
    buffers) so the headline arms above stay un-instrumented; the
    children's histograms come home in their telemetry capsules.
    Wall-clock values — descriptive, not regression-gated.
    """
    from repro.harness.runner import make_scheduler
    from repro.obs.registry import MetricsRegistry, use_registry
    from repro.shard.coordinator import run_single_sharded
    from repro.workloads.builder import build_program

    registry = MetricsRegistry("counters")
    previous = use_registry(registry)
    try:
        program = build_program(spec)
        checker = _checker(spec)
        run_single_sharded(checker, program, make_scheduler(SEED), shards,
                           analysis_shards=analysis_shards)
    finally:
        use_registry(previous)
    histograms = registry.snapshot()["histograms"]

    def total(name):
        summary = histograms.get(name)
        return round(summary["total"], 3) if summary else 0.0

    return {
        "busy_seconds": {
            "analyzer_chunks": total("shard.analyzer.chunk.seconds"),
            "analyzer_merge": total("shard.analyzer.merge.seconds"),
            "partition_chunks": total("shard.partition.chunk.seconds"),
            "logshard_chunks": total("shard.log.chunk.seconds"),
            "pcd_jobs": total("shard.pcd.job.seconds"),
        },
        "stall_seconds": {
            "analyzer_get": total("shard.stall.analyzer.get.seconds"),
            "analysis_get": total("shard.stall.analysis.get.seconds"),
            "exchange_get": total("shard.stall.exchange.get.seconds"),
            "logshard_get": total("shard.stall.logshard.get.seconds"),
            "coordinator_result": total(
                "shard.stall.coordinator.result.seconds"
            ),
        },
    }


def _workload_rows(spec, reps):
    shards1 = _serial_arm(spec, reps)
    shards2 = _sharded_arm(spec, 2, reps)
    shards4 = _sharded_arm(spec, 4, reps)
    shards4a4 = _sharded_arm(spec, 4, reps, analysis_shards=4)
    # the partition is a pure reorganisation: every deterministic
    # counter must match serial exactly, in every measurement mode
    # (committed baseline, CI smoke, regression gate)
    for arm_name, arm in (("shards2", shards2), ("shards4", shards4),
                          ("shards4a4", shards4a4)):
        for key in (
            "steps", "idg_edges", "log_entries", "sccs",
            "pcd_entries_replayed", "violations",
        ):
            if arm[key] != shards1[key]:
                raise AssertionError(
                    f"{spec.name}.{arm_name}.{key} = {arm[key]} != serial "
                    f"{shards1[key]}: sharded run diverged"
                )
    return {
        "shards1": shards1,
        "shards2": shards2,
        "shards4": shards4,
        "shards4a4": shards4a4,
        "speedup_4_vs_1": round(
            shards4["steps_per_second"] / shards1["steps_per_second"], 2
        ),
        "speedup_4a4_vs_1": round(
            shards4a4["steps_per_second"] / shards1["steps_per_second"], 2
        ),
    }


def _measure(iterations=None, reps=None):
    return {
        "pcdheavy_single": _workload_rows(_pcdheavy_spec(iterations), reps),
        "hubstress_single": _workload_rows(_hubstress_spec(iterations), reps),
    }


def write_report(out=None, iterations=None, reps=None):
    report = {
        "module": "bench_sharded_analysis",
        "python": platform.python_version(),
        "methodology": (
            "steps_per_second = steps / max(per-role CPU seconds): "
            "pipeline critical path, not wall-clock (this container "
            "time-shares one CPU across the shard processes; "
            "wall_seconds is reported raw alongside)"
        ),
        "workloads": _measure(iterations, reps),
    }
    path = out or RESULTS_PATH
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def test_sharded_analysis(tmp_path):
    """Regenerates the measurement and checks the partition's contract.

    Identity first: every sharded arm must reproduce the 1-shard arm's
    deterministic counters exactly (the byte-level dump comparison
    lives in the integration suite).  Then performance: 4 shards must
    beat the 1-shard critical path by the acceptance bar — a paired
    same-run ratio, so it holds across machines.
    """
    report = write_report(out=str(tmp_path / "BENCH_sharded.json"))
    row = report["workloads"]["pcdheavy_single"]
    shards1, shards2, shards4 = row["shards1"], row["shards2"], row["shards4"]

    for key in (
        "steps", "idg_edges", "log_entries", "sccs",
        "pcd_entries_replayed", "violations",
    ):
        assert shards2[key] == shards1[key], key
        assert shards4[key] == shards1[key], key
    assert shards4["violations"] > 0  # the workload must exercise PCD

    assert (
        shards4["steps_per_second"]
        >= SPEEDUP_TARGET * shards1["steps_per_second"]
    )
    # 2 shards moves all log construction and PCD onto one worker, so
    # its critical path roughly equals that share of the serial run —
    # a wash on this workload; assert it is at least not materially
    # slower than not sharding at all
    assert shards2["steps_per_second"] >= 0.85 * shards1["steps_per_second"]

    # the partitioned analysis plane must not regress the pcdheavy arm
    # it rides on (its PCD work all lives on the log shards; the
    # partition split is a no-op there beyond queue overhead)
    assert (
        row["shards4a4"]["steps_per_second"]
        >= 0.80 * shards4["steps_per_second"]
    )

    # hubstress (ICD-bound, nothing to offload) must not collapse
    # under sharding either: counter identity is already asserted in
    # _measure, so just require the critical path stays in the same
    # ballpark as serial
    hub = report["workloads"]["hubstress_single"]
    assert (
        hub["shards4"]["steps_per_second"]
        >= 0.70 * hub["shards1"]["steps_per_second"]
    )

    # the partitioned plane's contract on its target workload: the
    # partition workers genuinely offload the fast path (each a small
    # fraction of the A=1 analyzer's CPU — the structural claim, and
    # robust to machine noise), and the arm's critical path stays in
    # the same ballpark as the serial and shards4 arms.  The committed
    # baseline records the measured ~1.25x vs serial; per-arm ratios
    # swing +-15% run to run on a shared box, so the throughput floors
    # here are deliberately loose noise gates, not the headline.
    hub4a4 = hub["shards4a4"]
    assert max(hub4a4["cpu_seconds"]["analysis"]) <= 0.5 * (
        hub["shards4"]["cpu_seconds"]["analyzer"]
    )
    assert (
        hub4a4["steps_per_second"] >= 0.90 * hub["shards1"]["steps_per_second"]
    )
    assert (
        hub4a4["steps_per_second"] >= 0.85 * hub["shards4"]["steps_per_second"]
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="override the workload's per-thread iterations (smoke runs)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the JSON report here instead of results/BENCH_sharded.json",
    )
    args = parser.parse_args(argv)
    reps = 1 if args.iterations is not None else None
    report = write_report(out=args.out, iterations=args.iterations, reps=reps)
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    raise SystemExit(main())
