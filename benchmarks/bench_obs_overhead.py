"""Telemetry-overhead microbenchmark.

Measures what the observability layer costs the executor hot path (the
same workloads as ``bench_executor_throughput``) and records the
results into ``results/BENCH_obs.json``.

**Disabled-mode overhead is measured paired.**  The pre-telemetry
``Executor.run`` body survives verbatim as ``Executor._run_loop``; the
public ``run()`` is now a thin wrapper that checks the recorder and
delegates.  Each round times the two entry points in an ABBA sequence
(loop, off, off, loop) on fresh executors with the cyclic garbage
collector paused, and the overhead is the ratio of the two arms'
**minimum** elapsed time across all rounds.  Timing noise on a shared
box (bursty co-tenant load, GC, scheduler preemption) is strictly
additive — it can only ever slow a run down — so the per-arm minimum
over many interleaved rounds converges to the true unloaded cost even
when individual rounds vary by 10%+, making the committed **2%
budget** actually enforceable.  A co-tenant load burst sustained
across an entire measurement window can still poison every sample in
it, so a workload that exceeds the budget is re-measured (up to
``MAX_ATTEMPTS`` windows, minima pooled): a genuine regression
reproduces in every window, a burst does not.

``counters`` and ``full`` rates are informational: what *enabling*
telemetry costs.  Counter publication happens once per run (per-access
work still goes through the plain ``*Stats`` dataclasses), so the
dominant enabled-mode cost is the scheduler-choice wrapper and, in
full mode, timing the listener barrier.

The **distributed arm** measures the sharded pipeline the same paired
way: ``run_single_sharded`` with telemetry off vs ``--obs full``
(cross-process spans, flow arrows, stall/queue histograms, and the
telemetry capsules shipped back over the result channel), with its own
committed **10% budget** (``DISTRIBUTED_BUDGET_PERCENT``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -q

or standalone (JSON only)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

import gc
import json
import os
import platform
import statistics
import sys
import time

BENCH_NAMES = ["hsqldb6", "xalan6", "sor"]
#: interleaved paired rounds for the off-vs-loop comparison
ROUNDS = 12
#: extra measurement windows when a load burst poisons the first one
MAX_ATTEMPTS = 3
#: rounds for the informational enabled-mode (counters/full) rates
ENABLED_ROUNDS = 4
#: maximum tolerated disabled-mode slowdown vs the pre-telemetry loop
#: (the PR acceptance budget)
OVERHEAD_BUDGET_PERCENT = 2.0

#: the distributed arm: a sharded pipeline run with --obs full (trace
#: spans, flow arrows, stall/queue histograms, telemetry capsules
#: shipped back over the result channel) vs the same run with
#: telemetry off — paired ABBA wall-clock rounds, min-elapsed ratio
DISTRIBUTED_SHARDS = 2
DISTRIBUTED_ROUNDS = 5
DISTRIBUTED_ITERATIONS = 120
#: maximum tolerated full-mode slowdown of the sharded pipeline
DISTRIBUTED_BUDGET_PERCENT = 10.0

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
RESULTS_PATH = os.path.join(RESULTS_DIR, "BENCH_obs.json")
EXECUTOR_BASELINE_PATH = os.path.join(RESULTS_DIR, "BENCH_executor.json")


def _committed_executor_baseline():
    """The committed executor reference numbers, if present."""
    try:
        with open(EXECUTOR_BASELINE_PATH) as handle:
            return json.load(handle)["workloads"]
    except (OSError, ValueError, KeyError):
        return {}


def _measure():
    """Median steps/sec per workload for each telemetry mode, plus the
    paired disabled-mode overhead ratio."""
    from repro.harness import runner
    from repro.obs.registry import MetricsRegistry, use_registry
    from repro.runtime.executor import Executor
    from repro.workloads import build

    def fresh():
        return Executor(build(name), runner.make_scheduler(0))

    def enabled_rate(mode):
        registry = MetricsRegistry(mode)
        previous = use_registry(registry)
        try:
            return fresh().run().steps_per_second
        finally:
            use_registry(previous)

    reference = _committed_executor_baseline()
    report = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for name in BENCH_NAMES:
            loop, off = [], []
            counters, full = [], []
            for attempt in range(MAX_ATTEMPTS):
                for _ in range(ROUNDS):
                    gc.collect()
                    # ABBA: the pre-telemetry loop body (kept verbatim
                    # as _run_loop) brackets the public off-mode entry
                    # point, so linear load drift and warm-up order
                    # effects hit the two arms equally within the round
                    loop.append(fresh()._run_loop().elapsed_seconds)
                    off.append(fresh().run().elapsed_seconds)
                    off.append(fresh().run().elapsed_seconds)
                    loop.append(fresh()._run_loop().elapsed_seconds)
                overhead = 100.0 * (min(off) / min(loop) - 1.0)
                if overhead <= OVERHEAD_BUDGET_PERCENT:
                    break
            for _ in range(ENABLED_ROUNDS):
                gc.collect()
                counters.append(enabled_rate("counters"))
                full.append(enabled_rate("full"))
            # identical executions (same seed) in both arms: the
            # min-elapsed ratio is exactly the off-mode slowdown
            steps = fresh()._run_loop().steps
            entry = {
                "pretelemetry_loop_steps_per_second": round(
                    steps / min(loop)
                ),
                "off_steps_per_second": round(steps / min(off)),
                "counters_steps_per_second": round(statistics.median(counters)),
                "full_steps_per_second": round(statistics.median(full)),
                "disabled_overhead_percent": round(
                    100.0 * (min(off) / min(loop) - 1.0), 2
                ),
            }
            # informational pointer to the committed executor baseline;
            # named so the regression gate's *steps_per_second scan
            # does not compare this constant against itself
            ref = reference.get(name, {}).get("baseline_steps_per_second")
            if ref:
                entry["committed_executor_reference"] = ref
            report[name] = entry
        report["distributed"] = _measure_distributed()
    finally:
        if gc_was_enabled:
            gc.enable()
    return report


def _measure_distributed():
    """Full-mode overhead of the *sharded* pipeline, paired.

    Both arms run the identical coordinator + analysis shard + log
    shard pipeline on the PCD-heavy workload; the full arm additionally
    pays for spans, flow arrows, stall/queue-depth histograms, quantum
    events, and shipping the children's telemetry capsules home.  The
    ratio of per-arm minimum wall-clock over ABBA rounds is the
    distributed telemetry cost (the fork/queue machinery is identical
    in both arms, so it cancels).
    """
    from repro.core.doublechecker import DoubleChecker
    from repro.harness.runner import make_scheduler
    from repro.obs.registry import MetricsRegistry, use_registry
    from repro.shard.coordinator import run_single_sharded
    from repro.spec.specification import AtomicitySpecification
    from repro.workloads.builder import build_program

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from bench_sharded_analysis import SEED, _pcdheavy_spec

    spec = _pcdheavy_spec(iterations=DISTRIBUTED_ITERATIONS)

    def run(mode):
        registry = MetricsRegistry(mode) if mode else None
        previous = use_registry(registry)
        try:
            program = build_program(spec)
            checker = DoubleChecker(AtomicitySpecification.initial(program))
            started = time.perf_counter()
            result, _ = run_single_sharded(
                checker, program, make_scheduler(SEED), DISTRIBUTED_SHARDS
            )
            return time.perf_counter() - started, result.execution.steps
        finally:
            use_registry(previous)

    off, full = [], []
    steps = 0
    for attempt in range(MAX_ATTEMPTS):
        for _ in range(DISTRIBUTED_ROUNDS):
            gc.collect()
            elapsed, steps = run(None)
            off.append(elapsed)
            elapsed, _ = run("full")
            full.append(elapsed)
            elapsed, _ = run("full")
            full.append(elapsed)
            elapsed, _ = run(None)
            off.append(elapsed)
        overhead = 100.0 * (min(full) / min(off) - 1.0)
        if overhead <= DISTRIBUTED_BUDGET_PERCENT:
            break
    return {
        "workload": "pcdheavy",
        "shards": DISTRIBUTED_SHARDS,
        "sharded_off_steps_per_second": round(steps / min(off)),
        "sharded_full_steps_per_second": round(steps / min(full)),
        "sharded_full_overhead_percent": round(
            100.0 * (min(full) / min(off) - 1.0), 2
        ),
        "budget_percent": DISTRIBUTED_BUDGET_PERCENT,
    }


def write_report():
    workloads = _measure()
    report = {
        "python": platform.python_version(),
        "rounds": ROUNDS,
        "overhead_budget_percent": OVERHEAD_BUDGET_PERCENT,
        "distributed_budget_percent": DISTRIBUTED_BUDGET_PERCENT,
        "max_disabled_overhead_percent": max(
            stats["disabled_overhead_percent"]
            for stats in workloads.values()
            if "disabled_overhead_percent" in stats
        ),
        "workloads": workloads,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def check_overhead_budget(report=None):
    """Return a list of budget violations (empty = within budget).

    Shared by the pytest wrapper below and
    ``benchmarks/check_bench_regression.py``.
    """
    if report is None:
        report = write_report()
    budget = report["overhead_budget_percent"]
    violations = []
    for name, stats in sorted(report["workloads"].items()):
        if "disabled_overhead_percent" in stats:
            overhead = stats["disabled_overhead_percent"]
            if overhead > budget:
                violations.append(
                    f"{name}: disabled-mode overhead {overhead:.2f}% exceeds "
                    f"the {budget:.0f}% budget "
                    f"(off={stats['off_steps_per_second']} vs "
                    f"loop={stats['pretelemetry_loop_steps_per_second']})"
                )
        if "sharded_full_overhead_percent" in stats:
            overhead = stats["sharded_full_overhead_percent"]
            if overhead > DISTRIBUTED_BUDGET_PERCENT:
                violations.append(
                    f"{name}: sharded full-mode overhead {overhead:.2f}% "
                    f"exceeds the {DISTRIBUTED_BUDGET_PERCENT:.0f}% "
                    f"distributed budget "
                    f"(full={stats['sharded_full_steps_per_second']} vs "
                    f"off={stats['sharded_off_steps_per_second']})"
                )
    return violations


def test_disabled_mode_overhead():
    """Off-mode throughput must stay within the 2% budget of the
    pre-telemetry loop (median of paired rounds), and the sharded
    pipeline's full-mode overhead within the 10% distributed budget;
    refreshes ``results/BENCH_obs.json`` as a side effect."""
    report = write_report()
    for name, stats in report["workloads"].items():
        if name == "distributed":
            assert stats["sharded_off_steps_per_second"] > 0
            assert stats["sharded_full_steps_per_second"] > 0
            continue
        assert stats["off_steps_per_second"] > 0
        assert stats["counters_steps_per_second"] > 0
        assert stats["full_steps_per_second"] > 0
    violations = check_overhead_budget(report)
    assert not violations, "\n".join(violations)


if __name__ == "__main__":
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), "..", "src")
    )
    printed = write_report()
    json.dump(printed, sys.stdout, indent=2, sort_keys=True)
    print()
