"""Analysis-phase throughput benchmark: incremental engine vs legacy.

Times the two cycle-detection clients — the Velodrome per-edge checker
and ICD's transaction-end SCC pass — with the incremental
strongly-connected-component engine (``repro.graph``) enabled and
disabled, on the ``hubstress`` workload built for exactly this
comparison: one long *hub* transaction per round anchors itself into a
producer group's ever-growing write chain, then periodically probes
old write-once seed fields.  Every probe forces the legacy per-edge
check to exhaust the hub's whole reachable region to *refute* a cycle,
while the engine's component certificate answers in O(1).

Records steps/sec and the deterministic visit counters into
``results/BENCH_analysis.json`` so future work has a committed
baseline (``benchmarks/check_bench_regression.py`` compares fresh runs
against it).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_analysis_throughput.py -q

or standalone (no pytest-benchmark timings, JSON only)::

    PYTHONPATH=src python benchmarks/bench_analysis_throughput.py
"""

import json
import os
import platform
import sys
import time

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "results", "BENCH_analysis.json"
)

#: wall-clock repetitions per configuration (minimum is reported)
REPS = 2


def hubstress_spec():
    """The cycle-check stress workload (not a Table 2/3 catalog entry)."""
    from repro.workloads.builder import WorkloadSpec

    return WorkloadSpec(
        name="hubstress",
        threads=12,
        iterations=1200,
        shared_objects=2,
        violating_weight=0.02,
        safe_methods=6,
        unary_ops=2,
        array_ops=0,
        unary_shared_period=6,
        hub_scan_iters=600,
        hub_rounds=20,
        hub_threads=1,
        hub_probe_period=6,
        hub_listener_threads=2,
        pad=1,
    )


def _velodrome(spec, use_engine):
    from repro.harness.runner import make_scheduler
    from repro.spec.specification import AtomicitySpecification
    from repro.velodrome.checker import VelodromeChecker
    from repro.workloads.builder import build_program

    aspec = AtomicitySpecification.initial(build_program(spec))
    best = None
    for _ in range(REPS):
        start = time.perf_counter()
        checker = VelodromeChecker(aspec, use_engine=use_engine)
        result = checker.run(build_program(spec), make_scheduler(0))
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    elapsed, result = best
    stats = result.stats
    return {
        "steps_per_second": round(result.execution.steps / elapsed),
        "cycle_checks": stats.cycle_checks,
        "cycle_checks_certified": stats.cycle_checks_certified,
        "cycle_check_visits": stats.cycle_check_visits,
        "engine_search_visits": stats.engine_search_visits,
    }


def _icd_first(spec, use_engine):
    from repro.core.doublechecker import DoubleChecker
    from repro.harness.runner import make_scheduler
    from repro.spec.specification import AtomicitySpecification
    from repro.workloads.builder import build_program

    aspec = AtomicitySpecification.initial(build_program(spec))
    best = None
    for _ in range(REPS):
        start = time.perf_counter()
        checker = DoubleChecker(aspec, use_engine=use_engine)
        result = checker.run_first(build_program(spec), make_scheduler(0))
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    elapsed, result = best
    stats = result.icd_stats
    return {
        "steps_per_second": round(result.execution.steps / elapsed),
        "scc_computations": stats.scc_computations,
        "scc_visits": stats.scc_visits,
        "scc_skipped_clean": stats.scc_skipped_clean,
        "engine_search_visits": stats.engine_search_visits,
    }


def _vc(spec, sync_edges):
    from repro.harness.runner import make_scheduler
    from repro.spec.specification import AtomicitySpecification
    from repro.vc.checker import VcChecker
    from repro.workloads.builder import build_program

    aspec = AtomicitySpecification.initial(build_program(spec))
    best = None
    for _ in range(REPS):
        start = time.perf_counter()
        checker = VcChecker(aspec, sync_edges=sync_edges)
        result = checker.run(build_program(spec), make_scheduler(0))
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    elapsed, result = best
    stats = result.stats
    return {
        "steps_per_second": round(result.execution.steps / elapsed),
        "edges": stats.edges,
        "cycle_checks": stats.cycle_checks,
        "clock_joins": stats.clock_joins,
        "propagations": stats.propagations,
        "cycles_found": stats.cycles_found,
        "fastpath_hits": stats.fastpath_hits,
    }


def _measure():
    spec = hubstress_spec()
    return {
        "hubstress": {
            "velodrome": {
                "engine": _velodrome(spec, True),
                "legacy": _velodrome(spec, False),
            },
            "icd_first": {
                "engine": _icd_first(spec, True),
                "legacy": _icd_first(spec, False),
            },
            "vc": {
                "default": _vc(spec, False),
                "sync_edges": _vc(spec, True),
            },
        }
    }


def write_report():
    report = {
        "python": platform.python_version(),
        "workloads": _measure(),
    }
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def test_analysis_throughput():
    """Regenerates the JSON baseline and checks the engine's wins.

    The visit counters are deterministic — the engine must certify the
    overwhelming majority of probe checks and cut cycle-check visits by
    far more than the 2x the acceptance bar asks for.  Steps/sec is
    noisy, so the wall-clock assertion only requires the engine not to
    be meaningfully slower.
    """
    report = write_report()
    rows = report["workloads"]["hubstress"]

    velo = rows["velodrome"]
    assert velo["engine"]["cycle_checks"] == velo["legacy"]["cycle_checks"]
    total_engine = (
        velo["engine"]["cycle_check_visits"]
        + velo["engine"]["engine_search_visits"]
    )
    assert total_engine * 2 <= velo["legacy"]["cycle_check_visits"]
    certified = velo["engine"]["cycle_checks_certified"]
    assert certified >= velo["engine"]["cycle_checks"] * 0.9
    assert (
        velo["engine"]["steps_per_second"]
        >= velo["legacy"]["steps_per_second"] * 0.95
    )

    icd = rows["icd_first"]
    total_engine = (
        icd["engine"]["scc_visits"] + icd["engine"]["engine_search_visits"]
    )
    assert total_engine * 2 <= icd["legacy"]["scc_visits"]
    assert (
        icd["engine"]["steps_per_second"]
        >= icd["legacy"]["steps_per_second"] * 0.85
    )

    # vector-clock arm: with sync edges it builds Velodrome's exact
    # graph, so the per-edge check counts must match Velodrome's; the
    # default arm drops sync-edge work on the floor, never adds any
    vc = rows["vc"]
    assert vc["sync_edges"]["cycle_checks"] == velo["engine"]["cycle_checks"]
    assert vc["default"]["edges"] <= vc["sync_edges"]["edges"]
    assert vc["default"]["cycles_found"] <= vc["sync_edges"]["cycles_found"]
    # the linear-time claim: no graph searches at all, so the vc arm
    # must not be meaningfully slower than the legacy per-edge checker
    assert (
        vc["sync_edges"]["steps_per_second"]
        >= velo["legacy"]["steps_per_second"] * 0.9
    )


if __name__ == "__main__":
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), "..", "src")
    )
    printed = write_report()
    json.dump(printed, sys.stdout, indent=2, sort_keys=True)
    print()
