"""E4 — Table 3: run-time characteristics of DoubleChecker.

Regenerates the transaction/access/edge/SCC counters for single-run
mode and for the second run of multi-run mode on all 19 benchmarks
(means over trials), under the final refined specifications.

Paper claims checked:

* compared to how many accesses execute, there are few IDG edges
  (justifying the optimistic fast-path design);
* there are few SCCs in most cases (why PCD adds little overhead);
* the second run instruments a subset: for several benchmarks the
  first run reports no SCCs and the second run instruments nothing.
"""

import pytest

from repro.harness import table3


@pytest.fixture(scope="module")
def result(write_result):
    outcome = table3.generate(trials=2, first_trials=2)
    write_result("table3_characteristics", outcome.render())
    return outcome


def test_generate_table3(benchmark, result):
    benchmark.pedantic(
        lambda: table3.generate(["hedc"], trials=1, first_trials=1),
        rounds=1,
        iterations=1,
    )
    silent = [
        r.name
        for r in result.rows
        if r.second.regular_transactions == 0 and r.second.unary_accesses == 0
    ]
    assert silent, "some second runs must instrument nothing"



def test_edges_are_few_relative_to_accesses(result):
    for row in result.rows:
        accesses = row.single.regular_accesses + row.single.unary_accesses
        if accesses > 1000:
            assert row.single.idg_edges < accesses * 0.25, row.name


def test_second_run_instruments_subset(result):
    for row in result.rows:
        assert (
            row.second.regular_transactions
            <= row.single.regular_transactions * 1.1 + 5
        ), row.name


def test_some_second_runs_instrument_nothing(result):
    """Disjoint benchmarks report no SCCs in the first run, so their
    second runs skip all instrumentation (paper's observation)."""
    silent = [
        r.name
        for r in result.rows
        if r.second.regular_transactions == 0 and r.second.unary_accesses == 0
    ]
    assert {"jython9", "pmd9", "moldyn"} & set(silent)


def test_sccs_are_rare_in_most_benchmarks(result):
    low_scc = sum(1 for r in result.rows if r.single.sccs < 100)
    assert low_scc >= len(result.rows) // 2
