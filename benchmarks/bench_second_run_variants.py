"""E9 — Section 5.3: second-run design choices.

Two ablations of multi-run mode's second run:

* **always-instrument-unary** — instrumenting non-transactional
  accesses unconditionally (paper: overhead rises from 140% to 169%,
  justifying the conditional instrumentation);
* **Velodrome-as-second-run** — using Velodrome instead of ICD+PCD for
  the precise pass (paper: 2.9X vs 2.4X — ICD is still an effective
  dynamic filter even within the statically identified set).
"""

import pytest

from repro.harness import section54


@pytest.fixture(scope="module")
def result(write_result):
    outcome = section54.second_run_variants(trials=2, first_trials=2)
    write_result("second_run_variants", outcome.render())
    return outcome


def test_generate_second_run_cell(benchmark, result):
    benchmark.pedantic(
        lambda: section54.second_run_variants(
            ["hedc"], trials=1, first_trials=1
        ),
        rounds=1,
        iterations=1,
    )


def test_conditional_unary_instrumentation_helps(result):
    second, always_unary, _ = result.geomeans()
    assert second <= always_unary


def test_icd_pcd_beats_velodrome_as_second_run(result):
    second, _, velodrome_second = result.geomeans()
    assert second < velodrome_second
