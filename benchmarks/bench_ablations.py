"""Ablations of DoubleChecker's design choices (DESIGN.md §4).

Not paper artefacts, but each corresponds to a design decision the
paper motivates; the ablation quantifies the decision on our
workloads:

* **delayed vs eager cycle detection** — ICD defers SCC detection to
  transaction end (Section 3.2.3); the eager variant also checks at
  every cross-thread edge (Velodrome's schedule).
* **unary-transaction merging** — consecutive unary transactions not
  interrupted by an edge are merged (Section 4); off = one transaction
  per non-transactional access.
* **read/write-log duplicate elision** — logs skip same-window
  duplicates (Section 4); off = log every instrumented access.
* **first-run trials sensitivity** — multi-run mode unions static
  information across first runs (Section 5.1 uses 10); more trials
  buy detection coverage with more up-front cost.
"""

import pytest

from repro.core.icd import ICD
from repro.core.pcd import PCD
from repro.core.reports import ViolationSummary
from repro.core.static_info import StaticTransactionInfo
from repro.costs.model import CostModel
from repro.harness import runner
from repro.harness.rendering import render_table
from repro.runtime.executor import Executor
from repro.runtime.view import ExecutorView
from repro.stats.summary import geomean
from repro.workloads import build

NAMES = ["hsqldb6", "lusearch9", "montecarlo", "tsp"]


def run_icd_variant(name, spec, seed, **icd_kwargs):
    """One single-run-style execution with custom ICD knobs."""
    violations = ViolationSummary()
    pcd = PCD()
    icd = ICD(
        spec, on_scc=lambda c: violations.extend(pcd.process(c)), **icd_kwargs
    )
    executor = Executor(build(name), runner.make_scheduler(seed), [icd])
    icd.bind_view(ExecutorView(executor))
    execution = executor.run()
    return icd, pcd, violations, execution


class TestDelayedVsEagerDetection:
    @pytest.fixture(scope="class")
    def rows(self, write_result):
        out = []
        for name in NAMES:
            spec = runner.final_spec(name)
            lazy_icd, *_ = run_icd_variant(name, spec, 7, eager_scc=False)
            eager_icd, *_ = run_icd_variant(name, spec, 7, eager_scc=True)
            out.append(
                [
                    name,
                    lazy_icd.stats.scc_computations,
                    eager_icd.stats.scc_computations,
                    lazy_icd.stats.sccs,
                    eager_icd.stats.sccs,
                ]
            )
        write_result(
            "ablation_eager_scc",
            render_table(
                ["benchmark", "lazy comps", "eager comps", "lazy SCCs", "eager SCCs"],
                out,
                title="Ablation: delayed vs eager cycle detection",
            ),
        )
        return out

    def test_bench(self, benchmark, rows):
        spec = runner.final_spec("hsqldb6")
        benchmark.pedantic(
            lambda: run_icd_variant("hsqldb6", spec, 7, eager_scc=True),
            rounds=1,
            iterations=1,
        )

    def test_delayed_detection_does_much_less_work(self, rows):
        for name, lazy_comps, eager_comps, _l, _e in rows:
            assert lazy_comps <= eager_comps, name


class TestUnaryMerging:
    @pytest.fixture(scope="class")
    def rows(self, write_result):
        out = []
        for name in NAMES:
            spec = runner.final_spec(name)
            merged_icd, _, merged_v, _ = run_icd_variant(
                name, spec, 7, merge_unary=True
            )
            split_icd, _, split_v, _ = run_icd_variant(
                name, spec, 7, merge_unary=False
            )
            out.append(
                [
                    name,
                    merged_icd.tx_manager.stats.unary_transactions,
                    split_icd.tx_manager.stats.unary_transactions,
                    len(merged_v.blamed_methods()),
                    len(split_v.blamed_methods()),
                ]
            )
        write_result(
            "ablation_unary_merging",
            render_table(
                ["benchmark", "merged unary-tx", "split unary-tx",
                 "violations(merged)", "violations(split)"],
                out,
                title="Ablation: unary-transaction merging",
            ),
        )
        return out

    def test_bench(self, benchmark, rows):
        spec = runner.final_spec("hsqldb6")
        benchmark.pedantic(
            lambda: run_icd_variant("hsqldb6", spec, 7, merge_unary=False),
            rounds=1,
            iterations=1,
        )

    def test_merging_shrinks_transaction_population(self, rows):
        for name, merged, split, _mv, _sv in rows:
            assert merged <= split, name

    def test_merging_preserves_detection(self, rows):
        for name, _m, _s, merged_violations, split_violations in rows:
            assert merged_violations == split_violations, name


class TestLogElision:
    @pytest.fixture(scope="class")
    def rows(self, write_result):
        out = []
        for name in NAMES:
            spec = runner.final_spec(name)
            elided_icd, _, elided_v, _ = run_icd_variant(
                name, spec, 7, elide_duplicates=True
            )
            full_icd, _, full_v, _ = run_icd_variant(
                name, spec, 7, elide_duplicates=False
            )
            out.append(
                [
                    name,
                    elided_icd.stats.log_entries,
                    full_icd.stats.log_entries,
                    len(elided_v.blamed_methods()),
                    len(full_v.blamed_methods()),
                ]
            )
        write_result(
            "ablation_log_elision",
            render_table(
                ["benchmark", "elided log", "full log",
                 "violations(elided)", "violations(full)"],
                out,
                title="Ablation: read/write-log duplicate elision",
            ),
        )
        return out

    def test_bench(self, benchmark, rows):
        spec = runner.final_spec("hsqldb6")
        benchmark.pedantic(
            lambda: run_icd_variant("hsqldb6", spec, 7, elide_duplicates=False),
            rounds=1,
            iterations=1,
        )

    def test_elision_reduces_log_volume(self, rows):
        for name, elided, full, _ev, _fv in rows:
            assert elided <= full, name

    def test_elision_preserves_detection(self, rows):
        for name, _e, _f, elided_violations, full_violations in rows:
            assert elided_violations == full_violations, name


class TestFirstTrialsSensitivity:
    @pytest.fixture(scope="class")
    def rows(self, write_result):
        out = []
        for name in ["eclipse6", "xalan9"]:
            spec = runner.final_spec(name)
            # with final specs there are no violations left; sensitivity
            # is measured on the initial spec where bugs are live
            spec = runner.initial_spec(name)
            sizes = []
            for trials in (1, 3, 5):
                info = StaticTransactionInfo.union_all(
                    runner.run_first(name, spec, 300 + i).static_info
                    for i in range(trials)
                )
                sizes.append(len(info.methods))
            out.append([name, *sizes])
        write_result(
            "ablation_first_trials",
            render_table(
                ["benchmark", "1 trial", "3 trials", "5 trials"],
                out,
                title="Sensitivity: methods implicated vs number of first runs",
            ),
        )
        return out

    def test_bench(self, benchmark, rows):
        spec = runner.initial_spec("xalan9")
        benchmark.pedantic(
            lambda: runner.run_first("xalan9", spec, 300),
            rounds=1,
            iterations=1,
        )

    def test_more_trials_never_shrink_coverage(self, rows):
        for name, one, three, five in rows:
            assert one <= three <= five, name
