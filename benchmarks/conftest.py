"""Shared fixtures for the benchmark suite.

Every bench regenerates one of the paper's evaluation artefacts and
writes the rendered table into ``results/`` (consumed by
EXPERIMENTS.md), while pytest-benchmark times representative units.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    def _write(name: str, text: str) -> None:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")

    return _write
