"""Setup shim.

The pinned environment has no ``wheel`` package and no network access,
so PEP 660 editable installs (which build a wheel) fail.  Keeping a
``setup.py`` lets ``pip install -e . --no-use-pep517`` (and plain
``pip install -e .`` on older pips) fall back to the legacy
``setup.py develop`` path.
"""

from setuptools import setup

setup()
