#!/usr/bin/env python3
"""Compare every checker configuration on one benchmark.

Runs the uninstrumented baseline, Velodrome (sound and unsound
variants), DoubleChecker single-run mode, and both runs of multi-run
mode on the same workload, and prints the modelled normalized
execution times (the paper's Figure 7 metric) alongside the events
that drive them.

Run with::

    python examples/checker_shootout.py [benchmark]
"""

import sys

from repro import DoubleChecker, RandomScheduler, UnsoundVelodrome, VelodromeChecker
from repro.costs.model import CostModel
from repro.harness.rendering import render_table
from repro.harness.runner import final_spec
from repro.runtime.executor import Executor
from repro.velodrome.unsound import MetadataRaceError
from repro.workloads import all_names, build

SEED = 11


def scheduler():
    return RandomScheduler(seed=SEED, switch_prob=0.5)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "montecarlo"
    if benchmark not in all_names():
        raise SystemExit(f"unknown benchmark {benchmark!r}; try one of {all_names()}")

    print(f"deriving the refined specification for {benchmark} "
          "(cached after the first time)...")
    spec = final_spec(benchmark)
    model = CostModel()
    rows = []

    baseline = Executor(build(benchmark), scheduler()).run()
    rows.append(["baseline (uninstrumented)", 1.0, baseline.steps, "-", "-"])

    velodrome = VelodromeChecker(spec).run(build(benchmark), scheduler())
    breakdown = model.velodrome(velodrome)
    rows.append([
        "Velodrome",
        breakdown.normalized_time,
        velodrome.stats.instrumented_accesses,
        velodrome.stats.atomic_operations,
        len(velodrome.blamed_methods),
    ])

    try:
        unsound = UnsoundVelodrome(spec, seed=SEED).run(build(benchmark), scheduler())
        breakdown = model.velodrome(unsound)
        rows.append([
            "Velodrome (unsound variant)",
            breakdown.normalized_time,
            unsound.stats.instrumented_accesses,
            unsound.stats.atomic_operations,
            len(unsound.blamed_methods),
        ])
    except MetadataRaceError as error:
        rows.append(["Velodrome (unsound variant)", "crash", "-", "-", str(error)])

    checker = DoubleChecker(spec)
    single = checker.run_single(build(benchmark), scheduler())
    breakdown = model.double_checker_single(single)
    rows.append([
        "DoubleChecker single-run",
        breakdown.normalized_time,
        single.icd_stats.instrumented_accesses,
        single.octet_stats.atomic_operations,
        len(single.blamed_methods),
    ])

    first = checker.run_first(build(benchmark), scheduler())
    breakdown = model.double_checker_first(first)
    rows.append([
        "multi-run: first run",
        breakdown.normalized_time,
        first.icd_stats.instrumented_accesses,
        first.octet_stats.atomic_operations,
        f"{len(first.static_info.methods)} methods flagged",
    ])

    second = checker.run_second(build(benchmark), first.static_info, scheduler())
    breakdown = model.double_checker_single(second)
    rows.append([
        "multi-run: second run",
        breakdown.normalized_time,
        second.icd_stats.instrumented_accesses,
        second.octet_stats.atomic_operations,
        len(second.blamed_methods),
    ])

    print()
    print(render_table(
        ["configuration", "normalized time", "instr. accesses",
         "atomic ops", "violations"],
        rows,
        title=f"Checker shootout on {benchmark}",
    ))


if __name__ == "__main__":
    main()
