#!/usr/bin/env python3
"""A bank-account service with a locked-but-not-atomic transfer.

The motivating class of bug from the paper's introduction: every
individual access is protected by a lock (the program is *race free*),
yet ``transfer`` is not atomic — it releases the account lock between
reading the balance and writing it back, so two concurrent transfers
can both read the same balance and one update is lost.

Race detectors cannot find this bug.  Conflict-serializability
checking does: the read and the write of ``transfer`` conflict with
another transfer's accesses in both directions, forming a dependence
cycle.  The example checks the service with both DoubleChecker and
Velodrome, then repairs the bug and shows the violation disappear.

Run with::

    python examples/bank_accounts.py
"""

from repro import (
    Acquire,
    AtomicitySpecification,
    Compute,
    DoubleChecker,
    Invoke,
    Program,
    RandomScheduler,
    Read,
    Release,
    VelodromeChecker,
    Write,
)

ACCOUNTS = 3
TELLERS = 3
TRANSFERS_PER_TELLER = 15


def build_bank(fixed: bool) -> Program:
    """``fixed=False`` ships the two-phase bug; ``fixed=True`` holds
    both account locks for the whole transfer."""
    program = Program("bank" + ("-fixed" if fixed else "-buggy"))
    accounts = program.add_global_objects("accounts", ACCOUNTS)

    @program.method
    def deposit(ctx, index, amount):
        account = accounts[index]
        yield Acquire(account)
        balance = yield Read(account, "balance")
        yield Write(account, "balance", (balance or 0) + amount)
        yield Release(account)

    @program.method
    def transfer(ctx, src, dst, amount):
        source, target = accounts[src], accounts[dst]
        if fixed:
            # lock ordering by account index avoids deadlock
            first, second = sorted((source, target), key=lambda a: a.oid)
            yield Acquire(first)
            yield Acquire(second)
            balance = yield Read(source, "balance")
            yield Write(source, "balance", (balance or 0) - amount)
            other = yield Read(target, "balance")
            yield Write(target, "balance", (other or 0) + amount)
            yield Release(second)
            yield Release(first)
        else:
            # BUG: the balance check and the withdrawal are separately
            # locked; another transfer can interleave between them
            yield Acquire(source)
            balance = yield Read(source, "balance")
            yield Release(source)
            yield Compute(2)  # compute fees, log, ...
            yield Acquire(source)
            yield Write(source, "balance", (balance or 0) - amount)
            yield Release(source)
            yield Acquire(target)
            other = yield Read(target, "balance")
            yield Write(target, "balance", (other or 0) + amount)
            yield Release(target)

    @program.method
    def audit(ctx):
        """Read-only sweep over all accounts (atomic snapshot intent)."""
        total = 0
        for account in accounts:
            yield Acquire(account)
            balance = yield Read(account, "balance")
            yield Release(account)
            total += balance or 0
        return total

    @program.method
    def teller(ctx, tid):
        for i in range(TRANSFERS_PER_TELLER):
            src = (tid + i) % ACCOUNTS
            dst = (tid + i + 1) % ACCOUNTS
            yield Invoke("transfer", (src, dst, 1))
            if i % 5 == 0:
                yield Invoke("audit")
            if i % 7 == 0:
                yield Invoke("deposit", (src, 10))

    program.mark_entry("teller")
    for t in range(TELLERS):
        program.add_thread(f"teller{t}", "teller", (t,))
    return program


def check(fixed: bool, seed: int = 7):
    program = build_bank(fixed)
    spec = AtomicitySpecification.initial(program)

    dc_result = DoubleChecker(spec).run_single(
        build_bank(fixed), RandomScheduler(seed=seed, switch_prob=0.7)
    )
    velodrome_result = VelodromeChecker(spec).run(
        build_bank(fixed), RandomScheduler(seed=seed, switch_prob=0.7)
    )
    return dc_result, velodrome_result


def main() -> None:
    print("=== buggy bank (locked but not atomic) ===")
    dc, velodrome = check(fixed=False)
    print(f"DoubleChecker blames: {sorted(dc.blamed_methods) or 'nothing'}")
    print(f"Velodrome blames:     {sorted(velodrome.blamed_methods) or 'nothing'}")
    if dc.violations:
        example = dc.violations.records[0]
        print(f"cycle witness: {' -> '.join(example.cycle_methods)}")
    print()
    print("=== fixed bank (two-lock transfer) ===")
    dc, velodrome = check(fixed=True)
    print(f"DoubleChecker blames: {sorted(dc.blamed_methods) or 'nothing'}")
    print(f"Velodrome blames:     {sorted(velodrome.blamed_methods) or 'nothing'}")
    print()
    print("note: `transfer` is clean now, but `audit` is still blamed —")
    print("locking accounts one at a time does not make the sweep an")
    print("atomic snapshot.  That is a genuine atomicity bug no race")
    print("detector can see; either fix audit to take all locks, or")
    print("remove it from the specification (iterative refinement would).")


if __name__ == "__main__":
    main()
