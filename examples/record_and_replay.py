#!/usr/bin/env python3
"""Record once, check many: traces and the offline checker.

Records one execution of a benchmark to a JSONL trace, then analyzes
the same trace three ways without re-running the program:

1. **Velodrome (replayed)** — the online checker driven by the trace;
   identical results to its live run.
2. **DoubleChecker's ICD+PCD (replayed)** — same.
3. **Offline checker** — the Farzan & Parthasarathy-style design point
   the paper compares against (Section 6): post-mortem detection with
   streaming summarization and *no synchronization edges*, so cycles
   formed purely by lock release–acquire order are not reported.

Run with::

    python examples/record_and_replay.py
"""

import os
import tempfile

from repro import (
    ICD,
    OfflineChecker,
    PCD,
    RandomScheduler,
    Trace,
    VelodromeChecker,
    ViolationSummary,
    record_execution,
    replay_trace,
)
from repro.harness.explain import explain_summary
from repro.harness.runner import initial_spec
from repro.workloads import build

BENCHMARK = "hsqldb6"


def main() -> None:
    spec = initial_spec(BENCHMARK)

    # ---- record ---------------------------------------------------------
    trace = record_execution(
        build(BENCHMARK), RandomScheduler(seed=21, switch_prob=0.6)
    )
    path = os.path.join(tempfile.gettempdir(), f"{BENCHMARK}.trace.jsonl")
    trace.save(path)
    print(f"recorded {len(trace)} events ({trace.access_count()} accesses) "
          f"-> {path}")

    loaded = Trace.load(path)

    # ---- Velodrome over the trace --------------------------------------
    velodrome = VelodromeChecker(spec)
    replay_trace(loaded, [velodrome])
    print(f"\nVelodrome (replayed): "
          f"{sorted(velodrome.violations.blamed_methods()) or 'clean'}")

    # ---- DoubleChecker's analyses over the trace ------------------------
    violations = ViolationSummary()
    pcd = PCD()
    icd = ICD(spec, on_scc=lambda c: violations.extend(pcd.process(c)))
    replay_trace(loaded, [icd])
    print(f"ICD+PCD (replayed):   "
          f"{sorted(violations.blamed_methods()) or 'clean'}")
    print(f"  ICD filtered {icd.stats.sccs} SCC(s) out of "
          f"{icd.tx_manager.stats.regular_transactions} transactions")

    # ---- the offline comparator -----------------------------------------
    offline = OfflineChecker(spec).check(loaded)
    print(f"Offline checker:      "
          f"{sorted(offline.blamed_methods) or 'clean'} "
          f"(skipped {offline.stats.sync_accesses_skipped} sync accesses; "
          f"collected {offline.gc_stats.transactions_collected} summarized txs)")

    print()
    print(explain_summary(violations))


if __name__ == "__main__":
    main()
