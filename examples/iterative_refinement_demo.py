#!/usr/bin/env python3
"""Deriving an atomicity specification by iterative refinement.

The paper's Figure 6 methodology: start by assuming *every* method is
atomic (except thread entry points and methods with interrupting
calls), run the checker, remove whatever blame assignment reports, and
repeat until a full round of trials reports nothing new.  What remains
is the inferred atomicity specification; what was removed is the list
of non-atomic methods — the checker's findings.

Run with::

    python examples/iterative_refinement_demo.py
"""

from repro import AtomicitySpecification, DoubleChecker, RandomScheduler
from repro.spec.refinement import iterative_refinement
from repro.workloads import build

BENCHMARK = "xalan9"
TRIALS_PER_STEP = 3


def main() -> None:
    program = build(BENCHMARK)
    spec0 = AtomicitySpecification.initial(program)
    print(f"benchmark: {BENCHMARK}")
    print(f"initial specification: {spec0.describe()}")
    print()

    trial_log = []

    def runner(spec: AtomicitySpecification, trial: int):
        result = DoubleChecker(spec).run_single(
            build(BENCHMARK), RandomScheduler(seed=trial, switch_prob=0.5)
        )
        trial_log.append((trial, len(result.blamed_methods)))
        return result.blamed_methods

    result = iterative_refinement(spec0, runner, trials_per_step=TRIALS_PER_STEP)

    for step in result.steps:
        print(
            f"step {step.step_index}: spec had {step.spec_size_before} atomic "
            f"methods; blamed {sorted(step.newly_blamed)}"
        )
    print()
    print(f"converged: {result.converged} after {len(result.steps)} steps "
          f"({len(trial_log)} checking trials)")
    print(f"total static violations: {result.violation_count()}")
    print(f"final specification: {result.final_spec.describe()}")
    print()
    print("non-atomic methods discovered:")
    for method in sorted(result.all_blamed):
        print(f"  - {method}")


if __name__ == "__main__":
    main()
