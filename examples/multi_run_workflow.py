#!/usr/bin/env python3
"""Multi-run mode as a testing workflow.

In deployment/testing settings a program runs many times.  Multi-run
mode exploits that: several cheap first runs (ICD only, no logging)
identify the static transactions that ever appear in imprecise cycles;
the information is persisted as JSON; a later second run instruments
only those transactions and performs the precise check.

This example drives the workflow on the synthetic ``hsqldb6`` benchmark
and reports what each stage cost and found — including how much of the
program the second run could skip entirely.

Run with::

    python examples/multi_run_workflow.py
"""

from repro import DoubleChecker, RandomScheduler, StaticTransactionInfo
from repro.harness.runner import initial_spec
from repro.workloads import build

BENCHMARK = "tsp"
FIRST_RUNS = 5


def main() -> None:
    spec = initial_spec(BENCHMARK)
    checker = DoubleChecker(spec)

    # ---- stage 1: cheap first runs on different schedules -------------
    print(f"=== {FIRST_RUNS} first runs (ICD only, no logging) ===")
    infos = []
    for trial in range(FIRST_RUNS):
        result = checker.run_first(
            build(BENCHMARK), RandomScheduler(seed=trial, switch_prob=0.5)
        )
        infos.append(result.static_info)
        print(
            f"  trial {trial}: {result.icd_stats.sccs} SCCs, "
            f"{len(result.static_info.methods)} implicated methods, "
            f"log entries written: {result.icd_stats.log_entries}"
        )

    info = StaticTransactionInfo.union_all(infos)
    payload = info.to_json()
    print(f"\nstatic transaction information (persisted between runs):\n  {payload}")

    # ---- stage 2: the focused second run --------------------------------
    print("\n=== second run (ICD+PCD, restricted instrumentation) ===")
    restored = StaticTransactionInfo.from_json(payload)
    second = checker.run_second(
        build(BENCHMARK), restored, RandomScheduler(seed=999, switch_prob=0.5)
    )
    stats = second.tx_stats
    total = stats.regular_accesses + stats.unary_accesses + stats.skipped_accesses
    skipped_share = stats.skipped_accesses / total if total else 0.0
    print(f"  instrumented accesses: {stats.regular_accesses + stats.unary_accesses}")
    print(f"  skipped accesses:      {stats.skipped_accesses} ({skipped_share:.0%})")
    print(f"  violations: {sorted(second.violations.blamed_methods()) or 'none'}")

    # ---- comparison: what a full single run would have done ---------------
    print("\n=== reference: single-run mode on the same schedule ===")
    single = DoubleChecker(spec).run_single(
        build(BENCHMARK), RandomScheduler(seed=999, switch_prob=0.5)
    )
    print(f"  instrumented accesses: {single.icd_stats.instrumented_accesses}")
    print(f"  log entries: {single.icd_stats.log_entries} "
          f"(second run: {second.icd_stats.log_entries})")
    print(f"  violations: {sorted(single.violations.blamed_methods()) or 'none'}")
    missed = single.violations.blamed_methods() - second.violations.blamed_methods()
    if missed:
        print(f"  multi-run missed on this schedule: {sorted(missed)} "
              "(the soundness price of splitting work across runs)")


if __name__ == "__main__":
    main()
