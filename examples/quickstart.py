#!/usr/bin/env python3
"""Quickstart: find an atomicity violation in 40 lines.

Builds a tiny two-thread program with a textbook bug — a supposedly
atomic read-modify-write whose read and write can be split by the other
thread — and checks it with DoubleChecker's single-run mode.

Run with::

    python examples/quickstart.py
"""

from repro import (
    AtomicitySpecification,
    Compute,
    DoubleChecker,
    Invoke,
    Program,
    RandomScheduler,
    Read,
    Write,
)


def build_program() -> Program:
    program = Program("quickstart")
    counter = program.add_global_object("counter")

    @program.method
    def increment(ctx):
        """Supposedly atomic — but nothing stops another thread from
        writing between the read and the write."""
        value = yield Read(counter, "value")
        yield Compute(2)  # some local work widens the race window
        yield Write(counter, "value", value + 1)

    @program.method
    def worker(ctx):
        for _ in range(25):
            yield Invoke("increment")

    program.mark_entry("worker")
    program.add_thread("T1", "worker")
    program.add_thread("T2", "worker")
    return program


def main() -> None:
    program = build_program()

    # All methods except thread entry points are expected to be atomic.
    spec = AtomicitySpecification.initial(program)
    print(f"specification: {spec.describe()}")

    checker = DoubleChecker(spec)
    result = checker.run_single(program, RandomScheduler(seed=42, switch_prob=0.6))

    print(f"executed {result.execution.steps} operations, "
          f"{result.tx_stats.regular_transactions} transactions")
    print(f"ICD: {result.icd_stats.idg_edges} IDG edges, "
          f"{result.icd_stats.sccs} imprecise SCCs")
    print(f"PCD: {result.pcd_stats.cycles_found} precise cycles")
    print()
    if result.violations:
        print("ATOMICITY VIOLATIONS:")
        for method in sorted(result.blamed_methods):
            print(f"  - method {method!r} is not atomic")
        example = result.violations.records[0]
        print(f"\nexample cycle: {' -> '.join(example.cycle_methods)} "
              f"(blamed: {example.blamed_method} on {example.thread_name})")
    else:
        print("no violations found")


if __name__ == "__main__":
    main()
