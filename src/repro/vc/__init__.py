"""AeroDrome-style vector-clock atomicity checking (third backend).

Mathur & Viswanathan's linear-time algorithm replaces Velodrome's
per-edge graph search with per-transaction vector clocks: a cycle in
the transactional dependence graph manifests as a clock entry that
"sees" a transaction the new edge points back into.  The checker runs
online through the same :class:`~repro.runtime.listeners.ExecutionListener`
pipeline as ICD and Velodrome and reports through the shared
:mod:`repro.core.reports` model, so verdicts are directly comparable.
"""

from repro.vc.checker import VcChecker, VcResult, VcStats

__all__ = ["VcChecker", "VcResult", "VcStats"]
