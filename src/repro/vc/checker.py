"""The vector-clock online atomicity checker (AeroDrome-style).

Transactions are demarcated exactly as in the other backends (the
shared :class:`~repro.core.transactions.TransactionManager`) and the
dependence graph is represented the same way — edges on the
transaction objects — so the transaction collector, the metadata
table, and the violation model are reused unchanged.  What differs is
cycle detection: instead of running a graph search per new edge
(Velodrome) or deferring precision to a second pass (ICD+PCD), every
transaction carries a vector clock mapping each thread to the newest
transaction of that thread known to happen before it.  An edge
``src -> dst`` closes a cycle exactly when ``src`` already sees a
transaction of ``dst``'s thread at least as new as ``dst`` — a single
dict probe, no traversal.

Soundness and completeness of the edge-time check rest on *eager*
clock propagation: whenever a clock grows, the growth is pushed
transitively along the transaction's out-edges and intra-thread
successor chain until a fixpoint (joins are monotone and bounded by
the per-thread transaction counters, so the worklist terminates).  At
fixpoint, every clock reflects every path in the current graph; a new
cycle must contain the edge just added (any other cycle predates the
edge and was caught at *its* last edge), and the path closing it is
already summarized in ``src``'s clock.  A transaction's intra-thread
predecessor is joined in at start, so program-order edges never close
a cycle themselves — the temporally last edge of any cycle is always a
cross edge.

By default the checker skips synchronization pseudo-accesses
(``sync_edges=False``), the AeroDrome design point: only data
conflicts order transactions, so cycles closed purely through lock
release/acquire edges — which Velodrome reports — are deliberately not
reported.  ``sync_edges=True`` restores Velodrome's treatment (sync
operations as reads/writes of the monitor pseudo-field) and makes the
two backends' verdicts identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.gc import GcStats, TransactionCollector
from repro.core.reports import ViolationRecord, ViolationSummary
from repro.core.transactions import (
    IdgEdge,
    Transaction,
    TransactionManager,
    TransactionStats,
)
from repro.errors import OutOfMemoryBudget
from repro.obs.registry import publish_stats, recorder as obs_recorder
from repro.octet.runtime import barrier_fastpath_enabled
from repro.runtime.events import AccessEvent, AccessKind, Site
from repro.runtime.executor import ExecutionResult, Executor
from repro.runtime.listeners import ExecutionListener
from repro.runtime.program import Program
from repro.runtime.scheduler import Scheduler
from repro.spec.specification import AtomicitySpecification
from repro.velodrome.metadata import MetadataTable


@dataclass
class VcStats:
    """Access-level work counters (feed the cost model)."""

    instrumented_accesses: int = 0
    #: accesses resolved by the fused barrier's no-op predicate (the
    #: field's metadata already names this transaction)
    fastpath_hits: int = 0
    sync_accesses_skipped: int = 0
    array_accesses_skipped: int = 0
    metadata_updates: int = 0
    edges: int = 0
    #: re-observations of an existing edge (no clock work needed: the
    #: earlier join plus eager propagation already cover it)
    edges_deduplicated: int = 0
    #: clock joins that actually grew the destination clock
    clock_joins: int = 0
    #: worklist pushes during eager transitive propagation
    propagations: int = 0
    cycle_checks: int = 0
    cycles_found: int = 0


@dataclass
class VcResult:
    """Outcome of one execution under the vector-clock checker."""

    violations: ViolationSummary
    execution: ExecutionResult
    stats: VcStats
    tx_stats: TransactionStats
    gc_stats: GcStats
    elapsed_seconds: float = 0.0

    @property
    def blamed_methods(self) -> set:
        return self.violations.blamed_methods()


class _VcState:
    """Per-transaction clock state (side table keyed by tx id —
    :class:`Transaction` is a ``__slots__`` type shared with the other
    backends, so backend-private state lives outside it)."""

    __slots__ = ("clock",)

    def __init__(self, clock: Dict[str, int]) -> None:
        #: thread name -> newest tx id of that thread that happens
        #: before (or is) this transaction's latest observed point;
        #: tx ids are globally monotone, hence monotone per thread,
        #: so they double as the per-thread ordinals
        self.clock = clock


class VcChecker(ExecutionListener):
    """Sound linear-time conflict-serializability checking.

    Args:
        spec: the atomicity specification.
        sync_edges: order transactions through synchronization
            pseudo-accesses as well (Velodrome-identical verdicts);
            off by default — see the module docstring.
        monitor_regular / monitor_unary: instrumentation filters,
            same contract as the other backends.
        instrument_arrays / array_granularity_object: array experiment
            knobs shared with Velodrome.
        memory_budget: cap on live transactions (out-of-memory model).
        gc_interval: transaction-collector cadence.
    """

    def __init__(
        self,
        spec: AtomicitySpecification,
        *,
        sync_edges: bool = False,
        monitor_regular: Optional[Callable[[str], bool]] = None,
        monitor_unary: bool = True,
        instrument_arrays: bool = False,
        array_granularity_object: bool = False,
        memory_budget: Optional[int] = None,
        gc_interval: Optional[int] = 64,
        fastpath: Optional[bool] = None,
    ) -> None:
        self.spec = spec
        self.sync_edges = sync_edges
        #: take the fused no-op shortcut in the barriers (``None`` =
        #: consult ``DOUBLECHECKER_BARRIER_FASTPATH``, the same escape
        #: hatch the Octet/ICD fast path honours)
        self.fastpath = (
            barrier_fastpath_enabled() if fastpath is None else fastpath
        )
        self.instrument_arrays = instrument_arrays
        self.array_granularity_object = array_granularity_object
        self.memory_budget = memory_budget
        self.gc_interval = gc_interval

        self.stats = VcStats()
        self.metadata = MetadataTable()
        self.violations = ViolationSummary()
        self.tx_manager = TransactionManager(
            spec,
            monitor_regular=monitor_regular,
            monitor_unary=monitor_unary,
            on_transaction_start=self._transaction_started,
            on_transaction_end=self._transaction_ended,
        )
        self.collector = TransactionCollector(self.tx_manager)
        self._edge_order = 0
        #: tx id -> clock state; entries are dropped when the collector
        #: sweeps the transaction
        self._states: Dict[int, _VcState] = {}
        self._reported: Set[Tuple[int, int]] = set()
        self._tx_ends_since_gc = 0
        self._obs = obs_recorder()

    # ------------------------------------------------------------------
    # ExecutionListener
    # ------------------------------------------------------------------
    def on_method_enter(self, thread_name: str, method: str, depth: int) -> None:
        self.tx_manager.on_method_enter(thread_name, method, depth)

    def on_method_exit(self, thread_name: str, method: str, depth: int) -> None:
        self.tx_manager.on_method_exit(thread_name, method, depth)

    def on_thread_end(self, thread_name: str) -> None:
        self.tx_manager.on_thread_end(thread_name)

    def on_execution_end(self) -> None:
        self.tx_manager.finish_all()
        self.publish_metrics()

    def publish_metrics(self) -> None:
        """Publish every counter this analysis owns onto the registry."""
        obs = self._obs
        if not obs.enabled:
            return
        publish_stats(obs, "vc", self.stats)
        publish_stats(obs, "transactions", self.tx_manager.stats)
        publish_stats(
            obs,
            "gc",
            self.collector.stats,
            gauges=("peak_live_transactions", "peak_live_log_entries"),
        )

    def on_access(self, event: AccessEvent) -> None:
        if event.is_array and not self.instrument_arrays:
            self.stats.array_accesses_skipped += 1
            return
        if event.is_sync and not self.sync_edges:
            self.stats.sync_accesses_skipped += 1
            return
        tx = self.tx_manager.transaction_for_access(event)
        if tx is None:
            return
        self.stats.instrumented_accesses += 1
        address = (
            event.object_address
            if (event.is_array and self.array_granularity_object)
            else event.address
        )
        self._analyze(tx, address, event.is_read())

    # ------------------------------------------------------------------
    # fused barriers (same pattern as ICD: the executor's monomorphic
    # single-listener dispatch gets a closure whose fast path — the
    # field's metadata already names the accessing transaction, so the
    # access can neither add an edge nor change metadata — costs one
    # dict probe and a branch chain; everything else falls into the
    # shared _analyze, so outputs are identical by construction)
    # ------------------------------------------------------------------
    def access_barrier(self) -> Callable[[AccessEvent], None]:
        if not self.fastpath or self.array_granularity_object:
            return self.on_access

        tx_manager = self.tx_manager
        tx_for_fields = tx_manager.transaction_for_fields
        tx_current = tx_manager._current
        tx_stats = tx_manager.stats
        stats = self.stats
        fields_get = self.metadata._fields.get
        instrument_arrays = self.instrument_arrays
        sync_edges = self.sync_edges
        analyze = self._analyze

        def fused_access(
            event: AccessEvent,
            *,
            _READ: AccessKind = AccessKind.READ,
        ) -> None:
            if event.is_array and not instrument_arrays:
                stats.array_accesses_skipped += 1
                return
            if event.is_sync and not sync_edges:
                stats.sync_accesses_skipped += 1
                return
            thread = event.thread_name
            tx = tx_current.get(thread)
            if tx is not None and not tx.is_unary:
                if not tx.monitored:
                    tx_stats.skipped_accesses += 1
                    return
                tx_stats.regular_accesses += 1
            else:
                tx = tx_for_fields(thread, event.site)
                if tx is None:
                    return  # not instrumented in this configuration
            stats.instrumented_accesses += 1
            is_read = event.kind is _READ
            address = (event.obj.oid, event.fieldname)
            meta = fields_get(address)
            if meta is not None:
                if is_read:
                    if meta.last_readers.get(thread) is tx:
                        stats.fastpath_hits += 1
                        return
                elif meta.last_writer is tx and not meta.last_readers:
                    stats.fastpath_hits += 1
                    return
            analyze(tx, address, is_read)

        return fused_access

    def access_barrier_batch(self) -> Optional[Callable[..., None]]:
        """Columnar barrier: same no-op predicate, consuming the batch
        loop's pre-interned column values directly (the batch executor
        routes synchronization through the event path, so ``is_sync``
        is always false here)."""
        if not self.fastpath or self.array_granularity_object:
            return None

        tx_manager = self.tx_manager
        tx_for_fields = tx_manager.transaction_for_fields
        tx_current = tx_manager._current
        tx_stats = tx_manager.stats
        stats = self.stats
        fields_get = self.metadata._fields.get
        instrument_arrays = self.instrument_arrays
        analyze = self._analyze

        def fused_batch(
            seq: int,
            thread: str,
            obj: Any,
            fieldname: str,
            kind: AccessKind,
            site: Site,
            address: Tuple[int, str],
            site_str: str,
            is_array: bool,
            *,
            _READ: AccessKind = AccessKind.READ,
        ) -> None:
            if is_array and not instrument_arrays:
                stats.array_accesses_skipped += 1
                return
            tx = tx_current.get(thread)
            if tx is not None and not tx.is_unary:
                if not tx.monitored:
                    tx_stats.skipped_accesses += 1
                    return
                tx_stats.regular_accesses += 1
            else:
                tx = tx_for_fields(thread, site)
                if tx is None:
                    return
            stats.instrumented_accesses += 1
            is_read = kind is _READ
            meta = fields_get(address)
            if meta is not None:
                if is_read:
                    if meta.last_readers.get(thread) is tx:
                        stats.fastpath_hits += 1
                        return
                elif meta.last_writer is tx and not meta.last_readers:
                    stats.fastpath_hits += 1
                    return
            analyze(tx, address, is_read)

        return fused_batch

    # ------------------------------------------------------------------
    # the per-access analysis (Velodrome's Figure 5 conflict rules; the
    # cycle check is the clock probe instead of a graph search)
    # ------------------------------------------------------------------
    def _analyze(
        self, tx: Transaction, address: Tuple[int, str], is_read: bool
    ) -> None:
        meta = self.metadata.lookup(address)

        writer = meta.last_writer
        if writer is not None and writer.thread_name != tx.thread_name:
            self._add_edge(writer, tx)

        if is_read:
            if meta.last_readers.get(tx.thread_name) is not tx:
                self.stats.metadata_updates += 1
                meta.last_readers[tx.thread_name] = tx
        else:
            # snapshot: adding an edge can end an interrupted unary
            # transaction, whose GC purges weak metadata references
            for thread_name, reader in list(meta.last_readers.items()):
                if thread_name != tx.thread_name:
                    self._add_edge(reader, tx)
            self.stats.metadata_updates += 1
            meta.last_readers.clear()
            meta.last_writer = tx

    def _add_edge(self, src: Transaction, dst: Transaction) -> None:
        if src is dst or src.collected:
            return
        if any(e.dst is dst for e in src.out_edges):
            self.stats.edges_deduplicated += 1
            return  # already joined; eager propagation keeps it current
        self._edge_order += 1
        edge = IdgEdge(src, dst, "vc", self._edge_order)
        src.out_edges.append(edge)
        dst.in_edges.append(edge)
        src.edge_touched = True
        dst.edge_touched = True
        self.stats.edges += 1

        src_state = self._states[src.tx_id]
        dst_state = self._states[dst.tx_id]

        # cycle probe: src happens-after a transaction of dst's thread
        # at least as new as dst => a path dst ~> src already exists,
        # and this edge closes it
        self.stats.cycle_checks += 1
        if src_state.clock.get(dst.thread_name, 0) >= dst.tx_id:
            self._report_cycle(src, dst)

        self._join_into(src, src_state, dst, dst_state)

        # eagerly end an interrupted unary transaction on the source
        # side (the destination is the accessor, mid-access)
        self.tx_manager.end_if_interrupted_unary(src)

    def _join_into(
        self,
        src: Transaction,
        src_state: _VcState,
        dst: Transaction,
        dst_state: _VcState,
    ) -> None:
        """Join ``src``'s knowledge into ``dst`` and propagate any
        growth transitively (worklist over out-edges and the
        intra-thread chain)."""
        if not self._join(src, src_state, dst_state):
            return
        self.stats.clock_joins += 1
        states = self._states
        worklist: List[Transaction] = [dst]
        while worklist:
            node = worklist.pop()
            node_state = states.get(node.tx_id)
            if node_state is None:
                continue
            succs: List[Transaction] = [e.dst for e in node.out_edges]
            if node.intra_next is not None:
                succs.append(node.intra_next)
            for succ in succs:
                succ_state = states.get(succ.tx_id)
                if succ_state is None:
                    continue
                if self._join(node, node_state, succ_state):
                    self.stats.propagations += 1
                    worklist.append(succ)

    @staticmethod
    def _join(src: Transaction, src_state: _VcState, dst_state: _VcState) -> bool:
        """``dst_state.clock |= src_state.clock ∪ {src.thread: src}``;
        returns whether the destination clock grew."""
        dst_clock = dst_state.clock
        grew = False
        for thread, ordinal in src_state.clock.items():
            if dst_clock.get(thread, 0) < ordinal:
                dst_clock[thread] = ordinal
                grew = True
        if dst_clock.get(src.thread_name, 0) < src.tx_id:
            dst_clock[src.thread_name] = src.tx_id
            grew = True
        return grew

    def _report_cycle(self, src: Transaction, dst: Transaction) -> None:
        key = (src.tx_id, dst.tx_id)
        if key in self._reported:
            return
        self._reported.add(key)
        self.stats.cycles_found += 1
        # the closing edge's destination is the current accessor — the
        # same node Velodrome's oldest-out/newest-in blame rule singles
        # out on a two-transaction cycle, so the backends agree there;
        # longer cycles have no canonical witness (see repro.core.blame)
        self.violations.add(
            ViolationRecord(
                blamed_method=dst.method,
                blamed_tx_id=dst.tx_id,
                thread_name=dst.thread_name,
                cycle_methods=(dst.method, src.method),
                cycle_tx_ids=(dst.tx_id, src.tx_id),
                detector="vc",
            )
        )

    # ------------------------------------------------------------------
    # transaction lifecycle, GC, memory budget
    # ------------------------------------------------------------------
    def _transaction_started(self, tx: Transaction) -> None:
        prev = tx.intra_prev
        if prev is not None:
            prev_state = self._states.get(prev.tx_id)
            if prev_state is not None:
                clock = dict(prev_state.clock)
                clock[tx.thread_name] = prev.tx_id
                self._states[tx.tx_id] = _VcState(clock)
                return
        self._states[tx.tx_id] = _VcState({})

    def _transaction_ended(self, tx: Transaction) -> None:
        self._tx_ends_since_gc += 1
        if (
            self.gc_interval is not None
            and self._tx_ends_since_gc >= self.gc_interval
        ):
            self._tx_ends_since_gc = 0
            self.collector.note_peak()
            self.collector.collect()
            states = self._states
            for tx_id in self.collector.last_swept_ids:
                states.pop(tx_id, None)
            self.metadata.purge_collected()
        if self.memory_budget is not None:
            used = len(self.tx_manager.all_transactions)
            if used > self.memory_budget:
                raise OutOfMemoryBudget("VC", used, self.memory_budget)

    # ------------------------------------------------------------------
    def run(
        self, program: Program, scheduler: Optional[Scheduler] = None
    ) -> VcResult:
        """Execute ``program`` under this checker."""
        started = time.perf_counter()
        execution = Executor(program, scheduler, [self]).run()
        elapsed = time.perf_counter() - started
        return VcResult(
            violations=self.violations,
            execution=execution,
            stats=self.stats,
            tx_stats=self.tx_manager.stats,
            gc_stats=self.collector.stats,
            elapsed_seconds=elapsed,
        )
