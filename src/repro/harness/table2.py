"""Table 2 — static atomicity violations per checker.

For each benchmark, iterative refinement is run to convergence three
times — under Velodrome, DoubleChecker's single-run mode, and
DoubleChecker's multi-run mode — and every method blamed along the way
is collected.  ``Unique`` counts violations a configuration reported
that single-run mode (sound and precise by design) did not; non-zero
values come from run-to-run schedule nondeterminism, exactly as in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.harness import runner
from repro.harness.parallel import CellPool, ensure_pool
from repro.harness.rendering import render_table
from repro.workloads import all_names


@dataclass
class Table2Row:
    """One benchmark's violation counts."""

    name: str
    velodrome_total: int
    velodrome_unique: int
    single_total: int
    multi_total: int
    multi_unique: int
    velodrome_blamed: Set[str]
    single_blamed: Set[str]
    multi_blamed: Set[str]


@dataclass
class Table2Result:
    rows: List[Table2Row]

    def totals(self) -> Dict[str, int]:
        return {
            "velodrome_total": sum(r.velodrome_total for r in self.rows),
            "velodrome_unique": sum(r.velodrome_unique for r in self.rows),
            "single_total": sum(r.single_total for r in self.rows),
            "multi_total": sum(r.multi_total for r in self.rows),
            "multi_unique": sum(r.multi_unique for r in self.rows),
        }

    def multi_detection_rate(self) -> float:
        """Fraction of single-run violations multi-run mode also found
        (the paper reports 83% overall, 90% per-program average)."""
        single = sum(r.single_total for r in self.rows)
        if single == 0:
            return 1.0
        found = sum(
            len(r.multi_blamed & r.single_blamed) for r in self.rows
        )
        return found / single

    def render(self) -> str:
        headers = [
            "benchmark",
            "Velodrome",
            "(Unique)",
            "Single-run",
            "Multi-run",
            "(Unique)",
        ]
        rows = [
            [
                r.name,
                r.velodrome_total,
                r.velodrome_unique,
                r.single_total,
                r.multi_total,
                r.multi_unique,
            ]
            for r in self.rows
        ]
        totals = self.totals()
        rows.append(
            [
                "Total",
                totals["velodrome_total"],
                totals["velodrome_unique"],
                totals["single_total"],
                totals["multi_total"],
                totals["multi_unique"],
            ]
        )
        table = render_table(
            headers,
            rows,
            title="Table 2: static atomicity violations reported (iterative refinement)",
        )
        rate = self.multi_detection_rate()
        return f"{table}\n\nmulti-run detection rate vs single-run: {rate:.0%}"


def generate(
    names: Optional[Sequence[str]] = None,
    *,
    trials_per_step: int = 3,
    seed_base: int = 0,
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    pool: Optional[CellPool] = None,
) -> Table2Result:
    """Regenerate Table 2 for the given benchmarks (default: all 19).

    Refinement rounds stay serial (each round depends on the last),
    but every round's trials fan out across ``jobs`` workers; results
    are identical for any job count.  ``retries``, ``cell_timeout``,
    and ``checkpoint`` configure the owned pool's fault tolerance
    (ignored when an explicit ``pool`` is passed; see
    ``docs/ROBUSTNESS.md``).
    """
    rows = []
    with ensure_pool(
        pool, jobs,
        retries=retries, cell_timeout=cell_timeout, checkpoint=checkpoint,
    ) as cells:
        for name in names or all_names():
            velodrome = runner.refine(
                name, "velodrome", trials_per_step=trials_per_step,
                seed_base=seed_base, pool=cells,
            ).all_blamed
            single = runner.refine(
                name, "single", trials_per_step=trials_per_step,
                seed_base=seed_base + 10_000, pool=cells,
            ).all_blamed
            multi = runner.refine(
                name, "multi", trials_per_step=max(2, trials_per_step - 1),
                seed_base=seed_base + 20_000, pool=cells,
            ).all_blamed
            rows.append(
                Table2Row(
                    name=name,
                    velodrome_total=len(velodrome),
                    velodrome_unique=len(velodrome - single),
                    single_total=len(single),
                    multi_total=len(multi),
                    multi_unique=len(multi - single),
                    velodrome_blamed=velodrome,
                    single_blamed=single,
                    multi_blamed=multi,
                )
            )
    return Table2Result(rows)
