"""Deterministic fault injection for the experiment harness.

Long experiment grids (Table 2/3, Figure 7, the Section 5.4 studies)
fan hundreds of independent cells across worker processes; on real
machines workers crash, cells hang, and transient ``OSError``\\ s fire
late.  The recovery paths in :class:`~repro.harness.parallel.CellPool`
— bounded retry, per-cell timeouts, pool rebuilds, checkpoint/resume —
are only trustworthy if every one of them can be exercised on demand,
so this module injects the failures *deterministically*:

* whether a fault fires for a cell is a pure function of the fault
  seed, the fault kind, the cell's stable key (see
  :func:`repro.harness.checkpoint.cell_key`), and the attempt number —
  SHA-256, never ``random`` or ``hash()``, so decisions are identical
  across processes, runs, and ``PYTHONHASHSEED`` values;
* faults never corrupt results: an injected fault either kills the
  worker, hangs it, or raises before the cell function runs, so any
  cell that *completes* is untouched and the recovered experiment
  renders byte-identical to a fault-free serial run.

Fault specs are comma-separated ``kind:probability[:opt=value...]``
clauses, e.g.::

    crash:0.2                     # 20% of cells kill their worker
    hang:0.1:seconds=3600         # 10% of cells hang (until killed)
    transient:0.3:limit=2         # 30% raise TransientCellError twice

Kinds:

``crash``
    The worker process dies via ``os._exit`` (the pool observes
    ``BrokenProcessPool``).  Inline (serial) cells raise
    :class:`SimulatedCrash` instead — the parent must survive.
``hang``
    The worker sleeps for ``seconds`` (default one hour) so the
    per-cell timeout machinery has something to kill.  Inline cells
    raise :class:`InjectedHang` immediately instead of sleeping.
``transient``
    Raises :class:`TransientCellError`, the retry path's bread and
    butter.

``limit`` (default 1) caps how many *attempts* of one cell a clause
may sabotage: attempt numbers ``0 .. limit-1`` are eligible, later
retries run clean.  With the default limit every injected fault is
recovered by a single retry, which keeps ``--retries 2`` sufficient
for any probability — campaigns stay deterministic instead of
occasionally dying to an unlucky streak.

The spec comes from (highest precedence first) an explicit
``fault_spec=`` argument, the ``--fault-spec`` CLI flag, or the
``DOUBLECHECKER_FAULT_SPEC`` environment variable; the seed from
``fault_seed=`` / ``DOUBLECHECKER_FAULT_SEED`` (default 0).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

#: environment variables consulted when no explicit spec/seed is given
FAULT_SPEC_ENV = "DOUBLECHECKER_FAULT_SPEC"
FAULT_SEED_ENV = "DOUBLECHECKER_FAULT_SEED"

KINDS = ("crash", "hang", "transient")

#: exit status of a worker killed by an injected crash (diagnostic only)
CRASH_EXIT_CODE = 121


class FaultInjectionError(ValueError):
    """Raised for malformed fault specs."""


class TransientCellError(Exception):
    """An injected transient failure; the retry path must absorb it."""


class SimulatedCrash(Exception):
    """Inline stand-in for a worker crash (serial cells must not take
    the parent process down with ``os._exit``)."""


class InjectedHang(Exception):
    """Inline stand-in for a hung cell (serial cells cannot be
    preempted, so the hang surfaces as an immediate timeout-like
    failure instead of sleeping)."""


@dataclass(frozen=True)
class FaultRule:
    """One ``kind:probability[:opt=value...]`` clause."""

    kind: str
    probability: float
    #: attempts ``0 .. limit-1`` are eligible for injection
    limit: int = 1
    #: how long an injected hang sleeps in a worker
    seconds: float = 3600.0


@dataclass(frozen=True)
class FaultPlan:
    """A parsed fault spec: picklable, shippable to worker processes."""

    rules: Tuple[FaultRule, ...]
    seed: int = 0

    def decide(self, key: str, attempt: int) -> Optional[FaultRule]:
        """The rule (if any) that fires for ``(key, attempt)``.

        Pure and deterministic: the same plan, key, and attempt always
        produce the same decision, in any process.
        """
        for rule in self.rules:
            if attempt >= rule.limit or rule.probability <= 0.0:
                continue
            if _chance(self.seed, rule.kind, key, attempt) < rule.probability:
                return rule
        return None

    def fire(self, key: str, attempt: int, *, in_worker: bool) -> None:
        """Inject the decided fault for ``(key, attempt)``, if any.

        Called at the top of every guarded cell, before the cell
        function runs — a fired fault therefore never leaves a
        half-computed result behind.
        """
        rule = self.decide(key, attempt)
        if rule is None:
            return
        if rule.kind == "crash":
            if in_worker:
                os._exit(CRASH_EXIT_CODE)
            raise SimulatedCrash(
                f"injected worker crash for cell {key} attempt {attempt}"
            )
        if rule.kind == "hang":
            if in_worker:
                time.sleep(rule.seconds)
                # a killed worker never gets here; if the sleep expires
                # the cell still must not produce a result
            raise InjectedHang(
                f"injected hang for cell {key} attempt {attempt}"
            )
        raise TransientCellError(
            f"injected transient failure for cell {key} attempt {attempt}"
        )


def _chance(seed: int, kind: str, key: str, attempt: int) -> float:
    """A uniform [0, 1) draw, deterministic in its arguments."""
    token = f"{seed}:{kind}:{key}:{attempt}".encode()
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def parse_fault_spec(text: str, seed: int = 0) -> Optional[FaultPlan]:
    """Parse ``kind:prob[:opt=value...][,...]``; empty text means no plan."""
    text = (text or "").strip()
    if not text:
        return None
    rules = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) < 2:
            raise FaultInjectionError(
                f"fault clause needs kind:probability, got {clause!r}"
            )
        kind = parts[0].strip()
        if kind not in KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {kind!r} (expected one of {KINDS})"
            )
        try:
            probability = float(parts[1])
        except ValueError:
            raise FaultInjectionError(
                f"fault probability must be a number, got {parts[1]!r}"
            ) from None
        if not 0.0 <= probability <= 1.0:
            raise FaultInjectionError(
                f"fault probability must be in [0, 1], got {probability}"
            )
        options = {"limit": 1, "seconds": 3600.0}
        for option in parts[2:]:
            name, _, value = option.partition("=")
            name = name.strip()
            if name not in options or not value:
                raise FaultInjectionError(
                    f"bad fault option {option!r} (expected "
                    f"limit=N or seconds=S)"
                )
            try:
                options[name] = int(value) if name == "limit" else float(value)
            except ValueError:
                raise FaultInjectionError(
                    f"bad value for fault option {option!r}"
                ) from None
        if options["limit"] < 1:
            raise FaultInjectionError("fault limit must be >= 1")
        rules.append(
            FaultRule(
                kind=kind,
                probability=probability,
                limit=options["limit"],
                seconds=options["seconds"],
            )
        )
    if not rules:
        return None
    return FaultPlan(tuple(rules), seed=seed)


def resolve_fault_plan(
    spec: Optional[str] = None, seed: Optional[int] = None
) -> Optional[FaultPlan]:
    """Build the active plan from an explicit spec or the environment.

    ``None`` spec falls back to ``DOUBLECHECKER_FAULT_SPEC``; an empty
    spec (or environment) disables injection entirely.  The seed falls
    back to ``DOUBLECHECKER_FAULT_SEED`` and then 0.
    """
    if spec is None:
        spec = os.environ.get(FAULT_SPEC_ENV, "")
    if seed is None:
        raw = os.environ.get(FAULT_SEED_ENV, "").strip()
        if raw:
            try:
                seed = int(raw)
            except ValueError:
                raise FaultInjectionError(
                    f"{FAULT_SEED_ENV} must be an integer, got {raw!r}"
                ) from None
        else:
            seed = 0
    return parse_fault_spec(spec, seed=seed)


__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_SEED_ENV",
    "FAULT_SPEC_ENV",
    "FaultInjectionError",
    "FaultPlan",
    "FaultRule",
    "InjectedHang",
    "KINDS",
    "SimulatedCrash",
    "TransientCellError",
    "parse_fault_spec",
    "resolve_fault_plan",
]
