"""Human-readable explanations of violation reports.

Blame assignment names the method; developers then need the story —
which transactions formed the cycle, on which threads, and what kind
of interleaving it was.  :func:`explain_violation` renders one record;
:func:`explain_summary` renders a whole run's findings grouped by
blamed method, the way a checker's console output would.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.core.reports import ViolationRecord, ViolationSummary


def explain_violation(record: ViolationRecord) -> str:
    """One-paragraph description of a single dependence cycle."""
    hops = " -> ".join(record.cycle_methods + (record.cycle_methods[0],))
    lines = [
        f"atomicity violation: method {record.blamed_method!r} "
        f"(thread {record.thread_name}) is not serializable",
        f"  dependence cycle ({record.cycle_size} transactions): {hops}",
        f"  transactions involved: "
        + ", ".join(f"Tx{t}" for t in record.cycle_tx_ids),
        f"  detected by: {record.detector}",
    ]
    if record.cycle_size == 2:
        lines.append(
            "  shape: another thread's transaction interleaved between "
            "this region's conflicting accesses (split update)"
        )
    else:
        lines.append(
            "  shape: a chain of cross-thread dependences closes back on "
            "the blamed region (multi-party interleaving)"
        )
    return "\n".join(lines)


def explain_summary(summary: ViolationSummary) -> str:
    """Group a run's findings per blamed method."""
    if not summary:
        return "no atomicity violations detected"
    by_method = Counter(r.blamed_method for r in summary.records)
    lines: List[str] = [
        f"{summary.static_count()} non-atomic method(s), "
        f"{summary.dynamic_count()} dynamic cycle(s):"
    ]
    for method, count in by_method.most_common():
        sizes = sorted(
            {r.cycle_size for r in summary.records if r.blamed_method == method}
        )
        size_text = "/".join(str(s) for s in sizes)
        lines.append(
            f"  {method}: {count} cycle(s), cycle sizes {size_text}"
        )
    first = summary.records[0]
    lines.append("")
    lines.append(explain_violation(first))
    return "\n".join(lines)
