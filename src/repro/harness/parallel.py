"""Parallel, fault-tolerant execution of independent experiment cells.

Every paper artefact (Table 2, Table 3, Figure 7, the Section 5.3/5.4
studies) is an aggregation over independent (workload, checker, seed)
cells: each cell builds its own program, runs its own seeded scheduler,
and shares no state with any other cell.  That makes the experiment
harness embarrassingly parallel, and — because the cells are separate
*processes* — entirely unconstrained by the GIL.

:class:`CellPool` fans cells across worker processes via
:class:`concurrent.futures.ProcessPoolExecutor`:

* **Workers rebuild programs from workload names.**  Cell functions
  receive the workload *name* and call :func:`repro.workloads.build`
  inside the worker; :class:`~repro.runtime.program.Program` objects
  (closures over generator bodies) are never pickled.  Specifications,
  static-transaction info, and checker results are all plain picklable
  data.
* **Ordered results.**  :meth:`CellPool.starmap` returns results in
  submission order regardless of completion order, so any aggregation
  (medians, unions, geomeans) observes exactly the sequence the serial
  path would — rendered tables are byte-identical for any job count.
* **Read-only caches in workers.**  Workers are initialized with
  :func:`repro.harness.runner.set_cache_readonly`, so only the parent
  process ever writes the final-spec disk cache (see
  :func:`repro.harness.runner._store_cache`).

**Fault tolerance** (see ``docs/ROBUSTNESS.md``): because cells are
pure functions of their picklable arguments, every recovery action is
safe to repeat and the recovered run renders byte-identical output:

* transient failures (:class:`~repro.harness.faults.TransientCellError`,
  ``OSError``) are retried up to ``retries`` times per cell with
  exponential backoff;
* a worker crash (``BrokenProcessPool``) rebuilds the pool and
  re-submits every outstanding cell; crashes charge one retry attempt
  to the outstanding cells (the crasher cannot be identified from the
  parent, so the charge is collective — see ``docs/ROBUSTNESS.md``);
* a cell exceeding ``cell_timeout`` seconds has its workers killed,
  the pool rebuilt, and outstanding cells re-submitted (only the hung
  cell is charged an attempt);
* after ``max_pool_failures`` *consecutive* pool-level failures the
  pool degrades gracefully to inline serial execution instead of
  thrashing;
* with ``checkpoint=FILE`` every completed cell is persisted (atomic
  write-then-rename per flush, see
  :class:`~repro.harness.checkpoint.Checkpoint`) and a resumed run
  skips completed cells entirely.

A batch's telemetry merge is **all-or-nothing**: per-cell snapshots
are folded into the caller's registry — in submission order — only
after the whole batch succeeds, so a failed experiment never leaves a
partially merged registry behind.  Harness-level recovery counters
(``harness.retries``, ``harness.worker_crashes``, ...) are recorded on
the active registry as the events happen.

The job count comes from (highest precedence first) an explicit
``jobs=`` argument, the ``--jobs`` CLI flag, or the
``DOUBLECHECKER_JOBS`` environment variable; the default is serial.
``jobs=1`` executes cells inline in the parent process — no worker
processes, no pickling — which is also the fallback the pool uses when
process creation is unavailable.  ``retries``, ``cell_timeout``, and
``checkpoint`` fall back to ``DOUBLECHECKER_RETRIES``,
``DOUBLECHECKER_CELL_TIMEOUT``, and ``DOUBLECHECKER_CHECKPOINT``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.harness import faults
from repro.harness.checkpoint import MISSING, Checkpoint, cell_key
from repro.obs.registry import (
    MetricsRegistry,
    recorder as obs_recorder,
    use_registry,
)
from repro.obs.wire import aligned_epoch, trace_context

#: environment variables consulted when no explicit value is given
JOBS_ENV = "DOUBLECHECKER_JOBS"
RETRIES_ENV = "DOUBLECHECKER_RETRIES"
CELL_TIMEOUT_ENV = "DOUBLECHECKER_CELL_TIMEOUT"
CHECKPOINT_ENV = "DOUBLECHECKER_CHECKPOINT"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Determine the worker count.

    ``None`` falls back to ``DOUBLECHECKER_JOBS`` (and then to 1);
    ``0`` or a negative count means "one worker per CPU".
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def resolve_retries(retries: Optional[int] = None) -> int:
    """Per-cell retry budget; ``None`` falls back to
    ``DOUBLECHECKER_RETRIES`` (and then to 0)."""
    if retries is None:
        raw = os.environ.get(RETRIES_ENV, "").strip()
        if not raw:
            return 0
        try:
            retries = int(raw)
        except ValueError:
            raise ValueError(
                f"{RETRIES_ENV} must be an integer, got {raw!r}"
            ) from None
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    return retries


def resolve_cell_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """Per-cell timeout in seconds; ``None`` falls back to
    ``DOUBLECHECKER_CELL_TIMEOUT`` (and then to no timeout)."""
    if timeout is None:
        raw = os.environ.get(CELL_TIMEOUT_ENV, "").strip()
        if not raw:
            return None
        try:
            timeout = float(raw)
        except ValueError:
            raise ValueError(
                f"{CELL_TIMEOUT_ENV} must be a number, got {raw!r}"
            ) from None
    if timeout <= 0:
        raise ValueError(f"cell timeout must be > 0, got {timeout}")
    return timeout


def resolve_checkpoint(path: Optional[str] = None) -> Optional[str]:
    """Checkpoint file path; ``None`` falls back to
    ``DOUBLECHECKER_CHECKPOINT`` (and then to no checkpointing)."""
    if path is None:
        path = os.environ.get(CHECKPOINT_ENV, "").strip() or None
    return path


class CellFailedError(Exception):
    """A cell exhausted its retry budget (the cause is chained)."""

    def __init__(self, label: str, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"cell {label} failed after {attempts} attempt(s): {cause!r}"
        )
        self.label = label
        self.attempts = attempts


def _init_worker() -> None:
    """Worker initializer: never write shared on-disk caches."""
    from repro.harness import runner

    runner.set_cache_readonly(True)


def _obs_cell(octx: dict, fn: Callable[..., Any], args: Sequence[Any]) -> Tuple[Any, dict]:
    """Run one cell under a fresh telemetry registry.

    ``octx`` is the batch's :func:`repro.obs.wire.trace_context`: the
    cell registry inherits the caller's trace id and epoch (aligned
    onto this process's monotonic clock), so cells in worker processes
    land on the same merged timeline as the parent's own spans.

    Returns ``(result, snapshot)``.  Both the inline path and the
    worker path route cells through this wrapper when telemetry is on,
    so the merged registry — snapshots folded in **submission order**
    — is identical for any job count (counters are derived from the
    analyzed execution, never from timing; see
    :meth:`repro.obs.registry.MetricsRegistry.merge`).
    """
    registry = MetricsRegistry(
        octx["mode"],
        epoch=aligned_epoch(octx.get("epoch"), octx.get("spawn_now")),
        trace_id=octx.get("trace_id"),
        label="cell-worker",
    )
    previous = use_registry(registry)
    try:
        result = fn(*args)
    finally:
        use_registry(previous)
    return result, registry.snapshot()


def _guarded_cell(
    plan: Optional[faults.FaultPlan],
    key: Optional[str],
    attempt: int,
    octx: Optional[dict],
    fn: Callable[..., Any],
    args: Sequence[Any],
) -> Tuple[Any, Optional[dict]]:
    """The worker-side cell wrapper: fire injected faults, then run.

    Returns ``(result, snapshot)`` with ``snapshot=None`` when
    telemetry is off.  Module-level so it pickles.
    """
    if plan is not None:
        plan.fire(key or "", attempt, in_worker=True)
    if octx is None:
        return fn(*args), None
    return _obs_cell(octx, fn, args)


@dataclass
class _Cell:
    """Book-keeping for one cell of a :meth:`CellPool.starmap` batch."""

    index: int
    fn: Callable[..., Any]
    args: Tuple[Any, ...]
    key: Optional[str] = None
    #: next attempt number (0-based; also the fault-injection attempt)
    attempt: int = 0
    done: bool = False
    result: Any = None
    snapshot: Optional[dict] = field(default=None, repr=False)

    @property
    def label(self) -> str:
        return self.key or f"{self.fn.__qualname__}[{self.index}]"


class CellPool:
    """Run independent experiment cells, optionally across processes.

    Args:
        jobs: worker count (see :func:`resolve_jobs`).  With ``jobs=1``
            every call executes inline and the pool is free.
        retries: extra attempts allowed per cell after a transient
            failure, worker crash, or timeout (default 0; env
            ``DOUBLECHECKER_RETRIES``).
        cell_timeout: seconds a cell may run before its workers are
            killed and it is retried (default none; env
            ``DOUBLECHECKER_CELL_TIMEOUT``).  Only enforceable with
            worker processes; inline cells cannot be preempted.
        checkpoint: path of a JSONL checkpoint file (or an existing
            :class:`~repro.harness.checkpoint.Checkpoint`); completed
            cells are persisted and skipped on resume (env
            ``DOUBLECHECKER_CHECKPOINT``).
        fault_spec / fault_seed: deterministic fault injection (see
            :mod:`repro.harness.faults`; env
            ``DOUBLECHECKER_FAULT_SPEC`` / ``_FAULT_SEED``).
        backoff: base of the exponential retry backoff, in seconds.
        max_pool_failures: consecutive pool-level failures (crashes or
            timeout kills with no intervening completed cell) before
            degrading to inline serial execution.

    The pool is a context manager; exiting shuts the workers down.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        retries: Optional[int] = None,
        cell_timeout: Optional[float] = None,
        checkpoint: Any = None,
        fault_spec: Optional[str] = None,
        fault_seed: Optional[int] = None,
        backoff: float = 0.05,
        max_pool_failures: int = 3,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.retries = resolve_retries(retries)
        self.cell_timeout = resolve_cell_timeout(cell_timeout)
        self.fault_plan = faults.resolve_fault_plan(fault_spec, fault_seed)
        if isinstance(checkpoint, Checkpoint):
            self.checkpoint: Optional[Checkpoint] = checkpoint
        else:
            path = resolve_checkpoint(checkpoint)
            self.checkpoint = Checkpoint(path) if path else None
        self.backoff = backoff
        self.max_pool_failures = max_pool_failures
        self._degraded = False
        self._consecutive_pool_failures = 0
        self._key_counts: Dict[str, int] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        if self.jobs > 1:
            self._executor = self._new_executor()

    def _new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs, initializer=_init_worker
        )

    # ------------------------------------------------------------------
    def submit(self, fn: Callable[..., Any], /, *args: Any) -> "Future[Any]":
        """Schedule one cell; returns a future (completed futures in
        serial mode, so result order always equals submission order).

        ``submit`` is the raw, recovery-free interface; batch recovery
        (retries, timeouts, checkpointing) lives in :meth:`starmap`.
        """
        if self._executor is None:
            future: "Future[Any]" = Future()
            try:
                future.set_result(fn(*args))
            except Exception as exc:
                future.set_exception(exc)
            # non-Exception BaseExceptions (KeyboardInterrupt,
            # SystemExit) propagate immediately: parking a Ctrl-C in a
            # future swallows it until (if ever) .result() is called
            return future
        return self._executor.submit(fn, *args)

    def starmap(
        self,
        fn: Callable[..., Any],
        argslists: Iterable[Sequence[Any]],
    ) -> List[Any]:
        """Run ``fn(*args)`` for each args tuple; ordered results.

        The parallel path submits everything up front and collects in
        submission order, so the returned list is positionally
        identical to ``[fn(*args) for args in argslists]``.

        When telemetry is active (see :mod:`repro.obs`), every cell —
        inline or in a worker — runs under its own registry whose
        snapshot is merged back into the caller's registry in
        submission order **after the whole batch succeeds**, so serial
        and parallel runs of the same experiment produce identical
        merged counters and a failed batch merges nothing.

        Recovery (retries, timeouts, pool rebuilds, checkpointing) is
        applied per the pool's configuration; cells are pure functions
        of their arguments, so retried and resumed runs return exactly
        what a fault-free run would.
        """
        pending: List[Tuple[Callable[..., Any], Sequence[Any]]] = [
            (fn, tuple(args)) for args in argslists
        ]
        target = obs_recorder()
        if (
            self._executor is None
            and not target.enabled
            and not self._engine_needed()
        ):
            # the plain serial fast path: nothing to recover, nothing
            # to record — identical to a bare comprehension
            return [f(*args) for f, args in pending]
        return self._run_batch(pending, target)

    def map(self, fn: Callable[..., Any], items: Iterable[Any]) -> List[Any]:
        """Like :meth:`starmap` for single-argument cells."""
        return self.starmap(fn, [(item,) for item in items])

    # ------------------------------------------------------------------
    # the batch recovery engine
    # ------------------------------------------------------------------
    def _engine_needed(self) -> bool:
        return (
            self.retries > 0
            or self.cell_timeout is not None
            or self.checkpoint is not None
            or self.fault_plan is not None
        )

    def _assign_key(self, fn: Callable[..., Any], args: Sequence[Any]) -> str:
        """A stable cell key, disambiguated by submission occurrence."""
        base = cell_key(fn, args)
        occurrence = self._key_counts.get(base, 0)
        self._key_counts[base] = occurrence + 1
        return f"{base}#{occurrence}"

    def _run_batch(
        self,
        pending: List[Tuple[Callable[..., Any], Sequence[Any]]],
        target: Any,
    ) -> List[Any]:
        octx = trace_context(target)
        need_keys = self.checkpoint is not None or self.fault_plan is not None
        cells = []
        for index, (f, args) in enumerate(pending):
            key = self._assign_key(f, args) if need_keys else None
            cells.append(_Cell(index=index, fn=f, args=args, key=key))
        if self.checkpoint is not None:
            for cell in cells:
                payload = self.checkpoint.get(cell.key)
                if payload is not MISSING:
                    cell.result, cell.snapshot = payload
                    cell.done = True
                    target.inc("harness.cells_resumed")
        round_number = 0
        while True:
            remaining = [c for c in cells if not c.done]
            if not remaining:
                break
            if round_number > 0 and self.backoff > 0:
                time.sleep(min(self.backoff * 2 ** (round_number - 1), 2.0))
            if self._executor is None:
                self._run_round_inline(remaining, octx, target)
            else:
                self._run_round_parallel(remaining, octx, target)
            round_number += 1
        # all-or-nothing merge, in submission order
        if target.enabled:
            for cell in cells:
                if cell.snapshot is not None:
                    target.merge(cell.snapshot)
        return [cell.result for cell in cells]

    def _complete(self, cell: _Cell, result: Any, snapshot: Optional[dict],
                  target: Any) -> None:
        cell.result = result
        cell.snapshot = snapshot
        cell.done = True
        target.inc("harness.cells_completed")
        if self.checkpoint is not None:
            self.checkpoint.add(cell.key, result, snapshot)

    def _charge(self, cell: _Cell, target: Any) -> bool:
        """Consume one attempt; returns True when the budget is gone."""
        cell.attempt += 1
        if cell.attempt > self.retries:
            return True
        target.inc("harness.retries")
        return False

    # -------------------------- inline rounds -------------------------
    def _run_round_inline(self, remaining: List[_Cell], octx: Optional[dict],
                          target: Any) -> None:
        """Run every remaining cell in the parent process, retrying
        transient/injected failures on the spot."""
        for cell in remaining:
            while True:
                try:
                    if self.fault_plan is not None:
                        self.fault_plan.fire(
                            cell.key or "", cell.attempt, in_worker=False
                        )
                    if octx is None:
                        result, snapshot = cell.fn(*cell.args), None
                    else:
                        result, snapshot = _obs_cell(octx, cell.fn, cell.args)
                except faults.SimulatedCrash as exc:
                    target.inc("harness.worker_crashes")
                    self._retry_or_fail(cell, exc, target)
                except faults.InjectedHang as exc:
                    target.inc("harness.cell_timeouts")
                    self._retry_or_fail(cell, exc, target)
                except (faults.TransientCellError, OSError) as exc:
                    target.inc("harness.transient_errors")
                    self._retry_or_fail(cell, exc, target)
                else:
                    self._complete(cell, result, snapshot, target)
                    break

    def _retry_or_fail(self, cell: _Cell, exc: BaseException,
                       target: Any) -> None:
        if self._charge(cell, target):
            raise CellFailedError(cell.label, cell.attempt, exc) from exc
        if self.backoff > 0:
            time.sleep(min(self.backoff * 2 ** (cell.attempt - 1), 2.0))

    # ------------------------- parallel rounds ------------------------
    def _run_round_parallel(self, remaining: List[_Cell],
                            octx: Optional[dict], target: Any) -> None:
        """One submit-and-collect round across worker processes.

        Collects as many cells as possible in submission order; a
        pool-level event (worker crash, timeout kill) ends the round
        early after harvesting whatever already finished, and the
        outer loop re-submits the rest.
        """
        futures: Dict[int, "Future[Any]"] = {}
        pool_failure: Optional[BaseException] = None
        try:
            for cell in remaining:
                futures[cell.index] = self._executor.submit(
                    _guarded_cell, self.fault_plan, cell.key, cell.attempt,
                    octx, cell.fn, cell.args,
                )
        except BrokenProcessPool as exc:
            # earlier-submitted cells start executing while the rest of
            # the round is still being submitted, so a worker crash can
            # break the pool mid-submission and surface here, from
            # submit() itself, instead of from a future
            target.inc("harness.worker_crashes")
            pool_failure = exc
        for cell in remaining if pool_failure is None else []:
            future = futures[cell.index]
            try:
                result, snapshot = future.result(timeout=self.cell_timeout)
            except FuturesTimeout as exc:
                target.inc("harness.cell_timeouts")
                exhausted = self._charge(cell, target)
                self._harvest(remaining, futures, target)
                self._pool_failed(target)
                if exhausted:
                    raise CellFailedError(
                        cell.label, cell.attempt, exc
                    ) from exc
                return
            except BrokenProcessPool as exc:
                target.inc("harness.worker_crashes")
                pool_failure = exc
                break
            except (faults.TransientCellError, OSError) as exc:
                # an isolated cell failure: siblings keep running, only
                # this cell is retried next round
                target.inc("harness.transient_errors")
                if self._charge(cell, target):
                    self._abort(futures)
                    raise CellFailedError(
                        cell.label, cell.attempt, exc
                    ) from exc
            except Exception:
                # non-retryable: cancel pending siblings, drain the
                # running ones, and leave the caller's registry
                # untouched (no partial merge has happened)
                self._abort(futures)
                raise
            except BaseException:
                # KeyboardInterrupt/SystemExit: cancel what we can and
                # re-raise immediately — never park these in a future
                for pending_future in futures.values():
                    pending_future.cancel()
                raise
            else:
                self._complete(cell, result, snapshot, target)
                self._consecutive_pool_failures = 0
        if pool_failure is not None:
            # the pool is broken: every incomplete future failed with
            # BrokenProcessPool.  Harvest any results that made it back
            # first, then charge the submitted survivors one attempt
            # each (the actual crasher is indistinguishable from the
            # parent, and only submitted cells can have crashed) and
            # rebuild.
            submitted = [cell for cell in remaining if cell.index in futures]
            self._harvest(submitted, futures, target)
            exhausted = [
                cell for cell in submitted
                if not cell.done and self._charge(cell, target)
            ]
            self._pool_failed(target)
            if exhausted:
                cell = exhausted[0]
                raise CellFailedError(
                    cell.label, cell.attempt, pool_failure
                ) from pool_failure

    def _harvest(self, remaining: List[_Cell],
                 futures: Dict[int, "Future[Any]"], target: Any) -> None:
        """Record every future that already finished successfully, so a
        pool rebuild never discards completed work."""
        for cell in remaining:
            if cell.done:
                continue
            future = futures[cell.index]
            if future.done() and not future.cancelled() \
                    and future.exception() is None:
                result, snapshot = future.result()
                self._complete(cell, result, snapshot, target)

    def _abort(self, futures: Dict[int, "Future[Any]"]) -> None:
        """Cancel pending sibling futures and drain the running ones, so
        a failed batch neither wastes workers on doomed cells nor leaves
        them racing the caller's cleanup."""
        outstanding = [f for f in futures.values() if not f.done()]
        for future in outstanding:
            future.cancel()
        still_running = [f for f in outstanding if not f.cancelled()]
        if still_running:
            futures_wait(still_running)

    def _pool_failed(self, target: Any) -> None:
        """Tear down the broken/hung pool; rebuild it, or degrade to
        inline serial execution after too many consecutive failures."""
        self._consecutive_pool_failures += 1
        target.inc("harness.pool_rebuilds")
        self._kill_workers()
        try:
            # wait=True: with every worker killed the manager thread
            # exits promptly, and joining it releases the wakeup pipe —
            # otherwise the interpreter's atexit hook trips over the
            # dead executor's closed file descriptors
            self._executor.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass
        if self._consecutive_pool_failures >= self.max_pool_failures:
            self._executor = None
            self._degraded = True
            target.inc("harness.degraded_to_serial")
        else:
            self._executor = self._new_executor()

    def _kill_workers(self) -> None:
        processes = getattr(self._executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:
                pass

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "CellPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


@contextmanager
def ensure_pool(
    pool: Optional[CellPool],
    jobs: Optional[int] = None,
    *,
    retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    checkpoint: Any = None,
    fault_spec: Optional[str] = None,
) -> Iterator[CellPool]:
    """Yield ``pool`` if given, else a fresh :class:`CellPool` that is
    closed on exit.  Lets experiment entry points accept either an
    explicit pool (shared across experiments) or per-call knobs."""
    if pool is not None:
        yield pool
        return
    owned = CellPool(
        jobs,
        retries=retries,
        cell_timeout=cell_timeout,
        checkpoint=checkpoint,
        fault_spec=fault_spec,
    )
    try:
        yield owned
    finally:
        owned.close()


__all__ = [
    "CELL_TIMEOUT_ENV",
    "CHECKPOINT_ENV",
    "CellFailedError",
    "CellPool",
    "JOBS_ENV",
    "RETRIES_ENV",
    "ensure_pool",
    "resolve_cell_timeout",
    "resolve_checkpoint",
    "resolve_jobs",
    "resolve_retries",
]
