"""Parallel execution of independent experiment cells.

Every paper artefact (Table 2, Table 3, Figure 7, the Section 5.3/5.4
studies) is an aggregation over independent (workload, checker, seed)
cells: each cell builds its own program, runs its own seeded scheduler,
and shares no state with any other cell.  That makes the experiment
harness embarrassingly parallel, and — because the cells are separate
*processes* — entirely unconstrained by the GIL.

:class:`CellPool` fans cells across worker processes via
:class:`concurrent.futures.ProcessPoolExecutor`:

* **Workers rebuild programs from workload names.**  Cell functions
  receive the workload *name* and call :func:`repro.workloads.build`
  inside the worker; :class:`~repro.runtime.program.Program` objects
  (closures over generator bodies) are never pickled.  Specifications,
  static-transaction info, and checker results are all plain picklable
  data.
* **Ordered results.**  :meth:`CellPool.starmap` returns results in
  submission order regardless of completion order, so any aggregation
  (medians, unions, geomeans) observes exactly the sequence the serial
  path would — rendered tables are byte-identical for any job count.
* **Read-only caches in workers.**  Workers are initialized with
  :func:`repro.harness.runner.set_cache_readonly`, so only the parent
  process ever writes the final-spec disk cache (see
  :func:`repro.harness.runner._store_cache`).

The job count comes from (highest precedence first) an explicit
``jobs=`` argument, the ``--jobs`` CLI flag, or the
``DOUBLECHECKER_JOBS`` environment variable; the default is serial.
``jobs=1`` executes cells inline in the parent process — no worker
processes, no pickling — which is also the fallback the pool uses when
process creation is unavailable.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.obs.registry import (
    MetricsRegistry,
    recorder as obs_recorder,
    use_registry,
)

#: environment variable consulted when no explicit job count is given
JOBS_ENV = "DOUBLECHECKER_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Determine the worker count.

    ``None`` falls back to ``DOUBLECHECKER_JOBS`` (and then to 1);
    ``0`` or a negative count means "one worker per CPU".
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _init_worker() -> None:
    """Worker initializer: never write shared on-disk caches."""
    from repro.harness import runner

    runner.set_cache_readonly(True)


def _obs_cell(mode: str, fn: Callable[..., Any], args: Sequence[Any]) -> Tuple[Any, dict]:
    """Run one cell under a fresh telemetry registry.

    Returns ``(result, snapshot)``.  Both the inline path and the
    worker path route cells through this wrapper when telemetry is on,
    so the merged registry — snapshots folded in **submission order**
    — is identical for any job count (counters are derived from the
    analyzed execution, never from timing; see
    :meth:`repro.obs.registry.MetricsRegistry.merge`).
    """
    registry = MetricsRegistry(mode)
    previous = use_registry(registry)
    try:
        result = fn(*args)
    finally:
        use_registry(previous)
    return result, registry.snapshot()


class CellPool:
    """Run independent experiment cells, optionally across processes.

    Args:
        jobs: worker count (see :func:`resolve_jobs`).  With ``jobs=1``
            every call executes inline and the pool is free.

    The pool is a context manager; exiting shuts the workers down.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self._executor: Optional[ProcessPoolExecutor] = None
        if self.jobs > 1:
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_init_worker
            )

    # ------------------------------------------------------------------
    def submit(self, fn: Callable[..., Any], /, *args: Any) -> "Future[Any]":
        """Schedule one cell; returns a future (completed futures in
        serial mode, so result order always equals submission order)."""
        if self._executor is None:
            future: "Future[Any]" = Future()
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - mirror executor
                future.set_exception(exc)
            return future
        return self._executor.submit(fn, *args)

    def starmap(
        self,
        fn: Callable[..., Any],
        argslists: Iterable[Sequence[Any]],
    ) -> List[Any]:
        """Run ``fn(*args)`` for each args tuple; ordered results.

        The parallel path submits everything up front and collects in
        submission order, so the returned list is positionally
        identical to ``[fn(*args) for args in argslists]``.

        When telemetry is active (see :mod:`repro.obs`), every cell —
        inline or in a worker — runs under its own registry whose
        snapshot is merged back into the caller's registry in
        submission order, so serial and parallel runs of the same
        experiment produce identical merged counters.
        """
        pending: List[Tuple[Callable[..., Any], Sequence[Any]]] = [
            (fn, tuple(args)) for args in argslists
        ]
        target = obs_recorder()
        if not target.enabled:
            if self._executor is None:
                return [f(*args) for f, args in pending]
            futures = [self._executor.submit(f, *args) for f, args in pending]
            return [future.result() for future in futures]
        mode = target.mode
        results: List[Any] = []
        if self._executor is None:
            for f, args in pending:
                result, snapshot = _obs_cell(mode, f, args)
                target.merge(snapshot)
                results.append(result)
            return results
        futures = [
            self._executor.submit(_obs_cell, mode, f, args)
            for f, args in pending
        ]
        for future in futures:
            result, snapshot = future.result()
            target.merge(snapshot)
            results.append(result)
        return results

    def map(self, fn: Callable[..., Any], items: Iterable[Any]) -> List[Any]:
        """Like :meth:`starmap` for single-argument cells."""
        return self.starmap(fn, [(item,) for item in items])

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "CellPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


@contextmanager
def ensure_pool(
    pool: Optional[CellPool], jobs: Optional[int] = None
) -> Iterator[CellPool]:
    """Yield ``pool`` if given, else a fresh :class:`CellPool` that is
    closed on exit.  Lets experiment entry points accept either an
    explicit pool (shared across experiments) or a ``jobs`` count."""
    if pool is not None:
        yield pool
        return
    owned = CellPool(jobs)
    try:
        yield owned
    finally:
        owned.close()


__all__ = ["CellPool", "JOBS_ENV", "ensure_pool", "resolve_jobs"]
