"""The ``check`` and ``crosscheck`` experiments: backend selection and
the multi-backend violation shootout.

``check`` runs one analysis backend — ``icd`` (DoubleChecker's
single-run ICD+PCD pipeline), ``velodrome``, or ``vc`` (the
vector-clock checker) — over the workload catalog and tabulates its
verdicts.

``crosscheck`` runs all of them, plus the vc backend with
synchronization edges enabled and the offline checker over a recorded
trace of the same schedule, and validates the agreement contract
between the arms:

* ``velodrome`` and ``single-run ICD+PCD`` are both sound and precise
  over the same dependence rules, so their boolean verdicts must be
  equal;
* ``vc`` with ``sync_edges=True`` builds Velodrome's exact graph, so
  its verdict must equal Velodrome's;
* ``vc`` (default) skips synchronization pseudo-accesses, so its
  violations are a subset of the sync-tracking arm's — a verdict it
  reports must also be reported there;
* the offline checker shares the default vc arm's design point (no
  sync edges), so their boolean verdicts must be equal.

Violated contracts are rendered in the table *and* returned as
mismatches, which the CLI turns into a nonzero exit — the agreement
matrix is a correctness gate, not a report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.harness import runner
from repro.harness.rendering import render_table
from repro.obs.spans import phase
from repro.offline.checker import OfflineChecker
from repro.trace.recorder import record_execution
from repro.workloads import all_names, build

#: selectable online backends (``--backend``)
BACKENDS = ("icd", "velodrome", "vc")


def _blamed(backend: str, name: str, spec, seed: int) -> set:
    if backend == "icd":
        return runner.run_single(name, spec, seed).blamed_methods
    if backend == "velodrome":
        return runner.run_velodrome(name, spec, seed).blamed_methods
    if backend == "vc":
        return runner.run_vc(name, spec, seed).blamed_methods
    raise ValueError(f"unknown backend: {backend!r}")


# ----------------------------------------------------------------------
# check: one backend, tabulated verdicts
# ----------------------------------------------------------------------
@dataclass
class CheckRow:
    name: str
    violations: int
    blamed: set


@dataclass
class CheckResult:
    backend: str
    rows: List[CheckRow]

    def render(self) -> str:
        return render_table(
            ("benchmark", "violations", "blamed methods"),
            [
                (
                    row.name,
                    row.violations,
                    ", ".join(sorted(row.blamed)) or "-",
                )
                for row in self.rows
            ],
            title=f"Violations under the {self.backend} backend (seed 0)",
        )


def generate_check(
    backend: str, names: Optional[Sequence[str]] = None, *, seed: int = 0
) -> CheckResult:
    """Run ``backend`` over the catalog and tabulate its verdicts."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend: {backend!r}")
    rows = []
    for name in names or all_names():
        with phase("cell.check", backend=backend, workload=name):
            spec = runner.initial_spec(name)
            blamed = _blamed(backend, name, spec, seed)
            rows.append(CheckRow(name, len(blamed), blamed))
    return CheckResult(backend, rows)


# ----------------------------------------------------------------------
# crosscheck: every backend against every other
# ----------------------------------------------------------------------
@dataclass
class CrosscheckRow:
    name: str
    icd: bool
    velodrome: bool
    vc: bool
    vc_sync: bool
    offline: bool
    mismatches: List[str] = field(default_factory=list)

    @property
    def agreement(self) -> str:
        return "ok" if not self.mismatches else "; ".join(self.mismatches)


@dataclass
class CrosscheckResult:
    rows: List[CrosscheckRow]

    @property
    def mismatches(self) -> List[str]:
        return [
            f"{row.name}: {m}" for row in self.rows for m in row.mismatches
        ]

    def render(self) -> str:
        def verdict(flag: bool) -> str:
            return "viol" if flag else "clean"

        table = render_table(
            (
                "benchmark",
                "icd+pcd",
                "velodrome",
                "vc",
                "vc+sync",
                "offline",
                "agreement",
            ),
            [
                (
                    row.name,
                    verdict(row.icd),
                    verdict(row.velodrome),
                    verdict(row.vc),
                    verdict(row.vc_sync),
                    verdict(row.offline),
                    row.agreement,
                )
                for row in self.rows
            ],
            title="Backend cross-validation (boolean verdicts, seed 0)",
        )
        summary = (
            f"\n{len(self.mismatches)} contract violation(s)"
            if self.mismatches
            else "\nall backends agree"
        )
        return table + summary


def _contract(row: CrosscheckRow) -> List[str]:
    mismatches = []
    if row.velodrome != row.icd:
        mismatches.append("velodrome verdict differs from icd+pcd")
    if row.vc_sync != row.velodrome:
        mismatches.append("vc+sync verdict differs from velodrome")
    if row.vc and not row.vc_sync:
        mismatches.append("vc reported a violation vc+sync did not")
    if row.offline != row.vc:
        mismatches.append("offline verdict differs from vc")
    return mismatches


def generate_crosscheck(
    names: Optional[Sequence[str]] = None, *, seed: int = 0
) -> CrosscheckResult:
    """Run the full agreement matrix over the catalog."""
    rows = []
    for name in names or all_names():
        with phase("cell.crosscheck", workload=name):
            spec = runner.initial_spec(name)
            icd = bool(_blamed("icd", name, spec, seed))
            velodrome = bool(_blamed("velodrome", name, spec, seed))
            vc = bool(_blamed("vc", name, spec, seed))
            vc_sync = bool(
                runner.run_vc(name, spec, seed, sync_edges=True).violations
            )
            trace = record_execution(
                build(name), runner.make_scheduler(seed)
            )
            offline = bool(OfflineChecker(spec).check(trace).violations)
            row = CrosscheckRow(name, icd, velodrome, vc, vc_sync, offline)
            row.mismatches.extend(_contract(row))
            rows.append(row)
    return CrosscheckResult(rows)
