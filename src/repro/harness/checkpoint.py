"""Crash-safe checkpointing of completed experiment cells.

A multi-minute experiment grid must survive a ``kill -9``: every
completed (workload, checker, seed) cell is a pure function of its
arguments, so persisting each cell's result as it completes lets a
resumed run skip straight past the work it already did and re-render
the identical table.

**Cell identity.**  :func:`cell_key` derives a stable key from the
cell function's qualified name and a canonical rendering of its
arguments (sets sorted, dicts ordered, dataclasses field-wise) — never
from ``hash()`` or pickle bytes, both of which vary across processes.
Two cells with identical functions and arguments are distinguished by
an occurrence counter assigned in submission order (submission order
is deterministic, so numbering is reproducible across runs).

**File format.**  A JSONL file: one header line, then one record per
completed cell::

    {"format": "doublechecker-checkpoint/1"}
    {"key": "<cell key>", "data": "<base64 pickle of (result, snapshot)>"}

``snapshot`` is the cell's telemetry snapshot (or ``None`` when
telemetry was off), so a resumed ``--obs`` run merges the same
counters the original would have.

**Crash safety.**  Every flush writes the *entire* record list to a
temporary file in the same directory and ``os.replace``-s it over the
destination — readers (including a resumed run) never observe a
half-written file, no matter when the writer died.  Loading is
additionally lenient: malformed lines (e.g. from a foreign or
truncated file) are skipped rather than fatal.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

FORMAT = "doublechecker-checkpoint/1"

#: sentinel distinguishing "no checkpoint entry" from a stored ``None``
MISSING = object()


def _canonical(value: Any) -> str:
    """A deterministic, process-independent rendering of a cell
    argument (the input to :func:`cell_key`)."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(v) for v in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(v) for v in value)) + "}"
    if isinstance(value, dict):
        items = sorted(
            (_canonical(k), _canonical(v)) for k, v in value.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={_canonical(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__qualname__}({fields})"
    # last resort; fine for stateless marker objects, unstable for
    # anything whose repr embeds an address
    return repr(value)


def cell_key(fn: Callable[..., Any], args: Sequence[Any]) -> str:
    """Stable identity of one cell: function + canonical arguments."""
    token = f"{fn.__module__}.{fn.__qualname__}|{_canonical(tuple(args))}"
    return hashlib.sha256(token.encode()).hexdigest()[:24]


class Checkpoint:
    """An append-style JSONL store of completed cell payloads.

    Construction loads any existing records, so a resumed run starts
    with every previously completed cell already in memory.
    """

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        self._records: Dict[str, Tuple[Any, Optional[dict]]] = {}
        self._order: list = []  # keys in completion order, for rewrites
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            with open(self.path) as handle:
                lines = handle.readlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key = record["key"]
                payload = pickle.loads(base64.b64decode(record["data"]))
            except (ValueError, KeyError, TypeError, pickle.PickleError):
                continue  # header, foreign, or truncated line
            if key not in self._records:
                self._order.append(key)
            self._records[key] = payload

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def get(self, key: str) -> Any:
        """The stored ``(result, snapshot)`` payload, or :data:`MISSING`."""
        return self._records.get(key, MISSING)

    def add(self, key: str, result: Any, snapshot: Optional[dict]) -> None:
        """Record one completed cell and flush immediately.

        Re-recording an existing key is a no-op (a resumed run may race
        nothing — cells are pure, the first stored result stands).
        """
        if key in self._records:
            return
        self._records[key] = (result, snapshot)
        self._order.append(key)
        self.flush()

    def flush(self) -> None:
        """Atomically rewrite the file with every record.

        Write-to-temp plus ``os.replace`` in the checkpoint's own
        directory: a crash mid-flush leaves the previous file intact,
        and a reader never sees a partial record.
        """
        directory = os.path.dirname(self.path) or "."
        lines = [json.dumps({"format": FORMAT})]
        for key in self._order:
            result, snapshot = self._records[key]
            data = base64.b64encode(
                pickle.dumps((result, snapshot))
            ).decode("ascii")
            lines.append(json.dumps({"key": key, "data": data}))
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".checkpoint-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write("\n".join(lines) + "\n")
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise


__all__ = ["Checkpoint", "FORMAT", "MISSING", "cell_key"]
