"""Section 5.3/5.4 side experiments.

* :func:`unsound_velodrome` — the Velodrome variant that eschews
  synchronization when metadata need not change (paper: 4.1X vs 6.1X,
  crashes on avrora9, still slower than DoubleChecker).
* :func:`refinement_phases` — single-run mode's slowdown at the start,
  halfway point, and end of iterative refinement (paper: 3.4X / 3.6X /
  3.6X).
* :func:`arrays` — the extra overhead of instrumenting array accesses
  with array-granularity metadata (cycle detection disabled because the
  conflation makes both analyses imprecise; xalan6/xalan9 excluded as
  they run out of memory in the paper).
* :func:`pcd_only` — the straw man where PCD processes every executed
  transaction (paper: 3.1X → 16.6X, with four benchmarks excluded for
  running out of memory).
* :func:`second_run_variants` — the second run with unconditional unary
  instrumentation (paper: 169% vs 140% overhead) and with Velodrome as
  the precise second-run checker (paper: 2.9X vs 2.4X).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.doublechecker import DoubleChecker
from repro.core.static_info import StaticTransactionInfo
from repro.costs.model import CostModel
from repro.errors import OutOfMemoryBudget
from repro.harness import runner
from repro.harness.parallel import CellPool, ensure_pool
from repro.harness.rendering import render_table
from repro.stats.summary import geomean, median
from repro.velodrome.checker import VelodromeChecker
from repro.velodrome.unsound import MetadataRaceError, UnsoundVelodrome
from repro.workloads import build, compute_bound_names


# ----------------------------------------------------------------------
# picklable cell functions (module-level so CellPool can ship them to
# worker processes; each rebuilds its program from the workload name)
# ----------------------------------------------------------------------
def _sound_velodrome_cell(name, spec, seed, model) -> float:
    return model.velodrome(runner.run_velodrome(name, spec, seed)).normalized_time


def _unsound_velodrome_cell(
    name, spec, seed, crash_threshold, model
) -> Optional[float]:
    """One unsound-Velodrome trial; ``None`` signals a metadata-race crash."""
    checker = UnsoundVelodrome(spec, seed=seed, crash_threshold=crash_threshold)
    try:
        result = checker.run(build(name), runner.make_scheduler(seed))
    except MetadataRaceError:
        return None
    return model.velodrome(result).normalized_time


def _single_norm_cell(name, spec, seed, model) -> float:
    return model.double_checker_single(
        runner.run_single(name, spec, seed)
    ).normalized_time


def _array_cell(name, spec, seed, instrument, which, model) -> float:
    """One array-instrumentation trial for ``which`` in {"dc", "vel"}."""
    if which == "dc":
        checker = DoubleChecker(
            spec,
            instrument_arrays=instrument,
            array_granularity_object=True,
            cycle_detection=False,
        )
        result = checker.run_single(build(name), runner.make_scheduler(seed))
        return model.double_checker_single(result).normalized_time
    checker = VelodromeChecker(
        spec,
        instrument_arrays=instrument,
        array_granularity_object=True,
        cycle_detection=False,
    )
    result = checker.run(build(name), runner.make_scheduler(seed))
    return model.velodrome(result).normalized_time


def _pcd_only_cell(name, spec, seed, pcd_memory_budget, model) -> Optional[float]:
    """One PCD-only trial; ``None`` signals the memory budget blew."""
    checker = DoubleChecker(spec, pcd_memory_budget=pcd_memory_budget)
    try:
        result = checker.run_pcd_only(build(name), runner.make_scheduler(seed))
    except OutOfMemoryBudget:
        return None
    return model.double_checker_single(result).normalized_time


def _second_norm_cell(name, spec, info, seed, always_unary, model) -> float:
    result = runner.run_second(
        name, spec, info, seed, always_instrument_unary=always_unary
    )
    return model.double_checker_single(result).normalized_time


def _velodrome_second_cell(name, spec, info, seed, model) -> float:
    checker = VelodromeChecker(
        spec,
        monitor_regular=info.monitors_method,
        monitor_unary=info.any_unary,
    )
    result = checker.run(build(name), runner.make_scheduler(seed))
    return model.velodrome(result).normalized_time


# ----------------------------------------------------------------------
# unsound Velodrome (Section 5.3)
# ----------------------------------------------------------------------
@dataclass
class UnsoundVelodromeResult:
    rows: List[Tuple[str, float, float, str]]  # name, sound, unsound, note

    def geomeans(self) -> Tuple[float, float]:
        sound = [r[1] for r in self.rows if r[3] != "crash"]
        unsound = [r[2] for r in self.rows if r[3] != "crash"]
        return geomean(sound), geomean(unsound)

    def render(self) -> str:
        rows = [
            [name, sound, unsound if note != "crash" else "-", note]
            for name, sound, unsound, note in self.rows
        ]
        gs, gu = self.geomeans()
        rows.append(["geomean(no-crash)", gs, gu, ""])
        return render_table(
            ["benchmark", "Velodrome", "unsound variant", "note"],
            rows,
            title="Unsound Velodrome variant (Section 5.3)",
        )


def unsound_velodrome(
    names: Optional[Sequence[str]] = None,
    *,
    trials: int = 3,
    seed_base: int = 60_000,
    model: Optional[CostModel] = None,
    crash_threshold: int = 15,
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    pool: Optional[CellPool] = None,
) -> UnsoundVelodromeResult:
    """Compare sound Velodrome with the unsound variant.

    All trials of one benchmark run as independent cells (a crash in
    any trial marks the row as crashed, matching the serial behaviour
    where the first crash aborts the remaining trials).
    """
    model = model or CostModel()
    seeds = [seed_base + i for i in range(trials)]
    rows = []
    with ensure_pool(
        pool, jobs,
        retries=retries, cell_timeout=cell_timeout, checkpoint=checkpoint,
    ) as cells:
        for name in names or compute_bound_names():
            spec = runner.final_spec(name, pool=cells)
            sound_values = cells.starmap(
                _sound_velodrome_cell, [(name, spec, s, model) for s in seeds]
            )
            unsound_values = cells.starmap(
                _unsound_velodrome_cell,
                [(name, spec, s, crash_threshold, model) for s in seeds],
            )
            sound = median(sound_values)
            note = "crash" if any(v is None for v in unsound_values) else ""
            survived = [v for v in unsound_values if v is not None]
            unsound = median(survived) if survived else float("nan")
            rows.append((name, sound, unsound, note))
    return UnsoundVelodromeResult(rows)


# ----------------------------------------------------------------------
# performance during iterative refinement (Section 5.4)
# ----------------------------------------------------------------------
@dataclass
class RefinementPhasesResult:
    #: benchmark -> (start, halfway, final) normalized times
    rows: Dict[str, Tuple[float, float, float]]

    def geomeans(self) -> Tuple[float, float, float]:
        start = geomean([v[0] for v in self.rows.values()])
        half = geomean([v[1] for v in self.rows.values()])
        final = geomean([v[2] for v in self.rows.values()])
        return start, half, final

    def render(self) -> str:
        rows = [
            [name, start, half, final]
            for name, (start, half, final) in sorted(self.rows.items())
        ]
        gs, gh, gf = self.geomeans()
        rows.append(["geomean", gs, gh, gf])
        return render_table(
            ["benchmark", "start", "halfway", "final"],
            rows,
            title="Single-run slowdown across iterative refinement (Section 5.4)",
        )


def refinement_phases(
    names: Optional[Sequence[str]] = None,
    *,
    trials: int = 2,
    seed_base: int = 70_000,
    model: Optional[CostModel] = None,
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    pool: Optional[CellPool] = None,
) -> RefinementPhasesResult:
    """Single-run mode's cost at the start/halfway/end of refinement.

    Refinement rounds stay serial; each round's trials and the three
    phase measurements fan out across workers.
    """
    model = model or CostModel()
    rows: Dict[str, Tuple[float, float, float]] = {}
    with ensure_pool(
        pool, jobs,
        retries=retries, cell_timeout=cell_timeout, checkpoint=checkpoint,
    ) as cells:
        for name in names or compute_bound_names():
            refinement = runner.refine(
                name, "single", seed_base=seed_base, pool=cells
            )
            batch = [
                (name, refinement.spec_at_fraction(fraction), seed_base + i, model)
                for fraction in (0.0, 0.5, 1.0)
                for i in range(trials)
            ]
            values = cells.starmap(_single_norm_cell, batch)
            phases = [
                median(values[p * trials:(p + 1) * trials]) for p in range(3)
            ]
            rows[name] = (phases[0], phases[1], phases[2])
    return RefinementPhasesResult(rows)


# ----------------------------------------------------------------------
# array instrumentation (Section 5.4)
# ----------------------------------------------------------------------
ARRAY_EXCLUDED = ("xalan6", "xalan9")  # out of memory in the paper


@dataclass
class ArraysResult:
    #: benchmark -> (dc_no_arrays, dc_arrays, vel_no_arrays, vel_arrays)
    rows: Dict[str, Tuple[float, float, float, float]]

    def geomeans(self) -> Tuple[float, float, float, float]:
        return tuple(  # type: ignore[return-value]
            geomean([v[i] for v in self.rows.values()]) for i in range(4)
        )

    def render(self) -> str:
        rows = [
            [name, *values] for name, values in sorted(self.rows.items())
        ]
        rows.append(["geomean", *self.geomeans()])
        return render_table(
            ["benchmark", "DC", "DC+arrays", "Velodrome", "Velodrome+arrays"],
            rows,
            title=(
                "Array instrumentation overhead "
                "(cycle detection off; xalan6/xalan9 excluded)"
            ),
        )


def arrays(
    names: Optional[Sequence[str]] = None,
    *,
    trials: int = 2,
    seed_base: int = 80_000,
    model: Optional[CostModel] = None,
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    pool: Optional[CellPool] = None,
) -> ArraysResult:
    """The Section 5.4 array-instrumentation comparison."""
    model = model or CostModel()
    selected = [
        n for n in (names or compute_bound_names()) if n not in ARRAY_EXCLUDED
    ]
    seeds = [seed_base + i for i in range(trials)]
    variants = [
        (which, instrument)
        for which in ("dc", "vel")
        for instrument in (False, True)
    ]
    rows: Dict[str, Tuple[float, float, float, float]] = {}
    with ensure_pool(
        pool, jobs,
        retries=retries, cell_timeout=cell_timeout, checkpoint=checkpoint,
    ) as cells:
        for name in selected:
            spec = runner.final_spec(name, pool=cells)
            batch = [
                (name, spec, s, instrument, which, model)
                for which, instrument in variants
                for s in seeds
            ]
            results = cells.starmap(_array_cell, batch)
            values = [
                median(results[v * trials:(v + 1) * trials])
                for v in range(len(variants))
            ]
            rows[name] = (values[0], values[1], values[2], values[3])
    return ArraysResult(rows)


# ----------------------------------------------------------------------
# PCD-only straw man (Section 5.4)
# ----------------------------------------------------------------------
@dataclass
class PcdOnlyResult:
    #: benchmark -> (single_norm, pcd_only_norm or None if OOM)
    rows: Dict[str, Tuple[float, Optional[float]]]
    oom: List[str] = field(default_factory=list)

    def geomeans(self) -> Tuple[float, float]:
        names = [n for n, v in self.rows.items() if v[1] is not None]
        if not names:
            return float("nan"), float("nan")
        single = geomean([self.rows[n][0] for n in names])
        pcd = geomean([self.rows[n][1] for n in names])
        return single, pcd

    def render(self) -> str:
        rows = []
        for name, (single, pcd) in sorted(self.rows.items()):
            rows.append([name, single, pcd if pcd is not None else "OOM"])
        gs, gp = self.geomeans()
        rows.append(["geomean(no-OOM)", gs, gp])
        return render_table(
            ["benchmark", "Single-run", "PCD-only"],
            rows,
            title="PCD-only variant (Section 5.4): ICD as a first-pass filter",
        )


def pcd_only(
    names: Optional[Sequence[str]] = None,
    *,
    trials: int = 1,
    seed_base: int = 90_000,
    pcd_memory_budget: int = 9_000,
    model: Optional[CostModel] = None,
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    pool: Optional[CellPool] = None,
) -> PcdOnlyResult:
    """Compare single-run mode with the PCD-only variant."""
    model = model or CostModel()
    seeds = [seed_base + i for i in range(trials)]
    rows: Dict[str, Tuple[float, Optional[float]]] = {}
    oom: List[str] = []
    with ensure_pool(
        pool, jobs,
        retries=retries, cell_timeout=cell_timeout, checkpoint=checkpoint,
    ) as cells:
        for name in names or compute_bound_names():
            spec = runner.final_spec(name, pool=cells)
            single_values = cells.starmap(
                _single_norm_cell, [(name, spec, s, model) for s in seeds]
            )
            single = median(single_values)
            pcd_values = cells.starmap(
                _pcd_only_cell,
                [(name, spec, s, pcd_memory_budget, model) for s in seeds],
            )
            if any(v is None for v in pcd_values):
                rows[name] = (single, None)
                oom.append(name)
            else:
                rows[name] = (single, median(pcd_values))
    return PcdOnlyResult(rows, oom)


# ----------------------------------------------------------------------
# second-run variants (Section 5.3)
# ----------------------------------------------------------------------
@dataclass
class SecondRunVariantsResult:
    #: benchmark -> (second, second_always_unary, velodrome_second)
    rows: Dict[str, Tuple[float, float, float]]

    def geomeans(self) -> Tuple[float, float, float]:
        return tuple(  # type: ignore[return-value]
            geomean([v[i] for v in self.rows.values()]) for i in range(3)
        )

    def render(self) -> str:
        rows = [[name, *values] for name, values in sorted(self.rows.items())]
        rows.append(["geomean", *self.geomeans()])
        return render_table(
            ["benchmark", "second (ICD+PCD)", "always-unary", "Velodrome-second"],
            rows,
            title="Second-run variants (Section 5.3)",
        )


def second_run_variants(
    names: Optional[Sequence[str]] = None,
    *,
    trials: int = 2,
    first_trials: int = 2,
    seed_base: int = 95_000,
    model: Optional[CostModel] = None,
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    pool: Optional[CellPool] = None,
) -> SecondRunVariantsResult:
    """Evaluate the conditional-unary optimization and Velodrome-as-
    second-run."""
    model = model or CostModel()
    seeds = [seed_base + 100 + i for i in range(trials)]
    rows: Dict[str, Tuple[float, float, float]] = {}
    with ensure_pool(
        pool, jobs,
        retries=retries, cell_timeout=cell_timeout, checkpoint=checkpoint,
    ) as cells:
        for name in names or compute_bound_names():
            spec = runner.final_spec(name, pool=cells)
            firsts = cells.starmap(
                runner.run_first,
                [(name, spec, seed_base + i) for i in range(first_trials)],
            )
            info = StaticTransactionInfo.union_all(
                r.static_info for r in firsts
            )
            batch = [
                (name, spec, info, s, always)
                for always in (False, True)
                for s in seeds
            ]
            norm = cells.starmap(
                _second_norm_cell, [args + (model,) for args in batch]
            )
            second = median(norm[:trials])
            always = median(norm[trials:])
            vel_values = cells.starmap(
                _velodrome_second_cell,
                [(name, spec, info, s, model) for s in seeds],
            )
            rows[name] = (second, always, median(vel_values))
    return SecondRunVariantsResult(rows)
