"""Section 5.3/5.4 side experiments.

* :func:`unsound_velodrome` — the Velodrome variant that eschews
  synchronization when metadata need not change (paper: 4.1X vs 6.1X,
  crashes on avrora9, still slower than DoubleChecker).
* :func:`refinement_phases` — single-run mode's slowdown at the start,
  halfway point, and end of iterative refinement (paper: 3.4X / 3.6X /
  3.6X).
* :func:`arrays` — the extra overhead of instrumenting array accesses
  with array-granularity metadata (cycle detection disabled because the
  conflation makes both analyses imprecise; xalan6/xalan9 excluded as
  they run out of memory in the paper).
* :func:`pcd_only` — the straw man where PCD processes every executed
  transaction (paper: 3.1X → 16.6X, with four benchmarks excluded for
  running out of memory).
* :func:`second_run_variants` — the second run with unconditional unary
  instrumentation (paper: 169% vs 140% overhead) and with Velodrome as
  the precise second-run checker (paper: 2.9X vs 2.4X).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.doublechecker import DoubleChecker
from repro.core.static_info import StaticTransactionInfo
from repro.costs.model import CostModel
from repro.errors import OutOfMemoryBudget
from repro.harness import runner
from repro.harness.rendering import render_table
from repro.stats.summary import geomean, median
from repro.velodrome.checker import VelodromeChecker
from repro.velodrome.unsound import MetadataRaceError, UnsoundVelodrome
from repro.workloads import build, compute_bound_names


# ----------------------------------------------------------------------
# unsound Velodrome (Section 5.3)
# ----------------------------------------------------------------------
@dataclass
class UnsoundVelodromeResult:
    rows: List[Tuple[str, float, float, str]]  # name, sound, unsound, note

    def geomeans(self) -> Tuple[float, float]:
        sound = [r[1] for r in self.rows if r[3] != "crash"]
        unsound = [r[2] for r in self.rows if r[3] != "crash"]
        return geomean(sound), geomean(unsound)

    def render(self) -> str:
        rows = [
            [name, sound, unsound if note != "crash" else "-", note]
            for name, sound, unsound, note in self.rows
        ]
        gs, gu = self.geomeans()
        rows.append(["geomean(no-crash)", gs, gu, ""])
        return render_table(
            ["benchmark", "Velodrome", "unsound variant", "note"],
            rows,
            title="Unsound Velodrome variant (Section 5.3)",
        )


def unsound_velodrome(
    names: Optional[Sequence[str]] = None,
    *,
    trials: int = 3,
    seed_base: int = 60_000,
    model: Optional[CostModel] = None,
    crash_threshold: int = 15,
) -> UnsoundVelodromeResult:
    """Compare sound Velodrome with the unsound variant."""
    model = model or CostModel()
    rows = []
    for name in names or compute_bound_names():
        spec = runner.final_spec(name)
        seeds = [seed_base + i for i in range(trials)]
        sound = median(
            [
                model.velodrome(runner.run_velodrome(name, spec, s)).normalized_time
                for s in seeds
            ]
        )
        unsound_values = []
        note = ""
        for s in seeds:
            checker = UnsoundVelodrome(
                spec, seed=s, crash_threshold=crash_threshold
            )
            try:
                result = checker.run(build(name), runner.make_scheduler(s))
            except MetadataRaceError:
                note = "crash"
                break
            unsound_values.append(model.velodrome(result).normalized_time)
        unsound = median(unsound_values) if unsound_values else float("nan")
        rows.append((name, sound, unsound, note))
    return UnsoundVelodromeResult(rows)


# ----------------------------------------------------------------------
# performance during iterative refinement (Section 5.4)
# ----------------------------------------------------------------------
@dataclass
class RefinementPhasesResult:
    #: benchmark -> (start, halfway, final) normalized times
    rows: Dict[str, Tuple[float, float, float]]

    def geomeans(self) -> Tuple[float, float, float]:
        start = geomean([v[0] for v in self.rows.values()])
        half = geomean([v[1] for v in self.rows.values()])
        final = geomean([v[2] for v in self.rows.values()])
        return start, half, final

    def render(self) -> str:
        rows = [
            [name, start, half, final]
            for name, (start, half, final) in sorted(self.rows.items())
        ]
        gs, gh, gf = self.geomeans()
        rows.append(["geomean", gs, gh, gf])
        return render_table(
            ["benchmark", "start", "halfway", "final"],
            rows,
            title="Single-run slowdown across iterative refinement (Section 5.4)",
        )


def refinement_phases(
    names: Optional[Sequence[str]] = None,
    *,
    trials: int = 2,
    seed_base: int = 70_000,
    model: Optional[CostModel] = None,
) -> RefinementPhasesResult:
    """Single-run mode's cost at the start/halfway/end of refinement."""
    model = model or CostModel()
    rows: Dict[str, Tuple[float, float, float]] = {}
    for name in names or compute_bound_names():
        refinement = runner.refine(name, "single", seed_base=seed_base)
        phases = []
        for fraction in (0.0, 0.5, 1.0):
            spec = refinement.spec_at_fraction(fraction)
            values = [
                model.double_checker_single(
                    runner.run_single(name, spec, seed_base + i)
                ).normalized_time
                for i in range(trials)
            ]
            phases.append(median(values))
        rows[name] = (phases[0], phases[1], phases[2])
    return RefinementPhasesResult(rows)


# ----------------------------------------------------------------------
# array instrumentation (Section 5.4)
# ----------------------------------------------------------------------
ARRAY_EXCLUDED = ("xalan6", "xalan9")  # out of memory in the paper


@dataclass
class ArraysResult:
    #: benchmark -> (dc_no_arrays, dc_arrays, vel_no_arrays, vel_arrays)
    rows: Dict[str, Tuple[float, float, float, float]]

    def geomeans(self) -> Tuple[float, float, float, float]:
        return tuple(  # type: ignore[return-value]
            geomean([v[i] for v in self.rows.values()]) for i in range(4)
        )

    def render(self) -> str:
        rows = [
            [name, *values] for name, values in sorted(self.rows.items())
        ]
        rows.append(["geomean", *self.geomeans()])
        return render_table(
            ["benchmark", "DC", "DC+arrays", "Velodrome", "Velodrome+arrays"],
            rows,
            title=(
                "Array instrumentation overhead "
                "(cycle detection off; xalan6/xalan9 excluded)"
            ),
        )


def arrays(
    names: Optional[Sequence[str]] = None,
    *,
    trials: int = 2,
    seed_base: int = 80_000,
    model: Optional[CostModel] = None,
) -> ArraysResult:
    """The Section 5.4 array-instrumentation comparison."""
    model = model or CostModel()
    selected = [
        n for n in (names or compute_bound_names()) if n not in ARRAY_EXCLUDED
    ]
    rows: Dict[str, Tuple[float, float, float, float]] = {}
    for name in selected:
        spec = runner.final_spec(name)
        seeds = [seed_base + i for i in range(trials)]
        values = []
        for instrument in (False, True):
            dc_runs = []
            for s in seeds:
                checker = DoubleChecker(
                    spec,
                    instrument_arrays=instrument,
                    array_granularity_object=True,
                    cycle_detection=False,
                )
                result = checker.run_single(build(name), runner.make_scheduler(s))
                dc_runs.append(
                    model.double_checker_single(result).normalized_time
                )
            values.append(median(dc_runs))
        for instrument in (False, True):
            vel_runs = []
            for s in seeds:
                checker = VelodromeChecker(
                    spec,
                    instrument_arrays=instrument,
                    array_granularity_object=True,
                    cycle_detection=False,
                )
                result = checker.run(build(name), runner.make_scheduler(s))
                vel_runs.append(model.velodrome(result).normalized_time)
            values.append(median(vel_runs))
        rows[name] = (values[0], values[1], values[2], values[3])
    return ArraysResult(rows)


# ----------------------------------------------------------------------
# PCD-only straw man (Section 5.4)
# ----------------------------------------------------------------------
@dataclass
class PcdOnlyResult:
    #: benchmark -> (single_norm, pcd_only_norm or None if OOM)
    rows: Dict[str, Tuple[float, Optional[float]]]
    oom: List[str] = field(default_factory=list)

    def geomeans(self) -> Tuple[float, float]:
        names = [n for n, v in self.rows.items() if v[1] is not None]
        if not names:
            return float("nan"), float("nan")
        single = geomean([self.rows[n][0] for n in names])
        pcd = geomean([self.rows[n][1] for n in names])
        return single, pcd

    def render(self) -> str:
        rows = []
        for name, (single, pcd) in sorted(self.rows.items()):
            rows.append([name, single, pcd if pcd is not None else "OOM"])
        gs, gp = self.geomeans()
        rows.append(["geomean(no-OOM)", gs, gp])
        return render_table(
            ["benchmark", "Single-run", "PCD-only"],
            rows,
            title="PCD-only variant (Section 5.4): ICD as a first-pass filter",
        )


def pcd_only(
    names: Optional[Sequence[str]] = None,
    *,
    trials: int = 1,
    seed_base: int = 90_000,
    pcd_memory_budget: int = 9_000,
    model: Optional[CostModel] = None,
) -> PcdOnlyResult:
    """Compare single-run mode with the PCD-only variant."""
    model = model or CostModel()
    rows: Dict[str, Tuple[float, Optional[float]]] = {}
    oom: List[str] = []
    for name in names or compute_bound_names():
        spec = runner.final_spec(name)
        seeds = [seed_base + i for i in range(trials)]
        single = median(
            [
                model.double_checker_single(
                    runner.run_single(name, spec, s)
                ).normalized_time
                for s in seeds
            ]
        )
        pcd_values: List[float] = []
        failed = False
        for s in seeds:
            checker = DoubleChecker(spec, pcd_memory_budget=pcd_memory_budget)
            try:
                result = checker.run_pcd_only(
                    build(name), runner.make_scheduler(s)
                )
            except OutOfMemoryBudget:
                failed = True
                break
            pcd_values.append(
                model.double_checker_single(result).normalized_time
            )
        if failed:
            rows[name] = (single, None)
            oom.append(name)
        else:
            rows[name] = (single, median(pcd_values))
    return PcdOnlyResult(rows, oom)


# ----------------------------------------------------------------------
# second-run variants (Section 5.3)
# ----------------------------------------------------------------------
@dataclass
class SecondRunVariantsResult:
    #: benchmark -> (second, second_always_unary, velodrome_second)
    rows: Dict[str, Tuple[float, float, float]]

    def geomeans(self) -> Tuple[float, float, float]:
        return tuple(  # type: ignore[return-value]
            geomean([v[i] for v in self.rows.values()]) for i in range(3)
        )

    def render(self) -> str:
        rows = [[name, *values] for name, values in sorted(self.rows.items())]
        rows.append(["geomean", *self.geomeans()])
        return render_table(
            ["benchmark", "second (ICD+PCD)", "always-unary", "Velodrome-second"],
            rows,
            title="Second-run variants (Section 5.3)",
        )


def second_run_variants(
    names: Optional[Sequence[str]] = None,
    *,
    trials: int = 2,
    first_trials: int = 2,
    seed_base: int = 95_000,
    model: Optional[CostModel] = None,
) -> SecondRunVariantsResult:
    """Evaluate the conditional-unary optimization and Velodrome-as-
    second-run."""
    model = model or CostModel()
    rows: Dict[str, Tuple[float, float, float]] = {}
    for name in names or compute_bound_names():
        spec = runner.final_spec(name)
        info = StaticTransactionInfo.union_all(
            runner.run_first(name, spec, seed_base + i).static_info
            for i in range(first_trials)
        )
        seeds = [seed_base + 100 + i for i in range(trials)]
        second = median(
            [
                model.double_checker_single(
                    runner.run_second(name, spec, info, s)
                ).normalized_time
                for s in seeds
            ]
        )
        always = median(
            [
                model.double_checker_single(
                    runner.run_second(
                        name, spec, info, s, always_instrument_unary=True
                    )
                ).normalized_time
                for s in seeds
            ]
        )
        vel_values = []
        for s in seeds:
            checker = VelodromeChecker(
                spec,
                monitor_regular=info.monitors_method,
                monitor_unary=info.any_unary,
            )
            result = checker.run(build(name), runner.make_scheduler(s))
            vel_values.append(model.velodrome(result).normalized_time)
        rows[name] = (second, always, median(vel_values))
    return SecondRunVariantsResult(rows)
