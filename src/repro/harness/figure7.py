"""Figure 7 — normalized execution time of all configurations.

For each compute-bound benchmark under its final refined specification:

* **Unmodified** — the uninstrumented executor (the 1.0 baseline);
* **Velodrome** — the sound+precise online baseline;
* **Single-run (ICD+PCD)** — DoubleChecker's fully sound mode;
* **First run (ICD w/o logging)** — multi-run mode's first run;
* **Second run (ICD+PCD)** — multi-run mode's second run, restricted to
  the static transactions identified by first runs.

Each configuration reports the *modelled* normalized execution time
(the calibrated event-cost model; see :mod:`repro.costs.model`), its
GC share (Figure 7's sub-bars), and — as a secondary signal — the
measured wall-clock ratio of the Python analyses themselves.  Medians
over ``trials`` seeds, geomean across benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.static_info import StaticTransactionInfo
from repro.costs.model import CostModel
from repro.harness import runner
from repro.harness.parallel import CellPool, ensure_pool
from repro.harness.rendering import render_table
from repro.stats.summary import geomean, median
from repro.workloads import compute_bound_names

CONFIGS = ("velodrome", "single", "first", "second")


@dataclass
class Figure7Row:
    """One benchmark's bars."""

    name: str
    #: configuration -> modelled normalized execution time
    normalized: Dict[str, float] = field(default_factory=dict)
    #: configuration -> modelled GC share of total time
    gc_fraction: Dict[str, float] = field(default_factory=dict)
    #: configuration -> measured wall-clock ratio vs baseline
    measured: Dict[str, float] = field(default_factory=dict)


@dataclass
class Figure7Result:
    rows: List[Figure7Row]

    def geomeans(self) -> Dict[str, float]:
        out = {}
        for config in CONFIGS:
            values = [r.normalized[config] for r in self.rows]
            out[config] = geomean(values)
        return out

    def measured_geomeans(self) -> Dict[str, float]:
        out = {}
        for config in CONFIGS:
            values = [r.measured[config] for r in self.rows if r.measured]
            out[config] = geomean(values) if values else float("nan")
        return out

    def render(self) -> str:
        headers = [
            "benchmark",
            "Velodrome",
            "Single-run",
            "First run",
            "Second run",
            "gc%V",
            "gc%S",
            "measV",
            "measS",
            "meas1",
            "meas2",
        ]
        rows = []
        for r in self.rows:
            rows.append(
                [
                    r.name,
                    r.normalized["velodrome"],
                    r.normalized["single"],
                    r.normalized["first"],
                    r.normalized["second"],
                    f"{r.gc_fraction['velodrome']:.0%}",
                    f"{r.gc_fraction['single']:.0%}",
                    r.measured.get("velodrome", float("nan")),
                    r.measured.get("single", float("nan")),
                    r.measured.get("first", float("nan")),
                    r.measured.get("second", float("nan")),
                ]
            )
        means = self.geomeans()
        measured = self.measured_geomeans()
        rows.append(
            [
                "geomean",
                means["velodrome"],
                means["single"],
                means["first"],
                means["second"],
                "",
                "",
                measured["velodrome"],
                measured["single"],
                measured["first"],
                measured["second"],
            ]
        )
        return render_table(
            headers,
            rows,
            title=(
                "Figure 7: normalized execution time "
                "(modelled; meas* = measured wall-clock ratio)"
            ),
        )


def generate(
    names: Optional[Sequence[str]] = None,
    *,
    trials: int = 3,
    first_trials: int = 2,
    seed_base: int = 50_000,
    model: Optional[CostModel] = None,
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    pool: Optional[CellPool] = None,
) -> Figure7Result:
    """Regenerate Figure 7 (default: the 16 compute-bound benchmarks).

    All (benchmark, configuration, seed) cells are independent, so
    they run in two global fan-out stages across ``jobs`` workers:
    first every baseline/Velodrome/single/first cell of every
    benchmark, then every second-run cell (which needs the first runs'
    static-transaction info).  Results are aggregated in submission
    order, so the rendered figure is byte-identical for any job count.
    ``retries``/``cell_timeout``/``checkpoint`` configure the owned
    pool's fault tolerance (see ``docs/ROBUSTNESS.md``).
    """
    model = model or CostModel()
    selected = list(names or compute_bound_names())
    seeds = [seed_base + i for i in range(trials)]
    with ensure_pool(
        pool, jobs,
        retries=retries, cell_timeout=cell_timeout, checkpoint=checkpoint,
    ) as cells:
        specs = {name: runner.final_spec(name, pool=cells) for name in selected}

        # stage 1: everything that does not depend on first-run output
        stage1 = []
        for name in selected:
            spec = specs[name]
            stage1 += [("baseline", name, None, s) for s in seeds]
            stage1 += [("velodrome", name, spec, s) for s in seeds]
            stage1 += [("single", name, spec, s) for s in seeds]
            stage1 += [("first", name, spec, s) for s in seeds]
            stage1 += [
                ("first", name, spec, seed_base + 100 + i)
                for i in range(first_trials)
            ]
        stride = 4 * trials + first_trials
        results1 = cells.starmap(runner.run_cell, stage1)

        # stage 2: second runs, restricted to the statically identified
        # transactions from the extra first runs
        infos = {}
        stage2 = []
        for index, name in enumerate(selected):
            chunk = results1[index * stride:(index + 1) * stride]
            infos[name] = StaticTransactionInfo.union_all(
                r.static_info for r in chunk[4 * trials:]
            )
            stage2 += [("second", name, specs[name], s, infos[name]) for s in seeds]
        results2 = cells.starmap(runner.run_cell, stage2)

    rows = []
    for index, name in enumerate(selected):
        chunk = results1[index * stride:(index + 1) * stride]
        baselines = chunk[:trials]
        velodrome = chunk[trials:2 * trials]
        single = chunk[2 * trials:3 * trials]
        firsts = chunk[3 * trials:4 * trials]
        seconds = results2[index * trials:(index + 1) * trials]

        base_wall = median([b.elapsed_seconds for b in baselines])
        row = Figure7Row(name)

        breakdowns = [model.velodrome(r) for r in velodrome]
        row.normalized["velodrome"] = median(
            [b.normalized_time for b in breakdowns]
        )
        row.gc_fraction["velodrome"] = median([b.gc_fraction for b in breakdowns])
        row.measured["velodrome"] = (
            median([r.elapsed_seconds for r in velodrome]) / base_wall
        )

        breakdowns = [model.double_checker_single(r) for r in single]
        row.normalized["single"] = median([b.normalized_time for b in breakdowns])
        row.gc_fraction["single"] = median([b.gc_fraction for b in breakdowns])
        row.measured["single"] = (
            median([r.elapsed_seconds for r in single]) / base_wall
        )

        breakdowns = [model.double_checker_first(r) for r in firsts]
        row.normalized["first"] = median([b.normalized_time for b in breakdowns])
        row.gc_fraction["first"] = median([b.gc_fraction for b in breakdowns])
        row.measured["first"] = (
            median([r.elapsed_seconds for r in firsts]) / base_wall
        )

        breakdowns = [model.double_checker_single(r) for r in seconds]
        row.normalized["second"] = median([b.normalized_time for b in breakdowns])
        row.gc_fraction["second"] = median([b.gc_fraction for b in breakdowns])
        row.measured["second"] = (
            median([r.elapsed_seconds for r in seconds]) / base_wall
        )

        rows.append(row)
    return Figure7Result(rows)
