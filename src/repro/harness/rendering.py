"""Fixed-width text-table rendering for the harness output."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
    align_left_columns: int = 1,
) -> str:
    """Render a simple fixed-width table.

    The first ``align_left_columns`` columns are left-aligned (names);
    the rest are right-aligned (numbers).
    """
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            if i < align_left_columns:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if value is None:
        return "-"
    return str(value)
