"""Command-line entry point: ``doublechecker-experiments``.

Regenerates the paper's evaluation artefacts as text tables::

    doublechecker-experiments table2
    doublechecker-experiments figure7 --names eclipse6 xalan6
    doublechecker-experiments all --out results/ --jobs 4

``--jobs N`` (or the ``DOUBLECHECKER_JOBS`` environment variable) fans
independent (workload, checker, seed) cells across N worker processes;
``--jobs 0`` uses one worker per CPU.  Rendered tables are identical
for any job count.

``--shards N`` (or ``DOUBLECHECKER_SHARDS``) partitions each *single
analysis run* across N worker processes (see :mod:`repro.shard`);
results are byte-identical for any shard count, so sharding composes
with ``--jobs`` (multiplicatively — each cell worker forks its own
shard processes), with ``--checkpoint`` (a resumed run may use a
different shard count and still renders the identical output), and
with ``--fault-spec`` retries.  ``--analysis-shards A`` (or
``DOUBLECHECKER_ANALYSIS_SHARDS``) additionally splits each sharded
run's analysis shard into A partition workers plus an exchange owner —
still byte-identical at any combination of counts.

Fault tolerance (see ``docs/ROBUSTNESS.md``):

* ``--retries N`` retries each cell up to N times after a transient
  failure, worker crash, or timeout (``DOUBLECHECKER_RETRIES``);
* ``--cell-timeout SECONDS`` kills and retries cells that hang
  (``DOUBLECHECKER_CELL_TIMEOUT``);
* ``--checkpoint FILE`` persists every completed cell to a JSONL file
  (atomic write-then-rename) so a killed run, re-invoked with the same
  flag, skips completed cells and renders the identical output
  (``DOUBLECHECKER_CHECKPOINT``);
* ``--fault-spec SPEC`` injects deterministic faults for testing the
  recovery paths, e.g. ``crash:0.2`` (``DOUBLECHECKER_FAULT_SPEC``).

Telemetry (see :mod:`repro.obs` and ``docs/OBSERVABILITY.md``):

* ``--obs counters`` collects analysis counters and phase timers;
  ``--obs full`` also records structured events for trace export.
* ``--metrics-out FILE`` writes the merged metrics snapshot as JSON
  (implies at least ``--obs counters``).
* ``--trace-out FILE`` writes a Chrome trace-event JSON loadable in
  Perfetto / ``chrome://tracing`` (implies ``--obs full``).
* Under ``--shards N`` the trace is a single merged timeline: shard
  processes inherit the run's trace id and clock epoch, ship their
  spans back over the existing result channels, and queue hand-offs
  appear as flow arrows (see ``docs/OBSERVABILITY.md``).
* Flag combinations that cannot be honored — an explicit ``--obs off``
  with ``--metrics-out``/``--trace-out``, or ``--obs counters`` with
  ``--trace-out`` (counters mode records no events) — fail the
  pre-flight check with exit status 2 instead of silently writing an
  empty file.

``doublechecker-experiments obs analyze TRACE [--metrics FILE]``
delegates to :mod:`repro.obs.analyze`: a critical-path report over a
merged trace (per-stage wall attribution, longest cross-process
blocking chain, stall/queue/CPU tables, suggested next bottleneck).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import repro
from repro.harness import figure7, section54, table2, table3
from repro.harness.parallel import CellPool
from repro.obs import (
    MODE_COUNTERS,
    MODE_FULL,
    MODE_OFF,
    phase,
    render_summary,
    use_registry,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.registry import MetricsRegistry
from repro.shard import (
    ANALYSIS_SHARDS_ENV,
    SHARDS_ENV,
    resolve_analysis_shards,
    resolve_shards,
)

EXPERIMENTS = (
    "table2",
    "table3",
    "figure7",
    "unsound",
    "refinement-phases",
    "arrays",
    "pcd-only",
    "second-run-variants",
)

#: backend-selection experiments — separate from EXPERIMENTS so
#: ``all`` keeps regenerating exactly the paper's artefacts
BACKEND_EXPERIMENTS = ("check", "crosscheck")


def _generate(
    experiment: str,
    names: Optional[List[str]],
    pool: Optional[CellPool] = None,
) -> str:
    if experiment == "table2":
        return table2.generate(names, pool=pool).render()
    if experiment == "table3":
        return table3.generate(names, pool=pool).render()
    if experiment == "figure7":
        return figure7.generate(names, pool=pool).render()
    if experiment == "unsound":
        return section54.unsound_velodrome(names, pool=pool).render()
    if experiment == "refinement-phases":
        return section54.refinement_phases(names, pool=pool).render()
    if experiment == "arrays":
        return section54.arrays(names, pool=pool).render()
    if experiment == "pcd-only":
        return section54.pcd_only(names, pool=pool).render()
    if experiment == "second-run-variants":
        return section54.second_run_variants(names, pool=pool).render()
    raise ValueError(f"unknown experiment: {experiment}")


def _check_writable(path: str, flag: str) -> Optional[str]:
    """Return an error message if ``path`` cannot be written, else None.

    Checked up front so a long experiment run never fails at the very
    end with a traceback over an unwritable output path.
    """
    directory = os.path.dirname(os.path.abspath(path))
    if not os.path.isdir(directory):
        return f"{flag}: directory does not exist: {directory}"
    if os.path.isdir(path):
        return f"{flag}: path is a directory: {path}"
    probe = path if os.path.exists(path) else directory
    if not os.access(probe, os.W_OK):
        return f"{flag}: path is not writable: {path}"
    return None


def _check_writable_dir(path: str, flag: str) -> Optional[str]:
    """Return an error message if the results *directory* ``path``
    cannot be created/written, else None.

    ``--out`` may name a directory that does not exist yet
    (``os.makedirs`` creates it), so the check walks up to the nearest
    existing ancestor and requires it to be a writable directory.
    """
    path = os.path.abspath(path)
    if os.path.exists(path):
        if not os.path.isdir(path):
            return f"{flag}: path exists and is not a directory: {path}"
        if not os.access(path, os.W_OK):
            return f"{flag}: directory is not writable: {path}"
        return None
    probe = os.path.dirname(path)
    while not os.path.exists(probe):
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    if not os.path.isdir(probe):
        return f"{flag}: cannot create directory under {probe}"
    if not os.access(probe, os.W_OK):
        return f"{flag}: directory is not writable: {probe}"
    return None


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "obs":
        # `doublechecker-experiments obs analyze TRACE ...` — telemetry
        # tooling lives in its own module with its own argument parser
        from repro.obs.analyze import main as obs_main

        return obs_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="doublechecker-experiments",
        description="Regenerate the DoubleChecker paper's tables and figures.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro.__version__}",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",) + BACKEND_EXPERIMENTS,
        help=(
            "which artefact to regenerate; 'check' tabulates one "
            "analysis backend's verdicts (see --backend) and "
            "'crosscheck' validates the all-backend agreement matrix"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("icd", "velodrome", "vc"),
        default=None,
        help=(
            "analysis backend for the check experiment: icd "
            "(DoubleChecker single-run ICD+PCD, the default), "
            "velodrome, or vc (vector-clock)"
        ),
    )
    parser.add_argument(
        "--names",
        nargs="*",
        default=None,
        help="restrict to these benchmarks (default: the experiment's set)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory to write <experiment>.txt files into",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for independent cells (0 = one per CPU; "
            "default: $DOUBLECHECKER_JOBS or serial)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "worker processes per single-run analysis (partitions the "
            "(object, field) address space; results are byte-identical "
            "for any shard count, so --checkpoint resume and "
            "--fault-spec retries compose safely — a cell re-run with a "
            "different shard count reproduces the same bytes; composes "
            "multiplicatively with --jobs: each of the N cell workers "
            "forks its own shard processes "
            "(default: $DOUBLECHECKER_SHARDS or 1 = in-process serial)"
        ),
    )
    parser.add_argument(
        "--analysis-shards",
        type=int,
        default=None,
        help=(
            "partition workers for the analysis plane of each sharded "
            "single-run analysis (splits the Octet+ICD shard by object "
            "partition; requires --shards > 1 to take effect; results "
            "are byte-identical for any count; default: "
            "$DOUBLECHECKER_ANALYSIS_SHARDS or 1 = single analysis "
            "shard)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        help=(
            "extra attempts per cell after a transient failure, worker "
            "crash, or timeout (default: $DOUBLECHECKER_RETRIES or 0)"
        ),
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "kill and retry cells that run longer than this "
            "(default: $DOUBLECHECKER_CELL_TIMEOUT or no timeout; "
            "needs --jobs > 1 to preempt)"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help=(
            "JSONL checkpoint of completed cells; a killed run resumed "
            "with the same file skips completed cells "
            "(default: $DOUBLECHECKER_CHECKPOINT or none)"
        ),
    )
    parser.add_argument(
        "--fault-spec",
        default=None,
        metavar="SPEC",
        help=(
            "inject deterministic faults, e.g. crash:0.2 or "
            "transient:0.3:limit=2 — for testing the recovery paths "
            "(default: $DOUBLECHECKER_FAULT_SPEC or none)"
        ),
    )
    parser.add_argument(
        "--obs",
        choices=(MODE_OFF, MODE_COUNTERS, MODE_FULL),
        default=None,
        help=(
            "telemetry mode (default off): counters adds analysis "
            "counters and phase timers; full also records events for "
            "--trace-out"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the merged metrics snapshot as JSON (implies --obs counters)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help=(
            "write a Chrome trace-event JSON loadable in Perfetto "
            "(implies --obs full)"
        ),
    )
    args = parser.parse_args(argv)

    # --backend only steers the check experiment; anywhere else it
    # would be silently ignored, so fail the pre-flight instead
    if args.backend is not None and args.experiment != "check":
        print(
            "doublechecker-experiments: error: --backend only applies to "
            "the check experiment",
            file=sys.stderr,
        )
        return 2

    # Explicit --obs choices that contradict an output flag fail up
    # front (exit 2) rather than silently writing an empty file; an
    # *omitted* --obs is still upgraded to whatever the output needs.
    obs_conflict = None
    if args.obs == MODE_OFF and (args.trace_out or args.metrics_out):
        flag = "--trace-out" if args.trace_out else "--metrics-out"
        obs_conflict = f"{flag} cannot be honored with an explicit --obs off"
    elif args.obs == MODE_COUNTERS and args.trace_out:
        obs_conflict = (
            "--trace-out needs --obs full (counters mode records no "
            "events, so the trace would be empty)"
        )
    if obs_conflict is not None:
        print(
            f"doublechecker-experiments: error: {obs_conflict}",
            file=sys.stderr,
        )
        return 2

    mode = args.obs if args.obs is not None else MODE_OFF
    if args.trace_out:
        mode = MODE_FULL
    elif args.metrics_out and mode == MODE_OFF:
        mode = MODE_COUNTERS

    for path, flag in (
        (args.metrics_out, "--metrics-out"),
        (args.trace_out, "--trace-out"),
        (args.checkpoint, "--checkpoint"),
    ):
        if path:
            error = _check_writable(path, flag)
            if error is not None:
                print(f"doublechecker-experiments: error: {error}", file=sys.stderr)
                return 2
    if args.out:
        error = _check_writable_dir(args.out, "--out")
        if error is not None:
            print(f"doublechecker-experiments: error: {error}", file=sys.stderr)
            return 2

    experiments = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    try:
        shards = resolve_shards(args.shards)
        analysis_shards = resolve_analysis_shards(args.analysis_shards)
    except ValueError as exc:
        print(f"doublechecker-experiments: error: {exc}", file=sys.stderr)
        return 2
    # sharded analysis partitions the ICD pipeline's address space;
    # the velodrome/vc backends (and crosscheck, which runs them) have
    # no sharded arm, so an *explicit* --shards flag cannot be honored.
    # An inherited DOUBLECHECKER_SHARDS merely degrades to the serial
    # path these backends always take (the same silent-fallback rule
    # unsupported configs get inside the shard pipeline), so a suite
    # run under the env var does not spuriously fail.
    if args.shards is not None and shards > 1 and (
        args.experiment == "crosscheck"
        or (args.experiment == "check" and args.backend in ("velodrome", "vc"))
    ):
        what = (
            "crosscheck"
            if args.experiment == "crosscheck"
            else f"--backend {args.backend}"
        )
        print(
            f"doublechecker-experiments: error: --shards > 1 cannot be "
            f"honored with {what} (sharding only supports the icd "
            f"pipeline)",
            file=sys.stderr,
        )
        return 2
    if args.shards is not None:
        # propagate through the environment so CellPool workers (forked
        # per --jobs) shard their runs too
        os.environ[SHARDS_ENV] = str(shards)
    if args.analysis_shards is not None:
        os.environ[ANALYSIS_SHARDS_ENV] = str(analysis_shards)

    try:
        pool = CellPool(
            args.jobs,
            retries=args.retries,
            cell_timeout=args.cell_timeout,
            checkpoint=args.checkpoint,
            fault_spec=args.fault_spec,
        )
    except ValueError as exc:
        # covers bad env values and malformed --fault-spec clauses
        print(f"doublechecker-experiments: error: {exc}", file=sys.stderr)
        return 2

    registry: Optional[MetricsRegistry] = None
    previous = None
    if mode != MODE_OFF:
        registry = MetricsRegistry(mode)
        previous = use_registry(registry)
    crosscheck_failed = False
    try:
        with pool:
            for experiment in experiments:
                with phase(f"experiment.{experiment}", category="experiment"):
                    if experiment == "check":
                        from repro.harness import backends

                        rendered = backends.generate_check(
                            args.backend or "icd", args.names
                        ).render()
                    elif experiment == "crosscheck":
                        from repro.harness import backends

                        crosscheck = backends.generate_crosscheck(args.names)
                        rendered = crosscheck.render()
                        crosscheck_failed = bool(crosscheck.mismatches)
                    else:
                        rendered = _generate(experiment, args.names, pool=pool)
                print(rendered)
                print()
                if args.out:
                    try:
                        os.makedirs(args.out, exist_ok=True)
                        path = os.path.join(args.out, f"{experiment}.txt")
                        with open(path, "w") as handle:
                            handle.write(rendered + "\n")
                    except OSError as exc:
                        # the pre-flight check covers the common cases;
                        # this catches races and exotic filesystems so
                        # a finished experiment still exits readably
                        print(
                            f"doublechecker-experiments: error: could not "
                            f"write results: {exc}",
                            file=sys.stderr,
                        )
                        return 2
    finally:
        if registry is not None:
            use_registry(previous)

    if registry is not None:
        try:
            if args.metrics_out:
                write_metrics_json(args.metrics_out, registry)
            if args.trace_out:
                write_chrome_trace(args.trace_out, registry)
        except OSError as exc:
            print(
                f"doublechecker-experiments: error: could not write "
                f"telemetry output: {exc}",
                file=sys.stderr,
            )
            return 2
        print(render_summary(registry))
    if crosscheck_failed:
        print(
            "doublechecker-experiments: error: backend cross-validation "
            "found disagreeing verdicts (see the agreement column)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
