"""Command-line entry point: ``doublechecker-experiments``.

Regenerates the paper's evaluation artefacts as text tables::

    doublechecker-experiments table2
    doublechecker-experiments figure7 --names eclipse6 xalan6
    doublechecker-experiments all --out results/ --jobs 4

``--jobs N`` (or the ``DOUBLECHECKER_JOBS`` environment variable) fans
independent (workload, checker, seed) cells across N worker processes;
``--jobs 0`` uses one worker per CPU.  Rendered tables are identical
for any job count.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.harness import figure7, section54, table2, table3
from repro.harness.parallel import CellPool

EXPERIMENTS = (
    "table2",
    "table3",
    "figure7",
    "unsound",
    "refinement-phases",
    "arrays",
    "pcd-only",
    "second-run-variants",
)


def _generate(
    experiment: str,
    names: Optional[List[str]],
    pool: Optional[CellPool] = None,
) -> str:
    if experiment == "table2":
        return table2.generate(names, pool=pool).render()
    if experiment == "table3":
        return table3.generate(names, pool=pool).render()
    if experiment == "figure7":
        return figure7.generate(names, pool=pool).render()
    if experiment == "unsound":
        return section54.unsound_velodrome(names, pool=pool).render()
    if experiment == "refinement-phases":
        return section54.refinement_phases(names, pool=pool).render()
    if experiment == "arrays":
        return section54.arrays(names, pool=pool).render()
    if experiment == "pcd-only":
        return section54.pcd_only(names, pool=pool).render()
    if experiment == "second-run-variants":
        return section54.second_run_variants(names, pool=pool).render()
    raise ValueError(f"unknown experiment: {experiment}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="doublechecker-experiments",
        description="Regenerate the DoubleChecker paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",),
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--names",
        nargs="*",
        default=None,
        help="restrict to these benchmarks (default: the experiment's set)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory to write <experiment>.txt files into",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for independent cells (0 = one per CPU; "
            "default: $DOUBLECHECKER_JOBS or serial)"
        ),
    )
    args = parser.parse_args(argv)

    experiments = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    with CellPool(args.jobs) as pool:
        for experiment in experiments:
            rendered = _generate(experiment, args.names, pool=pool)
            print(rendered)
            print()
            if args.out:
                os.makedirs(args.out, exist_ok=True)
                path = os.path.join(args.out, f"{experiment}.txt")
                with open(path, "w") as handle:
                    handle.write(rendered + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
