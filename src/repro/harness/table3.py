"""Table 3 — run-time characteristics of DoubleChecker.

For each benchmark (under its final refined specification), reports
for single-run mode and for the second run of multi-run mode: the
number of regular transactions, instrumented accesses inside regular
and unary transactions, IDG cross-thread edges, and ICD SCCs detected.
Each value is the mean over a few statistics-gathering trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.static_info import StaticTransactionInfo
from repro.harness import runner
from repro.harness.parallel import CellPool, ensure_pool
from repro.harness.rendering import render_table
from repro.stats.summary import mean
from repro.workloads import all_names


@dataclass
class ModeCharacteristics:
    """One configuration's Table 3 columns (means over trials)."""

    regular_transactions: float
    regular_accesses: float
    unary_accesses: float
    idg_edges: float
    sccs: float


@dataclass
class Table3Row:
    name: str
    single: ModeCharacteristics
    second: ModeCharacteristics


@dataclass
class Table3Result:
    rows: List[Table3Row]

    def render(self) -> str:
        headers = [
            "benchmark",
            "s:reg-tx",
            "s:reg-acc",
            "s:unary-acc",
            "s:edges",
            "s:SCCs",
            "2:reg-tx",
            "2:reg-acc",
            "2:unary-acc",
            "2:edges",
            "2:SCCs",
        ]
        rows = []
        for r in self.rows:
            rows.append(
                [
                    r.name,
                    round(r.single.regular_transactions),
                    round(r.single.regular_accesses),
                    round(r.single.unary_accesses),
                    round(r.single.idg_edges),
                    round(r.single.sccs),
                    round(r.second.regular_transactions),
                    round(r.second.regular_accesses),
                    round(r.second.unary_accesses),
                    round(r.second.idg_edges),
                    round(r.second.sccs),
                ]
            )
        return render_table(
            headers,
            rows,
            title=(
                "Table 3: run-time characteristics "
                "(s: = single-run mode, 2: = second run of multi-run mode)"
            ),
        )


def _characteristics(results) -> ModeCharacteristics:
    return ModeCharacteristics(
        regular_transactions=mean(
            [r.tx_stats.regular_transactions for r in results]
        ),
        regular_accesses=mean([r.tx_stats.regular_accesses for r in results]),
        unary_accesses=mean([r.tx_stats.unary_accesses for r in results]),
        idg_edges=mean([r.icd_stats.idg_edges for r in results]),
        sccs=mean([r.icd_stats.sccs for r in results]),
    )


def generate(
    names: Optional[Sequence[str]] = None,
    *,
    trials: int = 3,
    first_trials: int = 2,
    seed_base: int = 40_000,
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    pool: Optional[CellPool] = None,
) -> Table3Result:
    """Regenerate Table 3 (default: all 19 benchmarks).

    The statistics-gathering trials of every benchmark are independent
    cells; with ``jobs`` workers the single-run and first-run cells fan
    out first, then the second-run cells (which need the first runs'
    static-transaction info).  Counters are identical to a serial run.
    ``retries``/``cell_timeout``/``checkpoint`` configure the owned
    pool's fault tolerance (see ``docs/ROBUSTNESS.md``).
    """
    rows = []
    with ensure_pool(
        pool, jobs,
        retries=retries, cell_timeout=cell_timeout, checkpoint=checkpoint,
    ) as cells:
        for name in names or all_names():
            spec = runner.final_spec(name, pool=cells)
            seeds = [seed_base + i for i in range(trials)]
            batch = [("single", name, spec, s) for s in seeds]
            batch += [
                ("first", name, spec, seed_base + 100 + i)
                for i in range(first_trials)
            ]
            results = cells.starmap(runner.run_cell, batch)
            single = _characteristics(results[:trials])
            info = StaticTransactionInfo.union_all(
                r.static_info for r in results[trials:]
            )
            seconds = cells.starmap(
                runner.run_cell,
                [
                    ("second", name, spec, seed_base + 200 + i, info)
                    for i in range(trials)
                ],
            )
            second = _characteristics(seconds)
            rows.append(Table3Row(name, single, second))
    return Table3Result(rows)
