"""Shared harness plumbing.

Responsibilities:

* build benchmark programs and matching atomicity specifications
  (including the paper's out-of-memory spec adjustments);
* run individual (benchmark, checker, seed) cells;
* run iterative refinement per checker and derive the *final*
  specifications used by the performance experiments (the intersection
  of Velodrome's and single-run mode's converged specs, Section 5.1);
* cache final specs on disk so repeated benchmark invocations do not
  redo refinement.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.parallel import CellPool

from repro.core.doublechecker import (
    DoubleChecker,
    FirstRunResult,
    MultiRunResult,
    SingleRunResult,
)
from repro.core.static_info import StaticTransactionInfo
from repro.obs.spans import phase
from repro.runtime.executor import ExecutionResult, Executor
from repro.runtime.program import Program
from repro.runtime.scheduler import RandomScheduler, Scheduler
from repro.spec.refinement import RefinementResult, iterative_refinement
from repro.spec.specification import AtomicitySpecification
from repro.vc.checker import VcChecker, VcResult
from repro.velodrome.checker import VelodromeChecker, VelodromeResult
from repro.workloads import build, get_spec

#: context-switch probability for harness schedulers; high enough to
#: expose interleavings, matching a loaded test machine
SWITCH_PROB = 0.5

#: where final-spec caches live (safe to delete at any time)
CACHE_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", ".repro_cache")


def make_scheduler(seed: int) -> RandomScheduler:
    """The harness's standard seeded scheduler."""
    return RandomScheduler(seed=seed, switch_prob=SWITCH_PROB)


def initial_spec(name: str) -> AtomicitySpecification:
    """Initial specification for a benchmark, with OOM adjustments.

    The paper excludes raytracer's and sunflow9's long-running atomic
    methods because PCD runs out of memory on their logs (Section 5.1);
    the catalog records those methods as ``spec_adjustments``.
    """
    program = build(name)
    spec = AtomicitySpecification.initial(program)
    adjustments = [
        m for m in get_spec(name).spec_adjustments if m in spec.all_methods
    ]
    return spec.exclude(adjustments)


# ----------------------------------------------------------------------
# single cells
# ----------------------------------------------------------------------
@dataclass
class CellResult:
    """One (benchmark, configuration, seed) execution."""

    name: str
    config: str
    blamed: Set[str]
    execution: ExecutionResult


def baseline_steps(name: str, seed: int = 0) -> ExecutionResult:
    """Run the uninstrumented program (the Figure 7 baseline)."""
    executor = Executor(build(name), make_scheduler(seed))
    return executor.run()


def run_velodrome(
    name: str, spec: AtomicitySpecification, seed: int
) -> VelodromeResult:
    checker = VelodromeChecker(spec)
    return checker.run(build(name), make_scheduler(seed))


def run_vc(
    name: str,
    spec: AtomicitySpecification,
    seed: int,
    *,
    sync_edges: bool = False,
) -> VcResult:
    checker = VcChecker(spec, sync_edges=sync_edges)
    return checker.run(build(name), make_scheduler(seed))


def run_single(
    name: str,
    spec: AtomicitySpecification,
    seed: int,
    *,
    pcd_memory_budget: Optional[int] = None,
) -> SingleRunResult:
    checker = DoubleChecker(spec, pcd_memory_budget=pcd_memory_budget)
    return checker.run_single(build(name), make_scheduler(seed))


def run_first(
    name: str, spec: AtomicitySpecification, seed: int
) -> FirstRunResult:
    checker = DoubleChecker(spec)
    return checker.run_first(build(name), make_scheduler(seed))


def run_second(
    name: str,
    spec: AtomicitySpecification,
    info: StaticTransactionInfo,
    seed: int,
    *,
    always_instrument_unary: bool = False,
) -> SingleRunResult:
    checker = DoubleChecker(spec)
    return checker.run_second(
        build(name),
        info,
        make_scheduler(seed),
        always_instrument_unary=always_instrument_unary,
    )


def run_multi(
    name: str,
    spec: AtomicitySpecification,
    seed: int,
    *,
    first_trials: int = 3,
) -> MultiRunResult:
    checker = DoubleChecker(spec)
    return checker.run_multi(
        lambda: build(name),
        first_trials=first_trials,
        scheduler_factory=lambda t: make_scheduler(seed * 1000 + t),
        second_scheduler=make_scheduler(seed * 1000 + 999),
    )


# ----------------------------------------------------------------------
# generic cells (picklable: safe to ship to CellPool workers)
# ----------------------------------------------------------------------
def refine_trial(
    name: str,
    checker: str,
    spec: AtomicitySpecification,
    trial: int,
    seed_base: int = 0,
    first_trials: int = 2,
) -> Set[str]:
    """One refinement trial under ``spec``; returns the blamed methods.

    A module-level function (rather than a closure) so
    :class:`~repro.harness.parallel.CellPool` can pickle it to worker
    processes; the worker rebuilds the program from ``name``.
    """
    with phase("cell.refine", checker=checker, workload=name, trial=trial):
        if checker == "velodrome":
            return run_velodrome(name, spec, seed_base + trial).blamed_methods
        if checker == "single":
            return run_single(name, spec, seed_base + trial).blamed_methods
        if checker == "multi":
            result = run_multi(
                name, spec, seed_base + trial, first_trials=first_trials
            )
            return result.violations.blamed_methods()
        raise ValueError(f"unknown checker: {checker!r}")


def run_cell(
    kind: str,
    name: str,
    spec: Optional[AtomicitySpecification],
    seed: int,
    info: Optional[StaticTransactionInfo] = None,
):
    """Dispatch one (configuration, workload, seed) cell by kind.

    ``kind`` is ``"baseline"``, ``"velodrome"``, ``"vc"``,
    ``"single"``, ``"first"``, or ``"second"`` (the latter requires
    ``info``).  Experiments submit heterogeneous batches of these to a
    :class:`~repro.harness.parallel.CellPool` in one go.
    """
    with phase(f"cell.{kind}", workload=name, seed=seed):
        if kind == "baseline":
            return baseline_steps(name, seed)
        if kind == "velodrome":
            return run_velodrome(name, spec, seed)
        if kind == "vc":
            return run_vc(name, spec, seed)
        if kind == "single":
            return run_single(name, spec, seed)
        if kind == "first":
            return run_first(name, spec, seed)
        if kind == "second":
            if info is None:
                raise ValueError("second-run cells need static-transaction info")
            return run_second(name, spec, info, seed)
        raise ValueError(f"unknown cell kind: {kind!r}")


# ----------------------------------------------------------------------
# refinement per checker
# ----------------------------------------------------------------------
def refine(
    name: str,
    checker: str,
    *,
    trials_per_step: int = 3,
    seed_base: int = 0,
    first_trials: int = 2,
    pool: Optional["CellPool"] = None,
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
) -> RefinementResult:
    """Run iterative refinement with one checker configuration.

    ``checker`` is ``"velodrome"``, ``"single"``, or ``"multi"``.
    Refinement steps are inherently serial (each step's spec depends on
    the previous step's blames), but the ``trials_per_step`` runs
    inside one step are independent; passing ``pool`` fans them across
    workers.  Trial seeds do not depend on the execution order, so the
    parallel path converges to exactly the serial result.

    Without an explicit ``pool``, passing any of ``jobs``, ``retries``,
    ``cell_timeout``, or ``checkpoint`` builds a fault-tolerant
    :class:`~repro.harness.parallel.CellPool` for the duration of the
    call (see ``docs/ROBUSTNESS.md``).
    """
    with phase(f"refine.{checker}", workload=name):
        if pool is None and any(
            knob is not None
            for knob in (jobs, retries, cell_timeout, checkpoint)
        ):
            from repro.harness.parallel import CellPool as _CellPool

            with _CellPool(
                jobs,
                retries=retries,
                cell_timeout=cell_timeout,
                checkpoint=checkpoint,
            ) as owned:
                return _refine(
                    name,
                    checker,
                    trials_per_step=trials_per_step,
                    seed_base=seed_base,
                    first_trials=first_trials,
                    pool=owned,
                )
        return _refine(
            name,
            checker,
            trials_per_step=trials_per_step,
            seed_base=seed_base,
            first_trials=first_trials,
            pool=pool,
        )


def _refine(
    name: str,
    checker: str,
    *,
    trials_per_step: int,
    seed_base: int,
    first_trials: int,
    pool: Optional["CellPool"],
) -> RefinementResult:
    spec0 = initial_spec(name)

    def trial_runner(spec: AtomicitySpecification, trial: int) -> Set[str]:
        return refine_trial(name, checker, spec, trial, seed_base, first_trials)

    step_runner = None
    if pool is not None:
        def step_runner(
            spec: AtomicitySpecification, trials: Sequence[int]
        ) -> List[Set[str]]:
            return pool.starmap(
                refine_trial,
                [
                    (name, checker, spec, trial, seed_base, first_trials)
                    for trial in trials
                ],
            )

    return iterative_refinement(
        spec0,
        trial_runner,
        trials_per_step=trials_per_step,
        step_runner=step_runner,
    )


# ----------------------------------------------------------------------
# final specifications (cached)
# ----------------------------------------------------------------------
_FINAL_SPEC_MEMO: Dict[str, AtomicitySpecification] = {}

#: when true (set in CellPool workers) the on-disk cache is read-only:
#: the parent process is the sole writer, so parallel workers can never
#: interleave read-modify-write cycles on the cache file
_CACHE_READONLY = False


def set_cache_readonly(readonly: bool = True) -> None:
    """Toggle read-only cache mode (workers must never write)."""
    global _CACHE_READONLY
    _CACHE_READONLY = readonly


def _cache_path() -> str:
    os.makedirs(CACHE_DIR, exist_ok=True)
    return os.path.join(CACHE_DIR, "final_specs.json")


def _load_cache() -> Dict[str, List[str]]:
    try:
        with open(_cache_path()) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return {}


def _store_cache(cache: Dict[str, List[str]]) -> None:
    """Atomically replace the cache file.

    Writing to a temporary file in the same directory and
    :func:`os.replace`-ing it over the destination means readers never
    observe a half-written file, even with concurrent processes; the
    read-modify-write cycle itself is confined to the parent process
    (workers run with :func:`set_cache_readonly`).
    """
    if _CACHE_READONLY:
        return
    path = _cache_path()
    try:
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".final_specs-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(cache, handle, indent=1, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
    except OSError:
        pass  # caching is best-effort


def final_spec(
    name: str,
    *,
    use_cache: bool = True,
    pool: Optional["CellPool"] = None,
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
) -> AtomicitySpecification:
    """The refined specification used by performance experiments.

    The intersection of the specs Velodrome and single-run mode each
    converge to, avoiding bias toward one approach (Section 5.1).
    ``pool`` parallelizes the refinement trials on a cache miss;
    without one, ``jobs``/``retries``/``cell_timeout``/``checkpoint``
    build a fault-tolerant pool for the refinements (see
    ``docs/ROBUSTNESS.md``).
    """
    if name in _FINAL_SPEC_MEMO:
        return _FINAL_SPEC_MEMO[name]
    cache = _load_cache() if use_cache else {}
    spec0 = initial_spec(name)
    if name in cache:
        excluded = [m for m in cache[name] if m in spec0.all_methods]
        spec = spec0.exclude(excluded)
    else:
        with phase("final_spec", workload=name):
            knobs = dict(
                jobs=jobs,
                retries=retries,
                cell_timeout=cell_timeout,
                checkpoint=checkpoint,
            )
            velodrome = refine(
                name, "velodrome", seed_base=0, pool=pool, **knobs
            )
            single = refine(
                name, "single", seed_base=10_000, pool=pool, **knobs
            )
            spec = velodrome.final_spec.intersect(single.final_spec)
        cache[name] = sorted(spec.excluded)
        if use_cache:
            _store_cache(cache)
    _FINAL_SPEC_MEMO[name] = spec
    return spec


def clear_caches() -> None:
    """Drop the in-memory and on-disk final-spec caches (test hook)."""
    _FINAL_SPEC_MEMO.clear()
    try:
        os.remove(_cache_path())
    except OSError:
        pass
