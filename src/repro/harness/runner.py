"""Shared harness plumbing.

Responsibilities:

* build benchmark programs and matching atomicity specifications
  (including the paper's out-of-memory spec adjustments);
* run individual (benchmark, checker, seed) cells;
* run iterative refinement per checker and derive the *final*
  specifications used by the performance experiments (the intersection
  of Velodrome's and single-run mode's converged specs, Section 5.1);
* cache final specs on disk so repeated benchmark invocations do not
  redo refinement.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.core.doublechecker import (
    DoubleChecker,
    FirstRunResult,
    MultiRunResult,
    SingleRunResult,
)
from repro.core.static_info import StaticTransactionInfo
from repro.runtime.executor import ExecutionResult, Executor
from repro.runtime.program import Program
from repro.runtime.scheduler import RandomScheduler, Scheduler
from repro.spec.refinement import RefinementResult, iterative_refinement
from repro.spec.specification import AtomicitySpecification
from repro.velodrome.checker import VelodromeChecker, VelodromeResult
from repro.workloads import build, get_spec

#: context-switch probability for harness schedulers; high enough to
#: expose interleavings, matching a loaded test machine
SWITCH_PROB = 0.5

#: where final-spec caches live (safe to delete at any time)
CACHE_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", ".repro_cache")


def make_scheduler(seed: int) -> RandomScheduler:
    """The harness's standard seeded scheduler."""
    return RandomScheduler(seed=seed, switch_prob=SWITCH_PROB)


def initial_spec(name: str) -> AtomicitySpecification:
    """Initial specification for a benchmark, with OOM adjustments.

    The paper excludes raytracer's and sunflow9's long-running atomic
    methods because PCD runs out of memory on their logs (Section 5.1);
    the catalog records those methods as ``spec_adjustments``.
    """
    program = build(name)
    spec = AtomicitySpecification.initial(program)
    adjustments = [
        m for m in get_spec(name).spec_adjustments if m in spec.all_methods
    ]
    return spec.exclude(adjustments)


# ----------------------------------------------------------------------
# single cells
# ----------------------------------------------------------------------
@dataclass
class CellResult:
    """One (benchmark, configuration, seed) execution."""

    name: str
    config: str
    blamed: Set[str]
    execution: ExecutionResult


def baseline_steps(name: str, seed: int = 0) -> ExecutionResult:
    """Run the uninstrumented program (the Figure 7 baseline)."""
    executor = Executor(build(name), make_scheduler(seed))
    return executor.run()


def run_velodrome(
    name: str, spec: AtomicitySpecification, seed: int
) -> VelodromeResult:
    checker = VelodromeChecker(spec)
    return checker.run(build(name), make_scheduler(seed))


def run_single(
    name: str,
    spec: AtomicitySpecification,
    seed: int,
    *,
    pcd_memory_budget: Optional[int] = None,
) -> SingleRunResult:
    checker = DoubleChecker(spec, pcd_memory_budget=pcd_memory_budget)
    return checker.run_single(build(name), make_scheduler(seed))


def run_first(
    name: str, spec: AtomicitySpecification, seed: int
) -> FirstRunResult:
    checker = DoubleChecker(spec)
    return checker.run_first(build(name), make_scheduler(seed))


def run_second(
    name: str,
    spec: AtomicitySpecification,
    info: StaticTransactionInfo,
    seed: int,
    *,
    always_instrument_unary: bool = False,
) -> SingleRunResult:
    checker = DoubleChecker(spec)
    return checker.run_second(
        build(name),
        info,
        make_scheduler(seed),
        always_instrument_unary=always_instrument_unary,
    )


def run_multi(
    name: str,
    spec: AtomicitySpecification,
    seed: int,
    *,
    first_trials: int = 3,
) -> MultiRunResult:
    checker = DoubleChecker(spec)
    return checker.run_multi(
        lambda: build(name),
        first_trials=first_trials,
        scheduler_factory=lambda t: make_scheduler(seed * 1000 + t),
        second_scheduler=make_scheduler(seed * 1000 + 999),
    )


# ----------------------------------------------------------------------
# refinement per checker
# ----------------------------------------------------------------------
def refine(
    name: str,
    checker: str,
    *,
    trials_per_step: int = 3,
    seed_base: int = 0,
    first_trials: int = 2,
) -> RefinementResult:
    """Run iterative refinement with one checker configuration.

    ``checker`` is ``"velodrome"``, ``"single"``, or ``"multi"``.
    """
    spec0 = initial_spec(name)

    def velodrome_runner(spec: AtomicitySpecification, trial: int) -> Set[str]:
        return run_velodrome(name, spec, seed_base + trial).blamed_methods

    def single_runner(spec: AtomicitySpecification, trial: int) -> Set[str]:
        return run_single(name, spec, seed_base + trial).blamed_methods

    def multi_runner(spec: AtomicitySpecification, trial: int) -> Set[str]:
        result = run_multi(
            name, spec, seed_base + trial, first_trials=first_trials
        )
        return result.violations.blamed_methods()

    runners: Dict[str, Callable[[AtomicitySpecification, int], Set[str]]] = {
        "velodrome": velodrome_runner,
        "single": single_runner,
        "multi": multi_runner,
    }
    return iterative_refinement(
        spec0, runners[checker], trials_per_step=trials_per_step
    )


# ----------------------------------------------------------------------
# final specifications (cached)
# ----------------------------------------------------------------------
_FINAL_SPEC_MEMO: Dict[str, AtomicitySpecification] = {}


def _cache_path() -> str:
    os.makedirs(CACHE_DIR, exist_ok=True)
    return os.path.join(CACHE_DIR, "final_specs.json")


def _load_cache() -> Dict[str, List[str]]:
    try:
        with open(_cache_path()) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return {}


def _store_cache(cache: Dict[str, List[str]]) -> None:
    try:
        with open(_cache_path(), "w") as handle:
            json.dump(cache, handle, indent=1, sort_keys=True)
    except OSError:
        pass  # caching is best-effort


def final_spec(name: str, *, use_cache: bool = True) -> AtomicitySpecification:
    """The refined specification used by performance experiments.

    The intersection of the specs Velodrome and single-run mode each
    converge to, avoiding bias toward one approach (Section 5.1).
    """
    if name in _FINAL_SPEC_MEMO:
        return _FINAL_SPEC_MEMO[name]
    cache = _load_cache() if use_cache else {}
    spec0 = initial_spec(name)
    if name in cache:
        excluded = [m for m in cache[name] if m in spec0.all_methods]
        spec = spec0.exclude(excluded)
    else:
        velodrome = refine(name, "velodrome", seed_base=0)
        single = refine(name, "single", seed_base=10_000)
        spec = velodrome.final_spec.intersect(single.final_spec)
        cache[name] = sorted(spec.excluded)
        if use_cache:
            _store_cache(cache)
    _FINAL_SPEC_MEMO[name] = spec
    return spec


def clear_caches() -> None:
    """Drop the in-memory and on-disk final-spec caches (test hook)."""
    _FINAL_SPEC_MEMO.clear()
    try:
        os.remove(_cache_path())
    except OSError:
        pass
