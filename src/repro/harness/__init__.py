"""Experiment harness: regenerates every table and figure in the paper.

Each module corresponds to one evaluation artefact (see DESIGN.md's
per-experiment index); the CLI entry point ``doublechecker-experiments``
runs them from the command line, and ``benchmarks/`` wraps them in
pytest-benchmark tests.
"""

from repro.harness.runner import (
    CellResult,
    baseline_steps,
    final_spec,
    initial_spec,
    make_scheduler,
    run_first,
    run_second,
    run_single,
    run_velodrome,
)

__all__ = [
    "CellResult",
    "baseline_steps",
    "final_spec",
    "initial_spec",
    "make_scheduler",
    "run_first",
    "run_second",
    "run_single",
    "run_velodrome",
]
