"""DoubleChecker's execution modes (Figure 1).

* **Single-run mode** — ICD and PCD operate on the same execution.
  ICD logs all program accesses; each cyclic SCC it detects is handed
  to PCD immediately.  Fully sound and precise.
* **Multi-run mode** — the first run executes only ICD (no logging)
  and produces :class:`~repro.core.static_info.StaticTransactionInfo`;
  the second run executes ICD+PCD but instruments only the statically
  identified transactions.  Each run is cheaper than single-run mode,
  but the mode is unsound: the two runs observe different executions.
* **PCD-only** — the Section 5.4 straw man: PCD processes every
  executed transaction instead of only ICD-flagged ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.gc import GcStats
from repro.core.icd import ICD, ICDStats
from repro.core.pcd import PCD, PCDStats
from repro.core.reports import ViolationSummary
from repro.core.rwlog import ElisionStats
from repro.core.static_info import StaticTransactionInfo
from repro.core.transactions import Transaction, TransactionStats
from repro.octet.runtime import OctetStats
from repro.runtime.executor import ExecutionResult, Executor
from repro.runtime.program import Program
from repro.runtime.scheduler import Scheduler
from repro.runtime.view import ExecutorView
from repro.spec.specification import AtomicitySpecification

ProgramFactory = Callable[[], Program]
SchedulerFactory = Callable[[int], Scheduler]


@dataclass
class SingleRunResult:
    """Outcome of one execution under ICD(+PCD)."""

    violations: ViolationSummary
    execution: ExecutionResult
    icd_stats: ICDStats
    tx_stats: TransactionStats
    octet_stats: OctetStats
    gc_stats: GcStats
    elision_stats: ElisionStats
    protocol_stats: dict
    pcd_stats: Optional[PCDStats] = None
    elapsed_seconds: float = 0.0

    @property
    def blamed_methods(self) -> set:
        return self.violations.blamed_methods()


@dataclass
class FirstRunResult:
    """Outcome of multi-run mode's first (ICD-only, no-logging) run."""

    static_info: StaticTransactionInfo
    execution: ExecutionResult
    icd_stats: ICDStats
    tx_stats: TransactionStats
    octet_stats: OctetStats
    gc_stats: GcStats
    protocol_stats: dict
    elapsed_seconds: float = 0.0


@dataclass
class MultiRunResult:
    """Outcome of the full multi-run pipeline."""

    first_runs: List[FirstRunResult]
    static_info: StaticTransactionInfo
    second_run: SingleRunResult

    @property
    def violations(self) -> ViolationSummary:
        return self.second_run.violations


class DoubleChecker:
    """Front end configuring and executing the analyses.

    Args:
        spec: the atomicity specification to check against.
        pcd_memory_budget: per-component log-entry cap for PCD.
        icd_memory_budget: cap on ICD's live transactions + log entries.
        gc_interval: transaction-collector cadence (None disables).
        instrument_arrays / array_granularity_object / cycle_detection /
        eager_scc: experiment knobs forwarded to :class:`ICD`.
    """

    def __init__(
        self,
        spec: AtomicitySpecification,
        *,
        pcd_memory_budget: Optional[int] = None,
        icd_memory_budget: Optional[int] = None,
        gc_interval: Optional[int] = 64,
        instrument_arrays: bool = False,
        array_granularity_object: bool = False,
        cycle_detection: bool = True,
        eager_scc: bool = False,
        use_engine: bool = True,
    ) -> None:
        self.spec = spec
        self.pcd_memory_budget = pcd_memory_budget
        self.icd_memory_budget = icd_memory_budget
        self.gc_interval = gc_interval
        self.instrument_arrays = instrument_arrays
        self.array_granularity_object = array_granularity_object
        self.cycle_detection = cycle_detection
        self.eager_scc = eager_scc
        #: route cycle checks through the incremental graph engine;
        #: False restores the original whole-graph DFS/Tarjan schedule
        #: (the analysis-throughput benchmark's baseline arm)
        self.use_engine = use_engine

    # ------------------------------------------------------------------
    # single-run mode
    # ------------------------------------------------------------------
    def run_single(
        self,
        program: Program,
        scheduler: Optional[Scheduler] = None,
        *,
        monitor_regular: Optional[Callable[[str], bool]] = None,
        monitor_unary: bool = True,
        monitor_unary_site: Optional[Callable[[str], bool]] = None,
        shards: Optional[int] = None,
        analysis_shards: Optional[int] = None,
    ) -> SingleRunResult:
        """Run ICD+PCD on one execution (fully sound and precise).

        ``shards`` (or the ``DOUBLECHECKER_SHARDS`` environment
        variable) > 1 partitions the analysis across that many worker
        processes — same results, byte for byte; see
        :mod:`repro.shard`.  ``analysis_shards`` (or
        ``DOUBLECHECKER_ANALYSIS_SHARDS``) > 1 additionally splits the
        analysis shard into that many partition workers plus an
        exchange owner.  Configurations the sharded pipeline cannot
        reproduce exactly (callable filters, ICD memory budgets,
        object-granularity arrays) silently fall back to the serial
        path, counted by the ``shard.fallbacks`` observability counter
        (exactly once per run) with one ``shard.fallback.<feature>``
        detail counter per blocking feature.
        """
        from repro.shard import resolve_analysis_shards, resolve_shards

        n = resolve_shards(shards)
        if n > 1:
            from repro.obs.registry import recorder as obs_recorder
            from repro.shard.coordinator import (
                run_single_sharded,
                unsupported_features,
            )

            missing = unsupported_features(
                self, monitor_regular, monitor_unary_site
            )
            if not missing:
                result, _ = run_single_sharded(
                    self, program, scheduler, n,
                    analysis_shards=resolve_analysis_shards(analysis_shards),
                    monitor_unary=monitor_unary,
                )
                return result
            obs = obs_recorder()
            if obs.enabled:
                obs.inc("shard.fallbacks", 1)
                for feature in missing:
                    obs.inc(f"shard.fallback.{feature}", 1)
        violations = ViolationSummary()
        pcd = PCD(memory_budget=self.pcd_memory_budget, use_engine=self.use_engine)

        def handle_scc(component: Sequence[Transaction]) -> None:
            violations.extend(pcd.process(component))

        icd = self._make_icd(
            logging_enabled=True,
            on_scc=handle_scc,
            monitor_regular=monitor_regular,
            monitor_unary=monitor_unary,
            monitor_unary_site=monitor_unary_site,
        )
        started = time.perf_counter()
        execution = self._execute(program, scheduler, icd)
        elapsed = time.perf_counter() - started
        return self._package(icd, execution, violations, pcd, elapsed)

    # ------------------------------------------------------------------
    # multi-run mode
    # ------------------------------------------------------------------
    def run_first(
        self,
        program: Program,
        scheduler: Optional[Scheduler] = None,
        *,
        track_unary_sites: bool = False,
    ) -> FirstRunResult:
        """Multi-run mode's first run: ICD only, no logging.

        ``track_unary_sites`` enables the future-work extension: record
        the enclosing methods of in-cycle unary accesses so the second
        run can instrument non-transactional accesses selectively
        instead of all-or-nothing (see :mod:`repro.core.static_info`).
        """
        components: List[List[Transaction]] = []

        def handle_scc(component: Sequence[Transaction]) -> None:
            components.append(list(component))

        icd = self._make_icd(
            logging_enabled=False,
            on_scc=handle_scc,
            track_unary_sites=track_unary_sites,
        )
        started = time.perf_counter()
        execution = self._execute(program, scheduler, icd)
        elapsed = time.perf_counter() - started
        return FirstRunResult(
            static_info=StaticTransactionInfo.from_components(
                components,
                unary_sites=icd.unary_sites if track_unary_sites else None,
            ),
            execution=execution,
            icd_stats=icd.stats,
            tx_stats=icd.tx_manager.stats,
            octet_stats=icd.octet.stats,
            gc_stats=icd.collector.stats,
            protocol_stats=icd.octet.protocol.stats(),
            elapsed_seconds=elapsed,
        )

    def run_second(
        self,
        program: Program,
        info: StaticTransactionInfo,
        scheduler: Optional[Scheduler] = None,
        *,
        always_instrument_unary: bool = False,
        selective_unary: bool = False,
    ) -> SingleRunResult:
        """Multi-run mode's second run: ICD+PCD on the identified set.

        ``always_instrument_unary`` evaluates the Section 5.3 variant
        that instruments non-transactional accesses unconditionally.
        ``selective_unary`` enables the future-work extension: when the
        first run tracked unary sites, only non-transactional accesses
        inside the recorded enclosing methods are instrumented.
        """
        monitor_unary_site = None
        if (
            selective_unary
            and info.unary_methods
            and not always_instrument_unary
        ):
            monitor_unary_site = lambda m: m in info.unary_methods  # noqa: E731
        return self.run_single(
            program,
            scheduler,
            monitor_regular=info.monitors_method,
            monitor_unary=info.any_unary or always_instrument_unary,
            monitor_unary_site=monitor_unary_site,
        )

    def run_multi(
        self,
        program_factory: ProgramFactory,
        *,
        first_trials: int = 10,
        scheduler_factory: Optional[SchedulerFactory] = None,
        second_scheduler: Optional[Scheduler] = None,
    ) -> MultiRunResult:
        """The full multi-run pipeline.

        Runs the first run ``first_trials`` times (fresh program, fresh
        scheduler per trial — run-to-run nondeterminism), unions the
        static information, and feeds it to one second run.
        """
        first_runs = []
        for trial in range(first_trials):
            scheduler = (
                scheduler_factory(trial) if scheduler_factory is not None else None
            )
            first_runs.append(self.run_first(program_factory(), scheduler))
        info = StaticTransactionInfo.union_all(r.static_info for r in first_runs)
        second = self.run_second(program_factory(), info, second_scheduler)
        return MultiRunResult(first_runs, info, second)

    # ------------------------------------------------------------------
    # PCD-only straw man (Section 5.4)
    # ------------------------------------------------------------------
    def run_pcd_only(
        self, program: Program, scheduler: Optional[Scheduler] = None
    ) -> SingleRunResult:
        """PCD processes *every* executed transaction.

        ICD still demarcates transactions and records logs (PCD is not
        a standalone analysis) but never filters: at execution end, the
        entire transaction population is replayed as one component.
        GC must stay off — every log is needed — which is exactly why
        this variant exhausts memory on the larger benchmarks.
        """
        violations = ViolationSummary()
        pcd = PCD(memory_budget=self.pcd_memory_budget, use_engine=self.use_engine)
        icd = self._make_icd(
            logging_enabled=True,
            on_scc=None,
            cycle_detection=False,
            gc_interval=None,
        )
        started = time.perf_counter()
        execution = self._execute(program, scheduler, icd)
        everything = [
            tx for tx in icd.tx_manager.all_transactions if tx.log is not None
        ]
        violations.extend(pcd.process(everything))
        elapsed = time.perf_counter() - started
        return self._package(icd, execution, violations, pcd, elapsed)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _make_icd(
        self,
        *,
        logging_enabled: bool,
        on_scc,
        monitor_regular: Optional[Callable[[str], bool]] = None,
        monitor_unary: bool = True,
        monitor_unary_site: Optional[Callable[[str], bool]] = None,
        cycle_detection: Optional[bool] = None,
        gc_interval: Optional[int] = -1,
        track_unary_sites: bool = False,
    ) -> ICD:
        return ICD(
            self.spec,
            logging_enabled=logging_enabled,
            monitor_regular=monitor_regular,
            monitor_unary=monitor_unary,
            monitor_unary_site=monitor_unary_site,
            instrument_arrays=self.instrument_arrays,
            array_granularity_object=self.array_granularity_object,
            cycle_detection=(
                self.cycle_detection if cycle_detection is None else cycle_detection
            ),
            eager_scc=self.eager_scc,
            on_scc=on_scc,
            memory_budget=self.icd_memory_budget,
            gc_interval=self.gc_interval if gc_interval == -1 else gc_interval,
            track_unary_sites=track_unary_sites,
            use_engine=self.use_engine,
        )

    @staticmethod
    def _execute(
        program: Program, scheduler: Optional[Scheduler], icd: ICD
    ) -> ExecutionResult:
        executor = Executor(program, scheduler, [icd])
        icd.bind_view(ExecutorView(executor))
        return executor.run()

    @staticmethod
    def _package(
        icd: ICD,
        execution: ExecutionResult,
        violations: ViolationSummary,
        pcd: Optional[PCD],
        elapsed: float,
    ) -> SingleRunResult:
        if pcd is not None:
            pcd.publish_metrics()
        return SingleRunResult(
            violations=violations,
            execution=execution,
            icd_stats=icd.stats,
            tx_stats=icd.tx_manager.stats,
            octet_stats=icd.octet.stats,
            gc_stats=icd.collector.stats,
            elision_stats=icd._elision.stats,
            protocol_stats=icd.octet.protocol.stats(),
            pcd_stats=pcd.stats if pcd is not None else None,
            elapsed_seconds=elapsed,
        )
