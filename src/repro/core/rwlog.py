"""Read/write logs (Section 3.2.4).

In single-run mode (and the second run of multi-run mode), ICD records
a read/write log for every transaction: the exact memory accesses the
transaction performed, in order, interleaved with special entries that
anchor the source and sink of each cross-thread IDG edge.  PCD later
replays the logs of an SCC's transactions in an order consistent with
those anchors.

Duplicate-entry elision (Section 4, "Instrumenting program accesses"):
logs are ordered, but duplicate entries with no incoming or outgoing
edges between them can be elided.  ICD tracks, per field, a per-thread
timestamp of the last access and its kind; the thread's timestamp is
incremented whenever a new transaction starts or the current
transaction gains an edge, so an access is elided only when an earlier
access to the same field with the same (or stronger) kind already
appears in the same edge-free window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.runtime.events import AccessEvent, AccessKind


class AccessEntry:
    """One logged access.

    Stores the field address by value (object id + field name), which
    also models the paper's weak-reference scheme: when a logged object
    dies, the real implementation replaces the reference with the old
    field address, "distinguishing the field precisely" — exactly the
    information kept here.

    ``seq`` carries the executor's global sequence number.  PCD uses it
    only as a tie-break that is consistent with the edge-anchor partial
    order (see :mod:`repro.core.pcd` for the discussion).
    """

    __slots__ = ("kind", "oid", "fieldname", "seq", "site", "address")

    def __init__(
        self,
        kind: AccessKind,
        oid: int,
        fieldname: str,
        seq: int,
        site: str,
        address: Optional[Tuple[int, str]] = None,
    ) -> None:
        self.kind = kind
        self.oid = oid
        self.fieldname = fieldname
        self.seq = seq
        self.site = site
        # precomputed once (formerly a property allocating a fresh
        # tuple per call — PCD reads it for every replayed entry); ICD
        # passes its interned (oid, fieldname) tuple so all entries for
        # one field share a single address object
        self.address = (oid, fieldname) if address is None else address

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        letter = "R" if self.kind is AccessKind.READ else "W"
        return f"<{letter} {self.oid}.{self.fieldname} @{self.seq}>"


class EdgeMark:
    """A log entry anchoring one side of a cross-thread IDG edge."""

    __slots__ = ("edge_order", "is_source", "seq")

    def __init__(self, edge_order: int, is_source: bool, seq: int) -> None:
        self.edge_order = edge_order
        self.is_source = is_source
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        side = "src" if self.is_source else "snk"
        return f"<mark e{self.edge_order} {side}>"


class ReadWriteLog:
    """The ordered access log of one transaction."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[object] = []

    def append_access(
        self,
        kind: AccessKind,
        oid: int,
        fieldname: str,
        seq: int,
        site: str,
        address: Optional[Tuple[int, str]] = None,
    ) -> int:
        """Append an access entry; returns its index."""
        self.entries.append(AccessEntry(kind, oid, fieldname, seq, site, address))
        return len(self.entries) - 1

    def append_mark(self, edge_order: int, is_source: bool, seq: int) -> int:
        """Append an edge anchor; returns its index."""
        self.entries.append(EdgeMark(edge_order, is_source, seq))
        return len(self.entries) - 1

    def __len__(self) -> int:
        return len(self.entries)

    def access_count(self) -> int:
        return sum(1 for e in self.entries if isinstance(e, AccessEntry))


@dataclass
class ElisionStats:
    """How much logging the elision optimization avoided."""

    logged: int = 0
    elided: int = 0


class ElisionFilter:
    """Implements the per-field, per-thread timestamp elision scheme.

    The last-access table is a per-thread dict keyed by the field
    address, so the hot check (:meth:`should_log_addr`) is two dict
    probes on an interned address — no per-access key-tuple allocation.
    """

    def __init__(self) -> None:
        self._thread_ts: Dict[str, int] = {}
        #: thread -> {(oid, field) -> (timestamp, kind of last logged access)}
        self._last_by_thread: Dict[
            str, Dict[Tuple[int, str], Tuple[int, AccessKind]]
        ] = {}
        self.stats = ElisionStats()

    def bump(self, thread: str) -> None:
        """Increment the thread's timestamp (new transaction or edge)."""
        self._thread_ts[thread] = self._thread_ts.get(thread, 0) + 1

    def should_log(self, thread: str, oid: int, fieldname: str, kind: AccessKind) -> bool:
        """Decide whether an access must be logged.

        An access is elided when the same thread already logged an
        access to the same field within the current timestamp window and
        that earlier access was of the same kind, or was a write and the
        new access is a read (a read adds no ordering information beyond
        the write that precedes it in the same edge-free window).
        """
        return self.should_log_addr(thread, (oid, fieldname), kind)

    def should_log_addr(
        self, thread: str, address: Tuple[int, str], kind: AccessKind
    ) -> bool:
        """:meth:`should_log` on a prebuilt (interned) field address."""
        per_thread = self._last_by_thread.get(thread)
        if per_thread is None:
            per_thread = self._last_by_thread[thread] = {}
        ts = self._thread_ts.get(thread, 0)
        last = per_thread.get(address)
        if last is not None:
            last_ts, last_kind = last
            if last_ts == ts and (
                last_kind is kind or last_kind is AccessKind.WRITE
            ):
                self.stats.elided += 1
                return False
        per_thread[address] = (ts, kind)
        self.stats.logged += 1
        return True
