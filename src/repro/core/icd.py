"""Imprecise cycle detection (ICD) — Section 3.2.

ICD monitors every (instrumented) program access, piggybacking on
Octet state transitions to detect cross-thread dependences soundly but
imprecisely.  It builds the imprecise dependence graph (IDG) whose
nodes are transactions, adds the three kinds of cross-thread edges
from Figure 4, and — when a transaction ends — computes the strongly
connected component containing it.  Cyclic components are potential
atomicity violations; in single-run mode (or the second run of
multi-run mode) they are handed to PCD together with the transactions'
read/write logs.

ICD's imprecision is inherited from Octet and is intentional
(Section 3.2.2, "Sources of imprecision"):

* it does not track the last transaction to read/write each object —
  conflicting-transition edges start at the responding thread's
  *current* transaction, not the transaction of its last access;
* upgrading-to-RdSh edges start at the responder thread's last
  transition to RdEx, which may involve a *different object*;
* RdSh objects have no reader list — all transitions to RdSh are
  chained through ``gLastRdSh``, and RdSh→WrEx conflicts draw edges
  from *all* threads;
* dependences are tracked at object granularity, not field granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.gc import TransactionCollector
from repro.core.rwlog import AccessEntry, ElisionFilter, ReadWriteLog
from repro.core.scc import is_cyclic_component, scc_containing_counted
from repro.core.transactions import IdgEdge, Transaction, TransactionManager
from repro.graph.dirty import DirtySccScheduler
from repro.graph.engine import GraphEngineStats
from repro.obs.registry import publish_stats, recorder as obs_recorder
from repro.errors import OutOfMemoryBudget
from repro.octet.runtime import OctetListener, OctetRuntime, TransitionRecord
from repro.octet.states import StateKind
from repro.runtime.events import AccessEvent, AccessKind, Site
from repro.runtime.listeners import ExecutionListener
from repro.runtime.view import NullView, RuntimeView
from repro.spec.specification import AtomicitySpecification

SccCallback = Callable[[List[Transaction]], None]


@dataclass
class ICDStats:
    """Counters reproducing Table 3's graph columns plus cost inputs."""

    idg_edges: int = 0
    edges_elided_same_thread: int = 0
    edges_deduplicated: int = 0
    sccs: int = 0
    scc_transactions: int = 0
    largest_scc: int = 0
    scc_computations: int = 0
    scc_skipped_no_edges: int = 0
    #: ends whose engine component was certified acyclic (dirty-marking
    #: scheduler fast path; extends ``scc_skipped_no_edges`` to "has
    #: edges, but none ever closed a cycle")
    scc_skipped_clean: int = 0
    #: ends whose component was unchanged since a fully-resolved check
    scc_skipped_unchanged: int = 0
    #: transactions actually indexed by the Tarjan passes that ran —
    #: the traversal work the schedule did not avoid
    scc_visits: int = 0
    cycle_detection_calls: int = 0
    log_entries: int = 0
    log_marks: int = 0
    #: sum of live log entries sampled at every transaction end: the
    #: integral the garbage collector repeatedly traverses.  Bounded
    #: when collection keeps logs short; grows quadratically when every
    #: log is retained (the PCD-only straw man's memory-pressure story)
    live_log_entry_integral: int = 0
    instrumented_accesses: int = 0
    array_accesses_skipped: int = 0
    #: the engine's live counters (linked when the dirty-marking
    #: scheduler is active) — ``engine_search_visits`` reads through to
    #: them, so the value can never drift from the engine's own stats
    engine: Optional[GraphEngineStats] = None

    @property
    def engine_search_visits(self) -> int:
        """Nodes visited by the engine's reorder/contraction searches.

        Sourced live from the shared engine counters instead of being
        hand-copied at execution end (0 when the engine is disabled).
        """
        return 0 if self.engine is None else self.engine.search_visits


class ICD(ExecutionListener, OctetListener):
    """The imprecise analysis.

    Args:
        spec: atomicity specification (drives transaction demarcation).
        logging_enabled: record read/write logs (single-run mode and
            the second run of multi-run mode; the first run turns this
            off — the source of its speed advantage).
        monitor_regular: predicate selecting which regular transactions
            are instrumented (the second run passes the first run's
            static set).
        monitor_unary: instrument non-transactional accesses (the
            second run passes the first run's boolean).
        instrument_arrays: include array-element accesses (off by
            default, matching the paper's main configuration).
        array_granularity_object: conflate all elements of an array by
            using array-level metadata (the Section 5.4 configuration;
            makes ICD *and* Velodrome imprecise, so cycle detection is
            disabled when the harness uses it).
        cycle_detection: run SCC detection at transaction end.
        eager_scc: ablation — additionally run cycle detection whenever
            a cross-thread edge is created (Velodrome's schedule).
        on_scc: callback receiving each new cyclic SCC's transactions.
        runtime_view: see :mod:`repro.runtime.view`.
        memory_budget: optional cap on live transactions + log entries,
            reproducing the paper's 32-bit out-of-memory ceilings.
        gc_interval: run the transaction collector every N transaction
            ends (None disables collection).
        gc_incremental: use the collector's incremental marking (ICD
            reports every IDG link it adds, which is what makes the
            mode sound — see :mod:`repro.core.gc`).  Results are
            byte-identical either way; ``False`` restores the legacy
            full mark-sweep as a reference arm.
    """

    def __init__(
        self,
        spec: AtomicitySpecification,
        *,
        logging_enabled: bool = True,
        monitor_regular: Optional[Callable[[str], bool]] = None,
        monitor_unary: bool = True,
        instrument_arrays: bool = False,
        array_granularity_object: bool = False,
        cycle_detection: bool = True,
        eager_scc: bool = False,
        on_scc: Optional[SccCallback] = None,
        runtime_view: Optional[RuntimeView] = None,
        memory_budget: Optional[int] = None,
        gc_interval: Optional[int] = 64,
        elide_duplicates: bool = True,
        merge_unary: bool = True,
        track_unary_sites: bool = False,
        monitor_unary_site: Optional[Callable[[str], bool]] = None,
        use_engine: bool = True,
        gc_incremental: bool = True,
    ) -> None:
        self.spec = spec
        self.logging_enabled = logging_enabled
        self.instrument_arrays = instrument_arrays
        self.array_granularity_object = array_granularity_object
        self.cycle_detection = cycle_detection
        self.eager_scc = eager_scc
        self.on_scc = on_scc
        self.memory_budget = memory_budget
        self.gc_interval = gc_interval
        self.elide_duplicates = elide_duplicates
        self.view = runtime_view or NullView()

        self.stats = ICDStats()
        self._obs = obs_recorder()
        #: dirty-marking SCC schedule over the shared incremental graph
        #: engine; ``use_engine=False`` restores the original
        #: Tarjan-from-every-end schedule (the benchmark baseline)
        self.scheduler: Optional[DirtySccScheduler] = (
            DirtySccScheduler() if use_engine and (cycle_detection or eager_scc) else None
        )
        if self.scheduler is not None:
            self.stats.engine = self.scheduler.graph.stats
        # RdSh→WrEx conflicts coordinate with *every other thread that
        # ever ran* — a finished thread responds like a blocked one (the
        # implicit protocol; it will trivially never access again), and
        # dropping it would lose the dependence from its final reads to
        # the write (a soundness hole a property test caught)
        self._started_threads: Set[str] = set()
        self._finished_threads: Set[str] = set()
        self.tx_manager = TransactionManager(
            spec,
            monitor_regular=monitor_regular,
            monitor_unary=monitor_unary,
            on_transaction_end=self._transaction_ended,
            on_transaction_start=self._transaction_started,
            merge_unary=merge_unary,
            monitor_unary_site=monitor_unary_site,
        )
        self.track_unary_sites = track_unary_sites
        #: extension: unary tx id -> enclosing methods of its accesses
        self.unary_sites: Dict[int, Set[str]] = {}
        self.collector = TransactionCollector(self.tx_manager)
        # incremental marking is sound only because ICD reports every
        # link it adds (cross edges in _add_edge, intra links in
        # _transaction_started); Velodrome shares the collector class
        # but not this contract, so the mode is opt-in here
        self.collector.incremental = gc_incremental
        self.octet = OctetRuntime(
            is_thread_blocked=self._is_thread_blocked,
            live_threads=lambda: sorted(self._started_threads),
        )
        self.octet.add_listener(self)

        # "last transaction to do X" facts (Section 3.2.2)
        self._last_rdex: Dict[str, Transaction] = {}
        self._g_last_rdsh: Optional[Transaction] = None

        self._elision = ElisionFilter()
        # Interning tables for the logging hot path: one shared
        # ``(oid, fieldname)`` tuple per field (every AccessEntry and
        # elision probe for that field reuses it) and one shared site
        # string per static site (``str(event.site)`` would otherwise
        # build a fresh string per logged access).
        self._addr_intern: Dict[Tuple[int, str], Tuple[int, str]] = {}
        self._site_intern: Dict[Site, str] = {}
        self._edge_order = 0
        #: externally observed edge hook: called with each IdgEdge at
        #: the very end of :meth:`_add_edge` (after eager detection),
        #: so a tap sees edges in exactly the order any SCC jobs they
        #: trigger were announced.  The sharded pipeline's channel
        #: broadcast hangs here.
        self.edge_tap: Optional[Callable[[IdgEdge], None]] = None
        #: the transaction of the access currently in the barrier
        self._req_tx: Optional[Transaction] = None
        self._req_event: Optional[AccessEvent] = None
        self._seen_edges: Set[Tuple[int, int]] = set()
        self._processed_sccs: Set[frozenset] = set()
        self._tx_ends_since_gc = 0
        self._live_log_entries = 0

    # ------------------------------------------------------------------
    # ExecutionListener
    # ------------------------------------------------------------------
    def on_thread_start(self, thread_name: str) -> None:
        self._started_threads.add(thread_name)

    def on_thread_end(self, thread_name: str) -> None:
        self._finished_threads.add(thread_name)
        self.tx_manager.on_thread_end(thread_name)

    def on_method_enter(self, thread_name: str, method: str, depth: int) -> None:
        self.tx_manager.on_method_enter(thread_name, method, depth)

    def on_method_exit(self, thread_name: str, method: str, depth: int) -> None:
        self.tx_manager.on_method_exit(thread_name, method, depth)

    def on_access(self, event: AccessEvent) -> None:
        if event.is_array and not self.instrument_arrays:
            self.stats.array_accesses_skipped += 1
            return
        tx = self.tx_manager.transaction_for_access(event)
        if tx is None:
            return  # not instrumented in this configuration
        self.stats.instrumented_accesses += 1
        if self.track_unary_sites and tx.is_unary:
            self.unary_sites.setdefault(tx.tx_id, set()).add(event.site.method)
        self._req_tx = tx
        self._req_event = event
        try:
            self.octet.observe(event)
            if self.logging_enabled:
                self._log_access(tx, event)
        finally:
            self._req_tx = None
            self._req_event = None

    def access_barrier(self) -> Callable[[AccessEvent], None]:
        """Build the fused per-access barrier (ICD + Octet in one call).

        The returned closure is what the executor's monomorphic
        single-listener dispatch invokes per access.  Its fast path —
        the access hits an object whose Octet state is already
        compatible (WrEx/RdEx owned by the accessing thread, or RdSh
        read with a current ``rdShCnt``) — costs one dict probe and one
        branch chain: no :meth:`OctetRuntime.observe` call, no
        ``Classified``/:class:`TransitionRecord` allocation, no listener
        fan-out (same-state transitions never fire Figure 4 procedures).
        Everything else falls back to the reference :meth:`on_access`
        slow path, so outputs are byte-identical by construction; the
        identity tests additionally pin the fused pipeline against runs
        with ``DOUBLECHECKER_BARRIER_FASTPATH=0``.

        Configurations whose per-access work the fused path does not
        replicate (unary site tracking, object-granularity arrays, or
        the fast path disabled) simply get ``self.on_access``.
        """
        if (
            not self.octet.fastpath
            or self.track_unary_sites
            or self.array_granularity_object
        ):
            return self.on_access

        octet = self.octet
        states = octet._states
        thread_rdsh = octet._thread_rdsh
        tx_manager = self.tx_manager
        tx_for_fields = tx_manager.transaction_for_fields
        # regular-transaction demarcation and the elision window probe
        # are inlined, mirroring the columnar barrier (the bound dicts
        # are created once in their owners' __init__ and only mutated
        # in place); the slow calls remain for unary / first-access
        tx_current = tx_manager._current
        tx_stats = tx_manager.stats
        stats = self.stats
        elision = self._elision
        el_last = elision._last_by_thread
        el_ts = elision._thread_ts
        el_stats = elision.stats
        addr_intern = self._addr_intern
        site_intern = self._site_intern
        instrument_arrays = self.instrument_arrays
        logging_enabled = self.logging_enabled
        elide_duplicates = self.elide_duplicates
        slow_path = self.on_access
        check_budget = self.memory_budget is not None

        def fused_access(
            event: AccessEvent,
            *,
            _READ: AccessKind = AccessKind.READ,
            _WRITE: AccessKind = AccessKind.WRITE,
            _WR_EX: StateKind = StateKind.WR_EX,
            _RD_EX: StateKind = StateKind.RD_EX,
            _RD_SH: StateKind = StateKind.RD_SH,
        ) -> None:
            if event.is_array and not instrument_arrays:
                stats.array_accesses_skipped += 1
                return
            oid = event.obj.oid
            thread = event.thread_name
            state = states.get(oid)
            if state is not None:
                kind = state.kind
                if (
                    state.owner == thread
                    and (
                        kind is _WR_EX
                        or (kind is _RD_EX and event.kind is _READ)
                    )
                ) or (
                    kind is _RD_SH
                    and event.kind is _READ
                    and thread_rdsh.get(thread, 0) >= state.counter
                ):
                    tx = tx_current.get(thread)
                    if tx is not None and not tx.is_unary:
                        if not tx.monitored:
                            tx_stats.skipped_accesses += 1
                            return
                        tx_stats.regular_accesses += 1
                    else:
                        tx = tx_for_fields(thread, event.site)
                        if tx is None:
                            return  # not instrumented in this configuration
                    stats.instrumented_accesses += 1
                    octet._barriers_pending += 1
                    octet._fastpath_pending += 1
                    octet._fused_pending += 1
                    if logging_enabled:
                        log = tx.log
                        if log is None:
                            log = tx.log = ReadWriteLog()
                        address = (oid, event.fieldname)
                        address = addr_intern.setdefault(address, address)
                        if elide_duplicates:
                            per_thread = el_last.get(thread)
                            if per_thread is None:
                                per_thread = el_last[thread] = {}
                            last = per_thread.get(address)
                            ts = el_ts.get(thread, 0)
                            if (
                                last is not None
                                and last[0] == ts
                                and (
                                    last[1] is event.kind
                                    or last[1] is _WRITE
                                )
                            ):
                                el_stats.elided += 1
                                return
                            per_thread[address] = (ts, event.kind)
                            el_stats.logged += 1
                        site = event.site
                        site_str = site_intern.get(site)
                        if site_str is None:
                            site_str = site_intern[site] = str(site)
                        log.entries.append(
                            AccessEntry(
                                event.kind, oid, event.fieldname,
                                event.seq, site_str, address,
                            )
                        )
                        stats.log_entries += 1
                        self._live_log_entries += 1
                        if check_budget:
                            self._check_budget()
                    return
            slow_path(event)

        return fused_access

    def access_barrier_batch(self) -> Optional[Callable[..., None]]:
        """Build the columnar barrier for the batch executor.

        Same fast-path predicate and bookkeeping as the closure from
        :meth:`access_barrier`, but consuming the batch loop's
        pre-interned column values — object, field name, ``(oid,
        field)`` address, canonical site, site string — directly, so a
        compatible-state access performs no allocation at all.  Only
        when the access leaves the fast path (first access to an
        object, any Octet state transition) is an
        :class:`AccessEvent` materialized for the reference
        :meth:`on_access` slow path, which keeps outputs byte-identical
        by construction.  Returns ``None`` for configurations the fused
        path does not serve (fast path disabled, unary site tracking,
        object-granularity arrays); the executor then routes every
        access through the ordinary event path.
        """
        if (
            not self.octet.fastpath
            or self.track_unary_sites
            or self.array_granularity_object
        ):
            return None

        octet = self.octet
        states = octet._states
        thread_rdsh = octet._thread_rdsh
        tx_manager = self.tx_manager
        tx_for_fields = tx_manager.transaction_for_fields
        # the regular-transaction fast path of transaction_for_fields
        # and the elision window probe are inlined below (both dicts
        # are created once in their owners' __init__ and only mutated
        # in place, so binding them here is safe); the slow calls
        # remain for the unary / first-access cases
        tx_current = tx_manager._current
        tx_stats = tx_manager.stats
        stats = self.stats
        elision = self._elision
        el_last = elision._last_by_thread
        el_ts = elision._thread_ts
        el_stats = elision.stats
        instrument_arrays = self.instrument_arrays
        logging_enabled = self.logging_enabled
        elide_duplicates = self.elide_duplicates
        slow_path = self.on_access
        check_budget = self.memory_budget is not None

        def fused_batch(
            seq: int,
            thread: str,
            obj: Any,
            fieldname: str,
            kind: AccessKind,
            site: Site,
            address: Tuple[int, str],
            site_str: str,
            is_array: bool,
            *,
            _READ: AccessKind = AccessKind.READ,
            _WRITE: AccessKind = AccessKind.WRITE,
            _WR_EX: StateKind = StateKind.WR_EX,
            _RD_EX: StateKind = StateKind.RD_EX,
            _RD_SH: StateKind = StateKind.RD_SH,
        ) -> None:
            if is_array and not instrument_arrays:
                stats.array_accesses_skipped += 1
                return
            oid = obj.oid
            state = states.get(oid)
            if state is not None:
                skind = state.kind
                if (
                    state.owner == thread
                    and (
                        skind is _WR_EX
                        or (skind is _RD_EX and kind is _READ)
                    )
                ) or (
                    skind is _RD_SH
                    and kind is _READ
                    and thread_rdsh.get(thread, 0) >= state.counter
                ):
                    tx = tx_current.get(thread)
                    if tx is not None and not tx.is_unary:
                        if not tx.monitored:
                            tx_stats.skipped_accesses += 1
                            return
                        tx_stats.regular_accesses += 1
                    else:
                        tx = tx_for_fields(thread, site)
                        if tx is None:
                            return  # not instrumented in this configuration
                    stats.instrumented_accesses += 1
                    octet._barriers_pending += 1
                    octet._fastpath_pending += 1
                    octet._fused_pending += 1
                    if logging_enabled:
                        log = tx.log
                        if log is None:
                            log = tx.log = ReadWriteLog()
                        # address and site_str are already canonical in
                        # the executor's column tables; ICD's own intern
                        # tables (fed by the slow path) only yield
                        # value-equal duplicates, so no folding needed
                        if elide_duplicates:
                            per_thread = el_last.get(thread)
                            if per_thread is None:
                                per_thread = el_last[thread] = {}
                            last = per_thread.get(address)
                            ts = el_ts.get(thread, 0)
                            if (
                                last is not None
                                and last[0] == ts
                                and (last[1] is kind or last[1] is _WRITE)
                            ):
                                el_stats.elided += 1
                                return
                            per_thread[address] = (ts, kind)
                            el_stats.logged += 1
                        log.entries.append(
                            AccessEntry(
                                kind, oid, fieldname, seq, site_str, address,
                            )
                        )
                        stats.log_entries += 1
                        self._live_log_entries += 1
                        if check_budget:
                            self._check_budget()
                    return
            slow_path(
                AccessEvent(
                    seq, thread, obj, fieldname, kind, False, is_array, site
                )
            )

        return fused_batch

    def on_execution_end(self) -> None:
        self.tx_manager.finish_all()
        self.publish_metrics()

    def publish_metrics(self) -> None:
        """Publish every counter this analysis owns onto the registry."""
        obs = self._obs
        if not obs.enabled:
            return
        publish_stats(obs, "icd", self.stats)
        obs.inc("icd.engine_search_visits", self.stats.engine_search_visits)
        self.octet.stats.publish(obs)
        for key, value in sorted(self.octet.protocol.stats().items()):
            if isinstance(value, int) and not isinstance(value, bool):
                obs.inc(f"octet.protocol.{key}", value)
        publish_stats(obs, "transactions", self.tx_manager.stats)
        publish_stats(
            obs,
            "gc",
            self.collector.stats,
            gauges=("peak_live_transactions", "peak_live_log_entries"),
        )
        publish_stats(obs, "elision", self._elision.stats)
        if self.scheduler is not None:
            self.scheduler.graph.stats.publish(obs, "icd.engine")

    # ------------------------------------------------------------------
    # OctetListener — the Figure 4 procedures
    # ------------------------------------------------------------------
    def on_conflicting(self, record: TransitionRecord) -> None:
        """handleConflictingTransition: edge from each responder's
        current transaction to the requester's current transaction."""
        req_tx = self._req_tx
        assert req_tx is not None and record.coordination is not None
        for responder in record.coordination.responders:
            resp_tx = self.tx_manager.current_or_latest(responder.thread_name)
            self._add_edge(resp_tx, req_tx, "conflicting")
        new_state = record.new_state
        if new_state is not None and new_state.kind.name == "RD_EX":
            self._last_rdex[req_tx.thread_name] = req_tx

    def on_upgrading_rd_sh(self, record: TransitionRecord) -> None:
        """handleUpgradingTransition: edges from the previous RdEx
        owner's last-RdEx transaction and from gLastRdSh; then update
        gLastRdSh to the current transaction."""
        req_tx = self._req_tx
        assert req_tx is not None
        prior_owner = record.prior_owner
        if prior_owner is not None:
            self._add_edge(self._last_rdex.get(prior_owner), req_tx, "upgrading")
        self._add_edge(self._g_last_rdsh, req_tx, "rdsh-order")
        self._g_last_rdsh = req_tx

    def on_fence(self, record: TransitionRecord) -> None:
        """handleFenceTransition: edge from gLastRdSh."""
        req_tx = self._req_tx
        assert req_tx is not None
        self._add_edge(self._g_last_rdsh, req_tx, "fence")

    def on_upgrading_wr_ex(self, record: TransitionRecord) -> None:
        """RdExT → WrExT is safely ignored: any dependence it creates is
        already captured by existing intra- and cross-thread edges."""

    # ------------------------------------------------------------------
    # IDG construction
    # ------------------------------------------------------------------
    def _add_edge(
        self, src: Optional[Transaction], dst: Transaction, kind: str
    ) -> Optional[IdgEdge]:
        if src is None or src is dst or src.collected:
            # a collected source can never re-enter a cycle (the GC
            # liveness proof), so its edge adds no detectable ordering
            return None
        if src.thread_name == dst.thread_name:
            # covered transitively by the thread's intra-transaction chain
            self.stats.edges_elided_same_thread += 1
            return None
        if not self.logging_enabled:
            key = (src.tx_id, dst.tx_id)
            if key in self._seen_edges:
                self.stats.edges_deduplicated += 1
                src.edge_touched = True
                dst.edge_touched = True
                return None
            self._seen_edges.add(key)
        self._edge_order += 1
        edge = IdgEdge(src, dst, kind, self._edge_order)
        if self.logging_enabled:
            event = self._req_event
            seq = event.seq if event is not None else 0
            # edges interrupt the elision windows of both threads
            self._elision.bump(src.thread_name)
            self._elision.bump(dst.thread_name)
            if src.log is not None:
                edge.src_log_index = src.log.append_mark(edge.order, True, seq)
                self._count_log_entry(is_mark=True)
            if dst.log is not None:
                edge.dst_log_index = dst.log.append_mark(edge.order, False, seq)
                self._count_log_entry(is_mark=True)
        src.out_edges.append(edge)
        dst.in_edges.append(edge)
        src.edge_touched = True
        dst.edge_touched = True
        self.collector.note_link(src, dst)
        self.stats.idg_edges += 1
        if self.scheduler is not None:
            # must precede the eager unary end below: ending src fires
            # _transaction_ended, whose schedule consults the engine
            self.scheduler.note_cross_edge(
                src.tx_id, src.thread_name, dst.tx_id, dst.thread_name
            )
        # the responder sits at a safe point: its interrupted unary
        # transaction (if any) can be ended eagerly (dst is the
        # requester's transaction, mid-access — it ends lazily)
        if src is not self._req_tx:
            self.tx_manager.end_if_interrupted_unary(src)
        if self.eager_scc:
            self._detect_from(dst)
        if self.edge_tap is not None:
            self.edge_tap(edge)
        return edge

    def ingest_edges(
        self, edges: Iterable[Tuple[Optional[Transaction], Transaction, str]]
    ) -> List[Optional[IdgEdge]]:
        """Feed externally detected dependence edges through the exact
        serial edge path, in stream order.

        This is the ICD half of the partitioned analysis plane's
        externally-fed edge API: a caller that discovered dependences
        elsewhere (a partition worker's merged cross-partition stream,
        a recorded trace) applies them here and gets the same marks,
        elision bumps, GC links, scheduler notifications, and eager
        detection the in-barrier path produces.  Returns the created
        :class:`IdgEdge` per input (``None`` where the serial path
        would elide the edge).
        """
        return [self._add_edge(src, dst, kind) for src, dst, kind in edges]

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------
    def _log_access(self, tx: Transaction, event: AccessEvent) -> None:
        """Log one access — single pass over the hot-path bookkeeping.

        The address tuple is built once and interned (the elision probe,
        the :class:`AccessEntry`, and every later access to the same
        field share one tuple), the site string is interned per static
        site, and the entry count is folded into the append instead of
        a separate :meth:`_count_log_entry` call.
        """
        log = tx.log
        if log is None:
            log = tx.log = ReadWriteLog()
        if event.is_array and self.array_granularity_object:
            address = event.object_address
        else:
            address = (event.obj.oid, event.fieldname)
        address = self._addr_intern.setdefault(address, address)
        if self.elide_duplicates and not self._elision.should_log_addr(
            event.thread_name, address, event.kind
        ):
            return
        site = event.site
        site_str = self._site_intern.get(site)
        if site_str is None:
            site_str = self._site_intern[site] = str(site)
        log.entries.append(
            AccessEntry(event.kind, address[0], address[1], event.seq, site_str, address)
        )
        self.stats.log_entries += 1
        self._live_log_entries += 1
        if self.memory_budget is not None:
            self._check_budget()

    def _count_log_entry(self, is_mark: bool) -> None:
        if is_mark:
            self.stats.log_marks += 1
        else:
            self.stats.log_entries += 1
        self._live_log_entries += 1
        self._check_budget()

    # ------------------------------------------------------------------
    # transaction lifecycle
    # ------------------------------------------------------------------
    def _transaction_started(self, tx: Transaction) -> None:
        self.collector.note_link(tx.intra_prev, tx)
        if self.logging_enabled and tx.monitored:
            tx.log = ReadWriteLog()
        self._elision.bump(tx.thread_name)

    def _transaction_ended(self, tx: Transaction) -> None:
        self.stats.live_log_entry_integral += self._live_log_entries
        if self.cycle_detection:
            self.stats.cycle_detection_calls += 1
            if tx.has_cross_edges():
                # detection must precede collection: the just-completed
                # cycle's members are swept-able once it is reported
                self._detect_from(tx)
            else:
                # sound: the last-finishing member of any cycle always
                # has a cross-thread edge (edges attach only to active
                # transactions, and a crossless member's intra successor
                # outlives it)
                self.stats.scc_skipped_no_edges += 1
        self._maybe_collect()

    def _detect_from(self, tx: Transaction) -> None:
        if not tx.finished:
            return
        frontier = None
        if self.scheduler is not None:
            frontier = self.scheduler.frontier_for(tx.tx_id)
            if frontier is None:
                # engine-certified: either the component is acyclic (the
                # maintained topological order is the witness) or it is
                # unchanged since a check that resolved all of it
                if self.scheduler.last_skip_clean:
                    self.stats.scc_skipped_clean += 1
                else:
                    self.stats.scc_skipped_unchanged += 1
                return
        self.stats.scc_computations += 1
        component, visits = scc_containing_counted(tx, frontier)
        self.stats.scc_visits += visits
        if self.scheduler is not None:
            self.scheduler.note_checked(
                tx.tx_id, {t.tx_id for t in component}
            )
        if not is_cyclic_component(component):
            return
        key = frozenset(t.tx_id for t in component)
        if key in self._processed_sccs:
            return
        self._processed_sccs.add(key)
        self.stats.sccs += 1
        self.stats.scc_transactions += len(component)
        self.stats.largest_scc = max(self.stats.largest_scc, len(component))
        if self.on_scc is not None:
            self.on_scc(component)

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------
    def _maybe_collect(self) -> None:
        self._tx_ends_since_gc += 1
        if self.gc_interval is None or self._tx_ends_since_gc < self.gc_interval:
            self._check_budget()
            return
        self._tx_ends_since_gc = 0
        # _live_log_entries is maintained incrementally (+1 per logged
        # access/mark, minus what each collection sweeps), so neither
        # the peak sample nor the post-collect refresh needs the
        # collector's O(live transactions) log re-scan — profiling
        # showed those scans dominating instrumented single-run time
        self.collector.note_peak(self._live_log_entries)
        roots: List[Transaction] = list(self._last_rdex.values())
        if self._g_last_rdsh is not None:
            roots.append(self._g_last_rdsh)
        self.collector.collect(roots)
        if self.scheduler is not None:
            # the engine keeps merged components (its acyclicity
            # certificate) but can drop collected singletons; the
            # collector reports exactly what this collection swept, so
            # no re-scan of the pre-collect population is needed
            self.scheduler.forget(self.collector.last_swept_ids)
        self._live_log_entries -= self.collector.last_swept_log_entries
        if not self.logging_enabled:
            live_ids = {t.tx_id for t in self.tx_manager.all_transactions}
            self._seen_edges = {
                (s, d) for (s, d) in self._seen_edges if s in live_ids and d in live_ids
            }
        self._check_budget()

    def _check_budget(self) -> None:
        if self.memory_budget is None:
            return
        used = len(self.tx_manager.all_transactions) + self._live_log_entries
        if used > self.memory_budget:
            raise OutOfMemoryBudget("ICD", used, self.memory_budget)

    # ------------------------------------------------------------------
    def _is_thread_blocked(self, thread_name: str) -> bool:
        # a finished thread responds via the implicit protocol, exactly
        # like a blocked one
        if thread_name in self._finished_threads:
            return True
        return self.view.is_thread_blocked(thread_name)

    def bind_view(self, view: RuntimeView) -> None:
        """Attach a live runtime view (the run helpers call this)."""
        self.view = view
