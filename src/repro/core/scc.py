"""Strongly connected component detection over the IDG.

ICD defers cycle detection to transaction end (Section 3.2.3) and then
computes the maximal SCC containing the transaction that just ended.
The computation explores a transaction only if it has finished, which
is sound (if a transaction is involved in cycles, an SCC computation
launched when its last-finishing member ends will detect them) and
avoids racing with threads still updating their current transaction.

The implementation is an iterative Tarjan restricted to finished
transactions, returning the SCC that contains the root.  Successors
are consumed straight off ``out_edges`` and ``intra_next`` with the
finished/uncollected filter applied inline — no per-node successor
list is allocated, so repeated passes over the same stable region
cost only the traversal itself.

``frontier`` optionally restricts the pass — ICD seeds it with the
:class:`~repro.graph.chains.ChainFrontier` of the ending transaction's
engine component (registered members plus the per-thread id windows
that admit unregistered chain interiors).  The restriction cannot
change the result: the engine graph is a supergraph of the live
subgraph, so the root's true SCC is admitted in full, and an admitted
transaction outside the SCC has no path back into it — skipping the
rest prunes exactly the exploration that could never contribute to
the root's SCC, and leaves the discovery (and hence pop) order of
component members unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.transactions import Transaction


def scc_containing(
    root: Transaction, frontier=None
) -> List[Transaction]:
    """Return the members of ``root``'s SCC (size 1 if acyclic).

    Only finished transactions are explored; unfinished successors are
    skipped exactly as the paper prescribes.  ``frontier``, when given,
    bounds the pass to the transactions it ``admits``.
    """
    return scc_containing_counted(root, frontier)[0]


def scc_containing_counted(
    root: Transaction, frontier=None
) -> Tuple[List[Transaction], int]:
    """Like :func:`scc_containing`, also returning the visit count.

    The count is the number of transactions Tarjan actually indexed —
    the real traversal cost ICD reports as ``scc_visits``.
    """
    if not root.finished:
        return [root], 1

    index_of: Dict[Transaction, int] = {}
    lowlink: Dict[Transaction, int] = {}
    on_stack: Set[Transaction] = set()
    stack: List[Transaction] = []
    result: Optional[List[Transaction]] = None
    counter = 0

    # iterative Tarjan.  Work items are (node, next edge index, pending
    # child): edge indices < len(out_edges) address cross-thread edges,
    # index == len(out_edges) addresses the intra-thread successor, so
    # successors stream off the transaction without a filtered copy.
    work: List[tuple[Transaction, int, Optional[Transaction]]] = []

    def push(node: Transaction) -> None:
        nonlocal counter
        index_of[node] = counter
        lowlink[node] = counter
        counter += 1
        stack.append(node)
        on_stack.add(node)
        work.append((node, 0, None))

    push(root)
    while work:
        node, i, child = work.pop()
        if child is not None:
            # returned from recursing into child
            child_low = lowlink[child]
            if child_low < lowlink[node]:
                lowlink[node] = child_low
        out = node.out_edges
        n_out = len(out)
        advanced = False
        while i <= n_out:
            if i < n_out:
                succ = out[i].dst
            else:
                succ = node.intra_next
                if succ is None:
                    break
            i += 1
            if not succ.finished or succ.collected:
                continue
            if frontier is not None and not frontier.admits(
                succ.thread_name, succ.tx_id
            ):
                continue
            succ_index = index_of.get(succ)
            if succ_index is None:
                work.append((node, i, succ))
                push(succ)
                advanced = True
                break
            if succ in on_stack and succ_index < lowlink[node]:
                lowlink[node] = succ_index
        if advanced:
            continue
        # node finished: pop its SCC if it is a root
        if lowlink[node] == index_of[node]:
            component: List[Transaction] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member is node:
                    break
            if node is root:
                result = component

    assert result is not None, "root must belong to some SCC"
    return result, counter


def is_cyclic_component(component: List[Transaction]) -> bool:
    """True when the component represents at least one cycle.

    Self-loops cannot occur in the IDG (ICD never adds an edge from a
    transaction to itself), so a component is cyclic iff it has more
    than one member.
    """
    return len(component) > 1
