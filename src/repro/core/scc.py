"""Strongly connected component detection over the IDG.

ICD defers cycle detection to transaction end (Section 3.2.3) and then
computes the maximal SCC containing the transaction that just ended.
The computation explores a transaction only if it has finished, which
is sound (if a transaction is involved in cycles, an SCC computation
launched when its last-finishing member ends will detect them) and
avoids racing with threads still updating their current transaction.

The implementation is an iterative Tarjan restricted to finished
transactions, returning the SCC that contains the root.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.transactions import Transaction


def scc_containing(root: Transaction) -> List[Transaction]:
    """Return the members of ``root``'s SCC (size 1 if acyclic).

    Only finished transactions are explored; unfinished successors are
    skipped exactly as the paper prescribes.
    """
    if not root.finished:
        return [root]

    index_of: Dict[Transaction, int] = {}
    lowlink: Dict[Transaction, int] = {}
    on_stack: Set[Transaction] = set()
    stack: List[Transaction] = []
    result: Optional[List[Transaction]] = None
    counter = 0

    # iterative Tarjan: work items are (node, iterator over successors)
    work: List[tuple[Transaction, int, List[Transaction]]] = []

    def push(node: Transaction) -> None:
        nonlocal counter
        index_of[node] = counter
        lowlink[node] = counter
        counter += 1
        stack.append(node)
        on_stack.add(node)
        successors = [s for s in node.successors() if s.finished and not s.collected]
        work.append((node, 0, successors))

    push(root)
    while work:
        node, i, successors = work.pop()
        if i > 0:
            # returned from recursing into successors[i - 1]
            prev = successors[i - 1]
            lowlink[node] = min(lowlink[node], lowlink[prev])
        advanced = False
        while i < len(successors):
            succ = successors[i]
            i += 1
            if succ not in index_of:
                work.append((node, i, successors))
                push(succ)
                advanced = True
                break
            if succ in on_stack:
                lowlink[node] = min(lowlink[node], index_of[succ])
        if advanced:
            continue
        # node finished: pop its SCC if it is a root
        if lowlink[node] == index_of[node]:
            component: List[Transaction] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member is node:
                    break
            if node is root:
                result = component

    assert result is not None, "root must belong to some SCC"
    return result


def is_cyclic_component(component: List[Transaction]) -> bool:
    """True when the component represents at least one cycle.

    Self-loops cannot occur in the IDG (ICD never adds an edge from a
    transaction to itself), so a component is cyclic iff it has more
    than one member.
    """
    return len(component) > 1
