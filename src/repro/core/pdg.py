"""The precise dependence graph (PDG).

PCD adds cross-thread edges between transactions as it discovers
precise dependences, plus an intra-thread edge from each thread's
previous transaction to its next one (Velodrome's rule), and checks
for a cycle after each new cross-thread edge.  A cycle is a sound and
precise condition for a conflict-serializability violation.

Intra-thread edges matter: a cycle may mix the two kinds.  If
transaction ``B`` overlaps two transactions ``A1 → A2`` of another
thread — writing something ``A1`` reads *before* reading something
``A2`` writes — the cycle is ``B → A1 → A2 → B``, where ``A1 → A2`` is
program order.  (``B`` is the classic non-atomic region interleaved
around a whole critical section.)  Intra-thread edges can never
*close* a cycle themselves, though: the edge ``A1 → A2`` is created at
``A2``'s start, before ``A2`` has performed any access, so ``A2`` has
no outgoing dependence edges yet and no path back to ``A1`` can exist.
Hence only cross-thread edges need the per-edge cycle check.

**Cycle checks are engine-certified.**  Every edge is mirrored into a
shared :class:`~repro.graph.engine.IncrementalSccDigraph`, which keeps
a topological order of the graph's condensation.  A new edge whose
endpoints sit in different components provably closes no cycle, so the
per-edge check is a component lookup instead of a graph traversal.
When the endpoints do share a component, the original DFS runs —
restricted to that component's members.  The restriction cannot change
the path found: every node on a ``dst ⇝ src`` path lies on a cycle
through the closing edge and hence inside the component, and a visited
node outside the component can never discover a node inside it (an
edge from it into the component would put it on such a path), so the
restricted DFS pops the same nodes in the same order and reconstructs
the identical edge list.  ``use_engine=False`` retains the original
whole-graph DFS — the reference the property tests pin the engine to,
and the baseline ``benchmarks/bench_analysis_throughput.py`` measures
the engine against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.engine import IncrementalSccDigraph


@dataclass(frozen=True)
class PdgEdge:
    """A precise cross-thread dependence edge between transactions.

    ``order`` is the creation index used by blame assignment.
    """

    src: int
    dst: int
    order: int


class PDG:
    """Transaction-level dependence graph with incremental cycle checks."""

    def __init__(self, use_engine: bool = True) -> None:
        #: adjacency: src tx id -> dst tx id -> edge (first creation wins)
        self._adj: Dict[int, Dict[int, PdgEdge]] = {}
        self._order = 0
        self.edge_count = 0
        self.cycle_checks = 0
        #: total nodes visited across all cycle checks — the real cost
        #: of per-edge detection.  With the engine this counts only the
        #: component-restricted searches that actually run; with
        #: ``use_engine=False`` it reproduces the whole-graph DFS cost
        #: that made the PCD-only straw man explode
        self.nodes_visited = 0
        #: node set, maintained incrementally on ``add_edge`` (it used
        #: to be rebuilt from the whole adjacency map per call)
        self._nodes: Set[int] = set()
        self.engine: Optional[IncrementalSccDigraph] = (
            IncrementalSccDigraph() if use_engine else None
        )

    def add_edge(self, src: int, dst: int) -> Optional[PdgEdge]:
        """Add an edge; returns it if new, ``None`` if it already existed."""
        if src == dst:
            return None
        out = self._adj.setdefault(src, {})
        if dst in out:
            return None
        self._order += 1
        edge = PdgEdge(src, dst, self._order)
        out[dst] = edge
        self.edge_count += 1
        self._nodes.add(src)
        self._nodes.add(dst)
        if self.engine is not None:
            self.engine.add_edge(src, dst)
        return edge

    def successors(self, node: int) -> Dict[int, PdgEdge]:
        return self._adj.get(node, {})

    # ------------------------------------------------------------------
    def find_cycle_through(self, edge: PdgEdge) -> Optional[List[PdgEdge]]:
        """Find a cycle that uses ``edge``, as an ordered edge list.

        Searches for a path ``edge.dst ⇝ edge.src``; if found, the cycle
        is that path followed by ``edge``.  Returns ``None`` when acyclic.
        """
        self.cycle_checks += 1
        target = edge.src
        start = edge.dst
        if start == target:
            return None
        membership: Optional[Set[int]] = None
        if self.engine is not None:
            if not self.engine.same_component(start, target):
                # certified acyclic: the maintained topological order
                # witnesses that no dst ⇝ src path exists
                return None
            membership = self.engine.component_members(start)
        # iterative DFS remembering the edge that discovered each node
        discovered: Dict[int, PdgEdge] = {}
        stack = [start]
        seen: Set[int] = {start}
        try:
            while stack:
                node = stack.pop()
                for succ, out_edge in self.successors(node).items():
                    if succ in seen:
                        continue
                    if membership is not None and succ not in membership:
                        continue
                    discovered[succ] = out_edge
                    if succ == target:
                        return self._reconstruct(edge, discovered, start, target)
                    seen.add(succ)
                    stack.append(succ)
            return None
        finally:
            self.nodes_visited += len(seen)

    @staticmethod
    def _reconstruct(
        closing: PdgEdge, discovered: Dict[int, PdgEdge], start: int, target: int
    ) -> List[PdgEdge]:
        path: List[PdgEdge] = []
        node = target
        while node != start:
            edge = discovered[node]
            path.append(edge)
            node = edge.src
        path.reverse()
        path.append(closing)
        return path

    # ------------------------------------------------------------------
    def nodes(self) -> Set[int]:
        return set(self._nodes)
