"""Blame assignment (Section 3.3, following Velodrome).

Given a dependence cycle, the blamed transaction is one whose outgoing
cycle edge was created *earlier* than its incoming cycle edge: such a
transaction kept running after its effects escaped, and its final
access completed the cycle.  Reporting the blamed transaction's static
method is what drives iterative refinement (the blamed method is
removed from the specification).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.pdg import PdgEdge


def blamed_nodes(cycle: Sequence[PdgEdge]) -> List[int]:
    """Transactions to blame for a cycle, given its edges in path order.

    ``cycle`` is an ordered edge list ``t1→t2, t2→t3, ..., tk→t1``.
    For each node, compare the creation order of its outgoing cycle
    edge with its incoming cycle edge; blame nodes whose outgoing edge
    is older.  At least one such node always exists (the sink of the
    newest edge: its outgoing cycle edge existed before the newest edge
    was created), so the result is never empty.
    """
    if not cycle:
        return []
    incoming: Dict[int, PdgEdge] = {}
    outgoing: Dict[int, PdgEdge] = {}
    for edge in cycle:
        outgoing[edge.src] = edge
        incoming[edge.dst] = edge
    blamed = [
        node
        for node in outgoing
        if node in incoming and outgoing[node].order < incoming[node].order
    ]
    assert blamed, "every cycle has a node whose outgoing edge is older"
    return sorted(blamed)
