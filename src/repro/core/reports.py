"""Violation reports.

Table 2 counts *static* violations: a method counts once if blame
assignment identified it at least once during iterative refinement,
no matter how many dynamic cycles involved it.  The
:class:`ViolationSummary` therefore keeps every dynamic record but
exposes the static view the evaluation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Set, Tuple


@dataclass(frozen=True)
class ViolationRecord:
    """One dynamic atomicity violation (a precise dependence cycle).

    Attributes:
        blamed_method: static identity of the blamed transaction.
        blamed_tx_id: the blamed transaction.
        thread_name: thread executing the blamed transaction.
        cycle_methods: static identities of every transaction in the
            cycle, in cycle order.
        cycle_tx_ids: the dynamic transactions in the cycle.
        detector: "pcd" or "velodrome".
    """

    blamed_method: str
    blamed_tx_id: int
    thread_name: str
    cycle_methods: Tuple[str, ...]
    cycle_tx_ids: Tuple[int, ...]
    detector: str

    @property
    def cycle_size(self) -> int:
        return len(self.cycle_tx_ids)


@dataclass
class ViolationSummary:
    """All violations reported during one run (or one refinement step)."""

    records: List[ViolationRecord] = field(default_factory=list)

    def add(self, record: ViolationRecord) -> None:
        self.records.append(record)

    def extend(self, records: List[ViolationRecord]) -> None:
        self.records.extend(records)

    def blamed_methods(self) -> Set[str]:
        """The static violations: methods blamed at least once."""
        return {r.blamed_method for r in self.records}

    def dynamic_count(self) -> int:
        return len(self.records)

    def static_count(self) -> int:
        return len(self.blamed_methods())

    def __bool__(self) -> bool:
        return bool(self.records)

    def merge(self, other: "ViolationSummary") -> None:
        self.records.extend(other.records)
