"""Transactions and their demarcation.

A *transaction* is a dynamically executing atomic region.  Regular
transactions correspond to (outermost) executions of methods in the
atomicity specification; every access outside a regular transaction
executes in a *unary* transaction.  Following the paper's
implementation, consecutive unary transactions not interrupted by an
incoming or outgoing cross-thread edge are merged (Section 4,
"Constructing the IDG").

The :class:`TransactionManager` performs demarcation from method
enter/exit events and hands the analyses the current transaction for
each access.  It is shared by ICD and by our Velodrome implementation,
which demarcate transactions identically (Section 4, "Velodrome
implementation": both "demarcate transactions the same way").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.runtime.events import AccessEvent
from repro.spec.specification import AtomicitySpecification

UNARY_METHOD = "<unary>"


class Transaction:
    """A node of a transaction dependence graph (IDG or Velodrome's).

    Attributes:
        tx_id: globally unique id within a checker run.
        thread_name: the executing thread.
        method: static identity (method name for regular transactions,
            ``<unary>`` for unary ones).
        is_unary: unary vs regular.
        finished: set when the transaction ends; SCC detection only
            explores finished transactions.
        out_edges: outgoing cross-thread edges (IDG edges).
        in_edges: incoming cross-thread edges.
        intra_next / intra_prev: the thread's transaction chain; the
            intra-thread edge to the successor captures all intra-thread
            dependences.
        edge_touched: true once any cross-thread edge has this
            transaction as source or sink; used for unary merging.
        log: the read/write log (only when logging is enabled).
        monitored: false for transactions excluded from analysis during
            the second run of multi-run mode.
    """

    __slots__ = (
        "tx_id",
        "thread_name",
        "method",
        "is_unary",
        "finished",
        "out_edges",
        "in_edges",
        "intra_next",
        "intra_prev",
        "edge_touched",
        "log",
        "monitored",
        "collected",
        "gc_pmark",
        "gc_emark",
    )

    def __init__(
        self,
        tx_id: int,
        thread_name: str,
        method: str,
        is_unary: bool,
        monitored: bool = True,
    ) -> None:
        self.tx_id = tx_id
        self.thread_name = thread_name
        self.method = method
        self.is_unary = is_unary
        self.finished = False
        self.out_edges: List["IdgEdge"] = []
        self.in_edges: List["IdgEdge"] = []
        self.intra_next: Optional["Transaction"] = None
        self.intra_prev: Optional["Transaction"] = None
        self.edge_touched = False
        self.log = None  # type: ignore[assignment]
        self.monitored = monitored
        self.collected = False
        # incremental-GC mark words (see repro.core.gc): generation
        # numbers of the collector's persistent alive set and of the
        # per-collect ephemeral trace; stale values are simply ignored
        self.gc_pmark = 0
        self.gc_emark = 0

    def successors(self) -> List["Transaction"]:
        """IDG successors: cross-thread edge sinks plus the intra next."""
        succ = [edge.dst for edge in self.out_edges]
        if self.intra_next is not None:
            succ.append(self.intra_next)
        return succ

    def has_cross_edges(self) -> bool:
        return bool(self.out_edges or self.in_edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "unary" if self.is_unary else "regular"
        state = "finished" if self.finished else "active"
        return f"<Tx#{self.tx_id} {kind} {self.method} on {self.thread_name} ({state})>"

    def __hash__(self) -> int:
        return self.tx_id

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass
class IdgEdge:
    """A cross-thread edge of the imprecise dependence graph.

    ``src_log_index``/``dst_log_index`` anchor the edge in the two
    transactions' read/write logs so PCD can order accesses across
    threads (Section 3.2.4); they are ``None`` when logging is off
    (the first run of multi-run mode).
    """

    src: Transaction
    dst: Transaction
    kind: str
    order: int
    src_log_index: Optional[int] = None
    dst_log_index: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Edge#{self.order} {self.kind} Tx{self.src.tx_id}->Tx{self.dst.tx_id}>"


@dataclass
class TransactionStats:
    """Counters reproducing Table 3's transaction columns."""

    regular_transactions: int = 0
    unary_transactions: int = 0
    regular_accesses: int = 0
    unary_accesses: int = 0
    skipped_accesses: int = 0
    unmonitored_transactions: int = 0


class TransactionManager:
    """Demarcates transactions from method and access events.

    Args:
        spec: the atomicity specification.
        monitor_regular: predicate deciding whether a regular
            transaction for a given method is monitored (the second run
            of multi-run mode passes the first run's static set; all
            other configurations monitor everything).
        monitor_unary: whether unary transactions are instrumented
            (the second run passes the first run's boolean).
        on_transaction_end: callback fired when a monitored transaction
            finishes — ICD hooks cycle detection here.
        on_transaction_start: optional callback on transaction start.
        merge_unary: merge consecutive unary transactions not
            interrupted by a cross-thread edge (the paper's
            optimization, on by default; off = one transaction per
            non-transactional access, the ablation baseline).
    """

    def __init__(
        self,
        spec: AtomicitySpecification,
        monitor_regular: Optional[Callable[[str], bool]] = None,
        monitor_unary: bool = True,
        on_transaction_end: Optional[Callable[[Transaction], None]] = None,
        on_transaction_start: Optional[Callable[[Transaction], None]] = None,
        merge_unary: bool = True,
        monitor_unary_site: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self.spec = spec
        self._monitor_regular = monitor_regular or (lambda _m: True)
        self._monitor_unary = monitor_unary
        self._on_end = on_transaction_end
        self._on_start = on_transaction_start
        self._merge_unary = merge_unary
        #: extension: restrict unary instrumentation to accesses inside
        #: specific enclosing methods (see repro.core.static_info)
        self._monitor_unary_site = monitor_unary_site
        self._ids = itertools.count(1)
        #: per-thread current transaction (None between transactions)
        self._current: Dict[str, Transaction] = {}
        #: per-thread most recent transaction, current or finished
        self._latest: Dict[str, Transaction] = {}
        #: per-thread (method, depth) at which the active regular
        #: transaction was started; None when not in an atomic region
        self._regular_frame: Dict[str, tuple[str, int]] = {}
        self.stats = TransactionStats()
        #: all transactions ever created, in creation order (the harness
        #: and PCD-only mode iterate this; GC may mark entries collected)
        self.all_transactions: List[Transaction] = []

    # ------------------------------------------------------------------
    # method events
    # ------------------------------------------------------------------
    def on_method_enter(self, thread: str, method: str, depth: int) -> None:
        """Start a regular transaction at the outermost atomic method."""
        if thread in self._regular_frame:
            return  # already inside an atomic region; nested calls merge
        if not self.spec.is_atomic(method):
            return
        self._regular_frame[thread] = (method, depth)
        monitored = self._monitor_regular(method)
        self._end_current(thread)
        tx = self._start(thread, method, is_unary=False, monitored=monitored)
        if monitored:
            self.stats.regular_transactions += 1
        else:
            self.stats.unmonitored_transactions += 1
        del tx  # started; nothing else to do

    def on_method_exit(self, thread: str, method: str, depth: int) -> None:
        """End the regular transaction at its owning frame's exit."""
        frame = self._regular_frame.get(thread)
        if frame is None:
            return
        if frame == (method, depth):
            del self._regular_frame[thread]
            self._end_current(thread)

    def on_thread_end(self, thread: str) -> None:
        """Close the thread's current transaction, if any."""
        self._regular_frame.pop(thread, None)
        self._end_current(thread)

    def finish_all(self) -> None:
        """Close every still-open transaction (execution end)."""
        for thread in list(self._current):
            self._end_current(thread)

    # ------------------------------------------------------------------
    # access demarcation
    # ------------------------------------------------------------------
    def transaction_for_access(self, event: AccessEvent) -> Optional[Transaction]:
        """Return the transaction this access executes in.

        Returns ``None`` when the access must not be instrumented at
        all (unmonitored regular transaction whose method the first run
        did not implicate, or unary context with unary monitoring off).
        Instrumented accesses are counted for Table 3.
        """
        return self.transaction_for_fields(event.thread_name, event.site)

    def transaction_for_fields(self, thread: str, site) -> Optional[Transaction]:
        """:meth:`transaction_for_access` on unpacked event fields.

        The batched executor's column barrier calls this directly with
        the thread name and interned :class:`~repro.runtime.events.Site`
        so no :class:`AccessEvent` has to be materialized on the fast
        path; only ``site.method`` is consulted (for the unary-site
        filter).
        """
        current = self._current.get(thread)
        if current is not None and not current.is_unary:
            if not current.monitored:
                self.stats.skipped_accesses += 1
                return None
            self.stats.regular_accesses += 1
            return current
        if not self._monitor_unary:
            self.stats.skipped_accesses += 1
            return None
        if self._monitor_unary_site is not None and not self._monitor_unary_site(
            site.method
        ):
            self.stats.skipped_accesses += 1
            return None
        if (
            self._merge_unary
            and current is not None
            and current.is_unary
            and not current.edge_touched
        ):
            # merge into the running unary transaction
            self.stats.unary_accesses += 1
            return current
        # either no current transaction or the unary was interrupted by
        # a cross-thread edge: start a fresh unary transaction
        self._end_current(thread)
        tx = self._start(thread, UNARY_METHOD, is_unary=True, monitored=True)
        self.stats.unary_transactions += 1
        self.stats.unary_accesses += 1
        return tx

    def current_or_latest(self, thread: str) -> Optional[Transaction]:
        """The thread's current transaction, or its most recent one.

        ICD uses this as the source of cross-thread edges when the
        responding thread sits between transactions: the intra-thread
        chain makes an edge from the latest transaction sound.
        """
        current = self._current.get(thread)
        if current is not None:
            return current
        return self._latest.get(thread)

    def end_if_interrupted_unary(self, tx: Transaction) -> None:
        """Eagerly end a unary transaction a cross-thread edge touched.

        An edge-touched unary transaction can never absorb another
        access (merging stops at edges), so it is finished the moment
        the edge lands.  Ending it eagerly matters for memory: a thread
        blocked for a long time (e.g., a main thread joining workers)
        otherwise keeps an *active* unary transaction whose cone pins
        the whole transaction graph.  The responder is at a safe point
        during coordination, so this is the natural place.
        """
        if (
            tx.is_unary
            and not tx.finished
            and self._current.get(tx.thread_name) is tx
        ):
            self._end_current(tx.thread_name)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _start(
        self, thread: str, method: str, is_unary: bool, monitored: bool
    ) -> Transaction:
        tx = Transaction(next(self._ids), thread, method, is_unary, monitored)
        previous = self._latest.get(thread)
        if previous is not None:
            previous.intra_next = tx
            tx.intra_prev = previous
        self._current[thread] = tx
        self._latest[thread] = tx
        self.all_transactions.append(tx)
        if self._on_start is not None:
            self._on_start(tx)
        return tx

    def _end_current(self, thread: str) -> None:
        current = self._current.pop(thread, None)
        if current is None:
            return
        current.finished = True
        if self._on_end is not None and current.monitored:
            self._on_end(current)

    # ------------------------------------------------------------------
    def live_transactions(self) -> List[Transaction]:
        """Currently open transactions (GC roots)."""
        return list(self._current.values())

    def latest_transactions(self) -> List[Transaction]:
        """Most recent transaction per thread (GC roots too: the
        thread's current-transaction reference keeps it alive)."""
        return list(self._latest.values())
