"""Precise cycle detection (PCD) — Section 3.3.

PCD is a sound and precise analysis that identifies dependence cycles
among a set of transactions provided as input: the transactions of one
imprecise SCC detected by ICD, their read/write logs, and the IDG
edges anchored in those logs.  PCD "replays" the corresponding subset
of the execution, tracking the last transaction to write each field
and each thread's last transaction to read it (Figure 5), adding
precise cross-thread edges to a PDG and checking for cycles after
every new edge.  A detected cycle is a precise atomicity violation;
blame assignment identifies the transaction that completed it.

**Replay order.**  ICD provides cross-thread ordering through the edge
marks embedded in the logs: the source mark of every IDG edge must be
replayed before its sink mark.  PCD performs a topological merge of
the component's logs under (a) per-thread program order and (b) those
mark constraints.  Octet's happens-before guarantees make any
linearization of that partial order agree on the relative order of
conflicting accesses; our merge breaks ties with the executor's global
sequence number, which is one such linearization (and lets a property
test verify the agreement claim against the true execution order).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.blame import blamed_nodes
from repro.core.pdg import PDG, PdgEdge
from repro.core.reports import ViolationRecord
from repro.core.rwlog import AccessEntry, EdgeMark
from repro.core.transactions import Transaction
from repro.errors import OutOfMemoryBudget
from repro.obs.registry import publish_stats, recorder as obs_recorder
from repro.runtime.events import AccessKind


@dataclass
class PCDStats:
    """Work counters for the precise analysis."""

    components_processed: int = 0
    transactions_processed: int = 0
    entries_replayed: int = 0
    accesses_replayed: int = 0
    pdg_edges: int = 0
    cycle_checks: int = 0
    cycle_check_visits: int = 0
    #: nodes visited by the PDG engines' reorder/contraction searches
    engine_search_visits: int = 0
    cycles_found: int = 0
    order_fallbacks: int = 0


class PCD:
    """The precise analysis.

    Args:
        memory_budget: optional cap on the number of log entries a
            single component may hold (the paper's PCD runs out of
            memory on long-running transactions — raytracer and
            sunflow9 — which this cap reproduces).
    """

    def __init__(
        self, memory_budget: Optional[int] = None, use_engine: bool = True
    ) -> None:
        self.memory_budget = memory_budget
        #: route each component PDG's cycle checks through the
        #: incremental engine (False = original whole-graph DFS)
        self.use_engine = use_engine
        self.stats = PCDStats()
        self._obs = obs_recorder()
        self._reported_cycles: Set[frozenset] = set()

    # ------------------------------------------------------------------
    def process(self, component: Sequence[Transaction]) -> List[ViolationRecord]:
        """Replay one ICD component; returns precise violations found."""
        obs = self._obs
        if obs.enabled:
            with obs.span(
                "pcd.process", category="pcd", transactions=len(component)
            ):
                return self._process(component)
        return self._process(component)

    def publish_metrics(self) -> None:
        """Publish the accumulated replay counters onto the registry
        (called once per run by :class:`~repro.core.doublechecker.DoubleChecker`)."""
        publish_stats(self._obs, "pcd", self.stats)

    def _process(self, component: Sequence[Transaction]) -> List[ViolationRecord]:
        self.stats.components_processed += 1
        members = [tx for tx in component if tx.log is not None]
        self.stats.transactions_processed += len(members)
        if len(members) < 2:
            return []

        total_entries = sum(len(tx.log) for tx in members)
        if self.memory_budget is not None and total_entries > self.memory_budget:
            raise OutOfMemoryBudget("PCD", total_entries, self.memory_budget)

        merged = self._merge_logs(members)
        return self._replay(merged)

    # ------------------------------------------------------------------
    # topological merge
    # ------------------------------------------------------------------
    def _merge_logs(
        self, members: Sequence[Transaction]
    ) -> List[Tuple[Transaction, AccessEntry]]:
        member_ids = {tx.tx_id for tx in members}
        # edge orders whose both endpoints are in the component: these
        # marks constrain the merge; marks of other edges are inert
        constrained: Set[int] = set()
        for tx in members:
            for edge in tx.out_edges:
                if edge.dst.tx_id in member_ids:
                    constrained.add(edge.order)

        # per-thread streams: a thread's transactions replay in creation
        # order, and each log is already ordered
        by_thread: Dict[str, List[Transaction]] = {}
        for tx in sorted(members, key=lambda t: t.tx_id):
            by_thread.setdefault(tx.thread_name, []).append(tx)
        streams: List[List[Tuple[Transaction, object]]] = []
        for txs in by_thread.values():
            stream: List[Tuple[Transaction, object]] = []
            for tx in txs:
                stream.extend((tx, entry) for entry in tx.log.entries)
            streams.append(stream)

        emitted_sources: Set[int] = set()
        positions = [0] * len(streams)
        merged: List[Tuple[Transaction, AccessEntry]] = []
        total_accesses = sum(
            1
            for s in streams
            for item in s
            if not isinstance(item[1], EdgeMark)
        )

        # K-way merge on a heap of (seq, stream index): every stream is
        # in exactly one place — the heap when its head entry is an
        # access ready to emit, ``parked[order]`` when its head is a
        # sink mark still waiting for that edge's source mark, nowhere
        # once exhausted.  Marks never enter the heap: a mark's seq is
        # the *edge creation* time, which can sit far from the accesses
        # around it in the log — a source mark placed after its
        # transaction ended (or, for edges ICD attributes to a thread's
        # *next* transaction, before the source log's first access)
        # would otherwise hold its whole stream at a bogus heap
        # priority and let genuinely later accesses overtake parked
        # earlier ones, deriving dependence edges against the execution
        # order.  Accesses preceding a source mark in its own log
        # always have seq below the creation seq, and accesses
        # following the sink mark always have seq above it, so emitting
        # source marks the moment they reach a stream head preserves
        # every mark constraint while keeping accesses in true seq
        # order.
        heap: List[Tuple[int, int]] = []
        parked: Dict[int, List[int]] = {}
        heappush = heapq.heappush
        heappop = heapq.heappop
        append_merged = merged.append

        def settle(index: int) -> None:
            # consume marks at the stream head — emit source marks
            # immediately (recursively settling any streams they
            # release), skip satisfied sinks, park on a blocked sink —
            # then enter the heap at the first access entry's seq
            stack = [index]
            while stack:
                i = stack.pop()
                stream = streams[i]
                pos = positions[i]
                length = len(stream)
                while pos < length:
                    entry = stream[pos][1]
                    if not isinstance(entry, EdgeMark):
                        heappush(heap, (entry.seq, i))  # type: ignore[attr-defined]
                        break
                    if entry.is_source:
                        pos += 1
                        order = entry.edge_order
                        emitted_sources.add(order)
                        released = parked.pop(order, None)
                        if released:
                            positions[i] = pos
                            stack.extend(released)
                    elif (
                        entry.edge_order in constrained
                        and entry.edge_order not in emitted_sources
                    ):
                        parked.setdefault(entry.edge_order, []).append(i)
                        break
                    else:
                        pos += 1
                positions[i] = pos

        for i in range(len(streams)):
            settle(i)

        self.stats.entries_replayed += sum(len(s) for s in streams)
        while len(merged) < total_accesses:
            if heap:
                _, index = heappop(heap)
                pos = positions[index]
                append_merged(streams[index][pos])  # type: ignore[arg-type]
                positions[index] = pos + 1
            else:
                # every remaining stream is parked on a sink whose
                # source mark is unreachable; inconsistent anchors
                # should be impossible — fall back to raw sequence
                # order rather than failing the analysis
                self.stats.order_fallbacks += 1
                index = min(
                    (
                        i
                        for i in range(len(streams))
                        if positions[i] < len(streams[i])
                    ),
                    key=lambda i: streams[i][positions[i]][1].seq,  # type: ignore[attr-defined]
                )
                for waiting in parked.values():
                    if index in waiting:
                        waiting.remove(index)
                        break
                positions[index] += 1  # skip the blocked sink mark
            settle(index)
        return merged

    # ------------------------------------------------------------------
    # Figure 5 replay
    # ------------------------------------------------------------------
    def _replay(
        self, merged: List[Tuple[Transaction, AccessEntry]]
    ) -> List[ViolationRecord]:
        last_write: Dict[Tuple[int, str], Transaction] = {}
        last_reads: Dict[Tuple[int, str], Dict[str, Transaction]] = {}
        tx_by_id: Dict[int, Transaction] = {}
        #: per-thread most recent transaction seen during replay, for
        #: the intra-thread (program-order) edges — cycles can mix
        #: program-order and dependence edges (see repro.core.pdg)
        chain: Dict[str, Transaction] = {}
        pdg = PDG(use_engine=self.use_engine)
        violations: List[ViolationRecord] = []
        stats = self.stats
        add_edge = pdg.add_edge
        _READ = AccessKind.READ

        stats.accesses_replayed += len(merged)
        for tx, entry in merged:
            if tx.tx_id not in tx_by_id:
                previous = chain.get(tx.thread_name)
                if previous is not None and previous is not tx:
                    # created at tx start; can never close a cycle
                    add_edge(previous.tx_id, tx.tx_id)
                chain[tx.thread_name] = tx
            tx_by_id[tx.tx_id] = tx
            address = entry.address
            new_edges: List[PdgEdge] = []

            writer = last_write.get(address)
            if writer is not None and writer.thread_name != tx.thread_name:
                edge = add_edge(writer.tx_id, tx.tx_id)
                if edge is not None:
                    new_edges.append(edge)

            if entry.kind is _READ:
                readers = last_reads.get(address)
                if readers is None:
                    readers = last_reads[address] = {}
                readers[tx.thread_name] = tx
            else:
                readers = last_reads.get(address)
                if readers:
                    for thread_name, reader in readers.items():
                        if thread_name != tx.thread_name:
                            edge = add_edge(reader.tx_id, tx.tx_id)
                            if edge is not None:
                                new_edges.append(edge)
                    readers.clear()
                last_write[address] = tx

            for edge in new_edges:
                stats.pdg_edges += 1
                cycle = pdg.find_cycle_through(edge)
                stats.cycle_checks += 1
                if cycle is None:
                    continue
                record = self._report(cycle, tx_by_id)
                if record is not None:
                    violations.append(record)
        self.stats.cycle_check_visits += pdg.nodes_visited
        if pdg.engine is not None:
            self.stats.engine_search_visits += pdg.engine.stats.search_visits
        return violations

    # ------------------------------------------------------------------
    def _report(
        self, cycle: List[PdgEdge], tx_by_id: Dict[int, Transaction]
    ) -> Optional[ViolationRecord]:
        key = frozenset((e.src, e.dst) for e in cycle)
        if key in self._reported_cycles:
            return None
        self._reported_cycles.add(key)
        self.stats.cycles_found += 1
        blamed = blamed_nodes(cycle)
        # prefer blaming a regular transaction: unary transactions are
        # not part of the atomicity specification, so blaming one gives
        # iterative refinement nothing to remove
        regular = [b for b in blamed if not tx_by_id[b].is_unary]
        blamed_id = (regular or blamed)[0]
        blamed_tx = tx_by_id[blamed_id]
        cycle_ids = tuple(e.src for e in cycle)
        return ViolationRecord(
            blamed_method=blamed_tx.method,
            blamed_tx_id=blamed_id,
            thread_name=blamed_tx.thread_name,
            cycle_methods=tuple(tx_by_id[i].method for i in cycle_ids),
            cycle_tx_ids=cycle_ids,
            detector="pcd",
        )
