"""DoubleChecker's core: the paper's primary contribution.

The two cooperating analyses live here —
:class:`~repro.core.icd.ICD` (imprecise cycle detection, built on
Octet) and :class:`~repro.core.pcd.PCD` (precise cycle detection over
read/write logs) — together with the transaction model they share and
the :class:`~repro.core.doublechecker.DoubleChecker` front end that
orchestrates single-run and multi-run modes.
"""

from repro.core.doublechecker import (
    DoubleChecker,
    FirstRunResult,
    MultiRunResult,
    SingleRunResult,
)
from repro.core.icd import ICD
from repro.core.pcd import PCD
from repro.core.reports import ViolationRecord, ViolationSummary
from repro.core.static_info import StaticTransactionInfo
from repro.core.transactions import Transaction, TransactionManager

__all__ = [
    "DoubleChecker",
    "FirstRunResult",
    "ICD",
    "MultiRunResult",
    "PCD",
    "SingleRunResult",
    "StaticTransactionInfo",
    "Transaction",
    "TransactionManager",
    "ViolationRecord",
    "ViolationSummary",
]
