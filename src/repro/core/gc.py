"""Transaction-graph garbage collection.

The paper relies on the JVM's garbage collector: "Transactions and
their read/write logs are regular Java objects ... so garbage
collection naturally collects them as they become transitively
unreachable from each thread's current transaction reference"
(Section 4).  We reproduce the effect with an explicit mark-sweep over
the transaction graph.

**Liveness rule.**  A finished transaction ``O`` can still matter only
if it can appear in a *future* IDG cycle.  Edges into a transaction are
only ever added while it is its thread's current (or latest)
transaction, and the destination of every future edge is a transaction
that is active at that time.  A future cycle must therefore enter its
old members through a forward path that begins at a transaction that
can still *be entered* — each thread's current/latest transaction (to
whose intra-chain all future transactions attach).  Hence:
**alive = forward-reachable from the per-thread latest transactions**
(over cross-thread out-edges and intra-thread successor links).

ICD's ``T.lastRdEx`` and ``gLastRdSh`` references can still become
edge *sources*, so those transactions are **pinned** — kept alive as
bare nodes — but *not traversed*: a pinned transaction that is outside
the latest-cone can never be re-entered, so nothing it references can
join a future cycle.  (Traversing pinned roots would pin every
transaction newer than the stalest reference via its intra chain,
defeating collection — the bug this distinction fixes.)

Everything else is swept, together with its read/write log.  The rule
is exercised in ``tests/core/test_gc.py`` and by end-to-end tests that
compare violation detection with and without collection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set

from repro.core.transactions import Transaction, TransactionManager


@dataclass
class GcStats:
    """Collection statistics (memory-footprint proxies)."""

    collections: int = 0
    transactions_collected: int = 0
    log_entries_collected: int = 0
    peak_live_transactions: int = 0
    peak_live_log_entries: int = 0


class TransactionCollector:
    """Mark-sweep collector for a checker's transaction graph."""

    def __init__(self, manager: TransactionManager) -> None:
        self._manager = manager
        self.stats = GcStats()
        #: log entries swept by the most recent :meth:`collect` — lets
        #: clients that count appends incrementally (ICD) subtract the
        #: swept entries instead of re-summing every live log
        self.last_swept_log_entries = 0

    # ------------------------------------------------------------------
    def collect(self, pinned: Iterable[Transaction] = ()) -> int:
        """Collect dead transactions; returns how many were swept.

        Traversal roots are the *unfinished* (current) transactions:
        in-edges only ever attach to active transactions, so any future
        cycle's members lie in the static forward cone of some
        currently-unfinished transaction.  The per-thread latest
        (possibly finished) transactions are pinned as future edge
        sources but not traversed.

        Args:
            pinned: transactions kept alive as bare nodes without cone
                traversal (ICD passes ``lastRdEx`` values and
                ``gLastRdSh`` — still potential edge sources; Velodrome's
                field metadata is *weak* and deliberately not pinned,
                per the paper).
        """
        roots: List[Transaction] = list(self._manager.live_transactions())
        extra_pins: List[Transaction] = list(self._manager.latest_transactions())

        alive: Set[Transaction] = set()
        frontier = [r for r in roots if not r.collected]
        while frontier:
            tx = frontier.pop()
            if tx in alive:
                continue
            alive.add(tx)
            for edge in tx.out_edges:
                if edge.dst not in alive:
                    frontier.append(edge.dst)
            if tx.intra_next is not None and tx.intra_next not in alive:
                frontier.append(tx.intra_next)
        alive.update(t for t in extra_pins if not t.collected)
        alive.update(t for t in pinned if t is not None and not t.collected)

        survivors: List[Transaction] = []
        swept = 0
        log_entries = 0
        for tx in self._manager.all_transactions:
            if tx in alive:
                survivors.append(tx)
                continue
            swept += 1
            tx.collected = True
            if tx.log is not None:
                log_entries += len(tx.log)
                tx.log = None
            self._unlink(tx, alive)
        self._manager.all_transactions = survivors

        self.stats.collections += 1
        self.stats.transactions_collected += swept
        self.stats.log_entries_collected += log_entries
        self.last_swept_log_entries = log_entries
        return swept

    @staticmethod
    def _unlink(tx: Transaction, alive: Set[Transaction]) -> None:
        """Remove references between the dead transaction and survivors."""
        for edge in tx.out_edges:
            if edge.dst in alive:
                edge.dst.in_edges = [e for e in edge.dst.in_edges if e is not edge]
        for edge in tx.in_edges:
            if edge.src in alive:
                edge.src.out_edges = [e for e in edge.src.out_edges if e is not edge]
        if tx.intra_next is not None and tx.intra_next in alive:
            tx.intra_next.intra_prev = None
        if tx.intra_prev is not None and tx.intra_prev in alive:
            tx.intra_prev.intra_next = None
        tx.out_edges = []
        tx.in_edges = []
        tx.intra_next = None
        tx.intra_prev = None

    # ------------------------------------------------------------------
    def live_transaction_count(self) -> int:
        return len(self._manager.all_transactions)

    def live_log_entries(self) -> int:
        return sum(
            len(tx.log) for tx in self._manager.all_transactions if tx.log is not None
        )

    def note_peak(self, live_log_entries: int | None = None) -> None:
        """Record peak footprint (harness calls this periodically).

        ``live_log_entries`` lets a caller that already tracks the live
        entry count incrementally (ICD bumps a counter per append and
        subtracts :attr:`last_swept_log_entries` per collection) skip
        the O(live transactions) :meth:`live_log_entries` re-scan.
        """
        txs = self.live_transaction_count()
        logs = (
            self.live_log_entries() if live_log_entries is None else live_log_entries
        )
        self.stats.peak_live_transactions = max(
            self.stats.peak_live_transactions, txs
        )
        self.stats.peak_live_log_entries = max(
            self.stats.peak_live_log_entries, logs
        )
