"""Transaction-graph garbage collection.

The paper relies on the JVM's garbage collector: "Transactions and
their read/write logs are regular Java objects ... so garbage
collection naturally collects them as they become transitively
unreachable from each thread's current transaction reference"
(Section 4).  We reproduce the effect with an explicit mark-sweep over
the transaction graph.

**Liveness rule.**  A finished transaction ``O`` can still matter only
if it can appear in a *future* IDG cycle.  Edges into a transaction are
only ever added while it is its thread's current (or latest)
transaction, and the destination of every future edge is a transaction
that is active at that time.  A future cycle must therefore enter its
old members through a forward path that begins at a transaction that
can still *be entered* — each thread's current/latest transaction (to
whose intra-chain all future transactions attach).  Hence:
**alive = forward-reachable from the per-thread latest transactions**
(over cross-thread out-edges and intra-thread successor links).

ICD's ``T.lastRdEx`` and ``gLastRdSh`` references can still become
edge *sources*, so those transactions are **pinned** — kept alive as
bare nodes — but *not traversed*: a pinned transaction that is outside
the latest-cone can never be re-entered, so nothing it references can
join a future cycle.  (Traversing pinned roots would pin every
transaction newer than the stalest reference via its intra chain,
defeating collection — the bug this distinction fixes.)

Everything else is swept, together with its read/write log.  The rule
is exercised in ``tests/core/test_gc.py`` and by end-to-end tests that
compare violation detection with and without collection.

**Incremental marking.**  Re-tracing every root's full forward cone on
every collection is the dominant cost on workloads where one very long
transaction anchors a huge, still-growing history (the hubstress
warden): the same tens of thousands of nodes are re-marked every 64
transaction ends.  When the owning analysis reports every link it adds
(:meth:`TransactionCollector.note_link`), the collector instead keeps a
*persistent* alive set ``S``:

* ``S`` is the exact forward closure of a set of *cached roots*, all of
  which are still-unfinished transactions.  A root is promoted into the
  cache (and its cone traced once, into ``S``) after it has been a root
  for two consecutive collections — churning short transactions never
  pay for a persistent trace.
* The graph only ever *grows* between collections (links are added;
  nodes are unlinked only when swept, and then only dead↔alive links
  are touched), so ``S`` stays closed by replaying the reported links:
  a link from inside ``S`` to a node outside it extends ``S`` by that
  node's current forward cone.  Links from outside ``S`` are discarded
  — if their source is promoted later, the promotion walks the current
  graph and picks the target up then.
* The moment any cached root finishes, ``S`` is invalidated wholesale
  (a generation-number bump; nodes are lazily unmarked), because a
  finished root no longer keeps its cone alive.

Roots not covered by ``S`` are traced *ephemerally* per collection,
with the walk short-circuiting at the ``S`` boundary.  Alive =
``S`` ∪ ephemeral cones ∪ pins — exactly the legacy mark's result,
because the cached roots are a subset of the current roots and cone
union is monotone.  Membership is recorded as generation numbers on
the transaction (``gc_pmark``/``gc_emark``), so invalidation is O(1)
and no per-collect set is allocated.  Exact alive counts let the sweep
be skipped entirely when nothing died.  The mode is **opt-in**
(:attr:`TransactionCollector.incremental`): ICD enables it and reports
its links; Velodrome keeps the legacy full mark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from repro.core.transactions import Transaction, TransactionManager


@dataclass
class GcStats:
    """Collection statistics (memory-footprint proxies)."""

    collections: int = 0
    transactions_collected: int = 0
    log_entries_collected: int = 0
    peak_live_transactions: int = 0
    peak_live_log_entries: int = 0


class TransactionCollector:
    """Mark-sweep collector for a checker's transaction graph."""

    def __init__(self, manager: TransactionManager) -> None:
        self._manager = manager
        self.stats = GcStats()
        #: log entries swept by the most recent :meth:`collect` — lets
        #: clients that count appends incrementally (ICD) subtract the
        #: swept entries instead of re-summing every live log
        self.last_swept_log_entries = 0
        #: tx ids swept by the most recent :meth:`collect`, in
        #: population order — lets clients retire exactly the collected
        #: nodes (e.g. from the incremental engine) without re-scanning
        #: the whole pre-collect population for ``collected`` flags
        self.last_swept_ids: List[int] = []
        #: incremental marking (see module docstring): only safe when
        #: the owning analysis reports **every** link it adds via
        #: :meth:`note_link`; ICD opts in, Velodrome does not
        self.incremental = False
        self._pending_links: List[tuple] = []
        self._cached_roots: List[Transaction] = []
        self._prev_root_ids: Set[int] = set()
        # generations start at 1: a fresh transaction's mark words are
        # 0, which must never compare equal to a live generation
        self._pgen = 1  # persistent alive-set generation
        self._egen = 0  # per-collect ephemeral generation (pre-increment)
        self._persistent_count = 0

    # ------------------------------------------------------------------
    def note_link(self, src: Optional[Transaction], dst: Transaction) -> None:
        """Record a graph link (cross edge or intra successor).

        Cheap no-op unless :attr:`incremental` is set.  The pending
        links are replayed at the next collection to keep the
        persistent alive set forward-closed.
        """
        if self.incremental and src is not None:
            self._pending_links.append((src, dst))

    # ------------------------------------------------------------------
    def collect(self, pinned: Iterable[Transaction] = ()) -> int:
        """Collect dead transactions; returns how many were swept.

        Traversal roots are the *unfinished* (current) transactions:
        in-edges only ever attach to active transactions, so any future
        cycle's members lie in the static forward cone of some
        currently-unfinished transaction.  The per-thread latest
        (possibly finished) transactions are pinned as future edge
        sources but not traversed.

        Args:
            pinned: transactions kept alive as bare nodes without cone
                traversal (ICD passes ``lastRdEx`` values and
                ``gLastRdSh`` — still potential edge sources; Velodrome's
                field metadata is *weak* and deliberately not pinned,
                per the paper).
        """
        if self.incremental:
            return self._collect_incremental(pinned)
        roots: List[Transaction] = list(self._manager.live_transactions())
        extra_pins: List[Transaction] = list(self._manager.latest_transactions())

        alive: Set[Transaction] = set()
        frontier = [r for r in roots if not r.collected]
        while frontier:
            tx = frontier.pop()
            if tx in alive:
                continue
            alive.add(tx)
            for edge in tx.out_edges:
                if edge.dst not in alive:
                    frontier.append(edge.dst)
            if tx.intra_next is not None and tx.intra_next not in alive:
                frontier.append(tx.intra_next)
        alive.update(t for t in extra_pins if not t.collected)
        alive.update(t for t in pinned if t is not None and not t.collected)

        survivors: List[Transaction] = []
        swept = 0
        log_entries = 0
        swept_ids: List[int] = []
        for tx in self._manager.all_transactions:
            if tx in alive:
                survivors.append(tx)
                continue
            swept += 1
            swept_ids.append(tx.tx_id)
            tx.collected = True
            if tx.log is not None:
                log_entries += len(tx.log)
                tx.log = None
            self._unlink(tx, alive)
        self._manager.all_transactions = survivors

        self.stats.collections += 1
        self.stats.transactions_collected += swept
        self.stats.log_entries_collected += log_entries
        self.last_swept_log_entries = log_entries
        self.last_swept_ids = swept_ids
        return swept

    # ------------------------------------------------------------------
    # incremental marking (opt-in; byte-identical results to the legacy
    # full mark — see module docstring for the invariants)
    # ------------------------------------------------------------------
    def _collect_incremental(self, pinned: Iterable[Transaction]) -> int:
        manager = self._manager
        roots = manager.live_transactions()
        extra_pins = manager.latest_transactions()
        self._egen += 1
        egen = self._egen

        # 1. a cached root that finished no longer keeps its cone alive:
        #    drop the whole persistent set (lazy unmark via generation)
        cached = self._cached_roots
        if cached and any(r.finished for r in cached):
            self._pgen += 1
            self._persistent_count = 0
            self._cached_roots = cached = []
            self._pending_links.clear()
        pgen = self._pgen

        # 2. replay links added since the last collect to keep S closed
        pending = self._pending_links
        if pending:
            for src, dst in pending:
                if src.gc_pmark == pgen and dst.gc_pmark != pgen:
                    self._mark_persistent(dst, pgen)
            pending.clear()

        # 3. roots already inside S are covered (S is forward-closed);
        #    roots that were also roots last collect are promoted into
        #    the cache; the rest are traced ephemerally below
        prev_ids = self._prev_root_ids
        volatile: List[Transaction] = []
        for root in roots:
            if root.gc_pmark == pgen:
                continue
            if root.tx_id in prev_ids:
                self._mark_persistent(root, pgen)
                cached.append(root)
            else:
                volatile.append(root)

        ephemeral = 0
        for root in volatile:
            ephemeral += self._mark_ephemeral(root, pgen, egen)

        # 4. pins are kept as bare nodes, never traversed
        for tx in extra_pins:
            if not tx.collected and tx.gc_pmark != pgen and tx.gc_emark != egen:
                tx.gc_emark = egen
                ephemeral += 1
        for tx in pinned:
            if (
                tx is not None
                and not tx.collected
                and tx.gc_pmark != pgen
                and tx.gc_emark != egen
            ):
                tx.gc_emark = egen
                ephemeral += 1

        self._prev_root_ids = {root.tx_id for root in roots}

        # 5. sweep — skipped entirely when the exact alive count says
        #    nothing died (the common case between violation bursts)
        population = manager.all_transactions
        swept = len(population) - self._persistent_count - ephemeral
        log_entries = 0
        swept_ids: List[int] = []
        if swept:
            survivors: List[Transaction] = []
            for tx in population:
                if tx.gc_pmark == pgen or tx.gc_emark == egen:
                    survivors.append(tx)
                    continue
                swept_ids.append(tx.tx_id)
                tx.collected = True
                if tx.log is not None:
                    log_entries += len(tx.log)
                    tx.log = None
                self._unlink_marked(tx, pgen, egen)
            manager.all_transactions = survivors

        self.stats.collections += 1
        self.stats.transactions_collected += swept
        self.stats.log_entries_collected += log_entries
        self.last_swept_log_entries = log_entries
        self.last_swept_ids = swept_ids
        return swept

    def _mark_persistent(self, root: Transaction, pgen: int) -> None:
        """Mark ``root``'s forward cone into the persistent set,
        keeping the exact persistent population count current."""
        marked = 0
        frontier = [root]
        while frontier:
            tx = frontier.pop()
            if tx.gc_pmark == pgen:
                continue
            tx.gc_pmark = pgen
            marked += 1
            for edge in tx.out_edges:
                if edge.dst.gc_pmark != pgen:
                    frontier.append(edge.dst)
            nxt = tx.intra_next
            if nxt is not None and nxt.gc_pmark != pgen:
                frontier.append(nxt)
        self._persistent_count += marked

    def _mark_ephemeral(self, root: Transaction, pgen: int, egen: int) -> int:
        """Mark a volatile root's cone, stopping at the S boundary."""
        marked = 0
        frontier = [root]
        while frontier:
            tx = frontier.pop()
            if tx.gc_emark == egen or tx.gc_pmark == pgen:
                continue
            tx.gc_emark = egen
            marked += 1
            for edge in tx.out_edges:
                dst = edge.dst
                if dst.gc_emark != egen and dst.gc_pmark != pgen:
                    frontier.append(dst)
            nxt = tx.intra_next
            if nxt is not None and nxt.gc_emark != egen and nxt.gc_pmark != pgen:
                frontier.append(nxt)
        return marked

    @staticmethod
    def _unlink_marked(tx: Transaction, pgen: int, egen: int) -> None:
        """:meth:`_unlink` with mark-word liveness tests."""
        for edge in tx.out_edges:
            dst = edge.dst
            if dst.gc_pmark == pgen or dst.gc_emark == egen:
                dst.in_edges = [e for e in dst.in_edges if e is not edge]
        for edge in tx.in_edges:
            src = edge.src
            if src.gc_pmark == pgen or src.gc_emark == egen:
                src.out_edges = [e for e in src.out_edges if e is not edge]
        nxt = tx.intra_next
        if nxt is not None and (nxt.gc_pmark == pgen or nxt.gc_emark == egen):
            nxt.intra_prev = None
        prev = tx.intra_prev
        if prev is not None and (prev.gc_pmark == pgen or prev.gc_emark == egen):
            prev.intra_next = None
        tx.out_edges = []
        tx.in_edges = []
        tx.intra_next = None
        tx.intra_prev = None

    @staticmethod
    def _unlink(tx: Transaction, alive: Set[Transaction]) -> None:
        """Remove references between the dead transaction and survivors."""
        for edge in tx.out_edges:
            if edge.dst in alive:
                edge.dst.in_edges = [e for e in edge.dst.in_edges if e is not edge]
        for edge in tx.in_edges:
            if edge.src in alive:
                edge.src.out_edges = [e for e in edge.src.out_edges if e is not edge]
        if tx.intra_next is not None and tx.intra_next in alive:
            tx.intra_next.intra_prev = None
        if tx.intra_prev is not None and tx.intra_prev in alive:
            tx.intra_prev.intra_next = None
        tx.out_edges = []
        tx.in_edges = []
        tx.intra_next = None
        tx.intra_prev = None

    # ------------------------------------------------------------------
    def live_transaction_count(self) -> int:
        return len(self._manager.all_transactions)

    def live_log_entries(self) -> int:
        return sum(
            len(tx.log) for tx in self._manager.all_transactions if tx.log is not None
        )

    def note_peak(self, live_log_entries: int | None = None) -> None:
        """Record peak footprint (harness calls this periodically).

        ``live_log_entries`` lets a caller that already tracks the live
        entry count incrementally (ICD bumps a counter per append and
        subtracts :attr:`last_swept_log_entries` per collection) skip
        the O(live transactions) :meth:`live_log_entries` re-scan.
        """
        txs = self.live_transaction_count()
        logs = (
            self.live_log_entries() if live_log_entries is None else live_log_entries
        )
        self.stats.peak_live_transactions = max(
            self.stats.peak_live_transactions, txs
        )
        self.stats.peak_live_log_entries = max(
            self.stats.peak_live_log_entries, logs
        )
