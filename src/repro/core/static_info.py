"""Static transaction information passed between multi-run mode's runs.

The first run identifies all regular (non-unary) transactions involved
in imprecise cycles *by their static starting locations* (method
names), plus a single boolean recording whether *any* unary transaction
was involved in any cycle — identifying unary transactions precisely
would require recording the program location of every
non-transactional access (Section 3.1).  The second run instruments
only the identified regular transactions, and instruments
non-transactional accesses iff the boolean is set.

**Extension (the paper's future-work direction).**  Section 5.3 closes
with: "A promising direction for future work is to devise an effective
way for the first run to more precisely communicate potentially
imprecise cycles to the second run."  This reproduction implements one
such refinement: when the first run is asked to *track unary sites*,
it records the enclosing method of each access an in-cycle unary
transaction performed (a bounded set of method names — far cheaper
than per-access locations) and ships them as :attr:`unary_methods`.
A second run using ``selective_unary`` then instruments only
non-transactional accesses occurring inside those methods, instead of
all of them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set

from repro.core.transactions import Transaction


@dataclass(frozen=True)
class StaticTransactionInfo:
    """The first run's product: static methods + unary information."""

    methods: FrozenSet[str]
    any_unary: bool
    #: extension: enclosing methods of in-cycle unary accesses (empty
    #: unless the first run tracked unary sites)
    unary_methods: FrozenSet[str] = field(default=frozenset())

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "StaticTransactionInfo":
        return cls(frozenset(), False)

    @classmethod
    def from_components(
        cls,
        components: Iterable[Sequence[Transaction]],
        unary_sites: Optional[Dict[int, Set[str]]] = None,
    ) -> "StaticTransactionInfo":
        """Summarize the SCCs one ICD-only run detected.

        ``unary_sites`` maps unary transaction ids to the enclosing
        methods of their accesses (the tracking extension).
        """
        methods = set()
        unary_methods: Set[str] = set()
        any_unary = False
        for component in components:
            for tx in component:
                if tx.is_unary:
                    any_unary = True
                    if unary_sites is not None:
                        unary_methods |= unary_sites.get(tx.tx_id, set())
                else:
                    methods.add(tx.method)
        return cls(frozenset(methods), any_unary, frozenset(unary_methods))

    # ------------------------------------------------------------------
    def union(self, other: "StaticTransactionInfo") -> "StaticTransactionInfo":
        """Combine information from multiple first runs (Section 5.1:
        the second run takes the union of the transactions reported
        across 10 first-run trials)."""
        return StaticTransactionInfo(
            self.methods | other.methods,
            self.any_unary or other.any_unary,
            self.unary_methods | other.unary_methods,
        )

    @classmethod
    def union_all(
        cls, infos: Iterable["StaticTransactionInfo"]
    ) -> "StaticTransactionInfo":
        combined = cls.empty()
        for info in infos:
            combined = combined.union(info)
        return combined

    # ------------------------------------------------------------------
    def monitors_method(self, method: str) -> bool:
        return method in self.methods

    def is_empty(self) -> bool:
        return not self.methods and not self.any_unary

    # ------------------------------------------------------------------
    # persistence: multi-run mode hands information between *processes*
    # in a deployment setting, so the info is serializable
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "methods": sorted(self.methods),
                "any_unary": self.any_unary,
                "unary_methods": sorted(self.unary_methods),
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "StaticTransactionInfo":
        data = json.loads(text)
        return cls(
            frozenset(data["methods"]),
            bool(data["any_unary"]),
            frozenset(data.get("unary_methods", ())),
        )
