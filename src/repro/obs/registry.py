"""The metrics registry: counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` holds every metric a process (or one
experiment cell) records.  The design goals, in order:

1. **Disabled telemetry is free.**  Components capture the active
   recorder once at construction (``self._obs = recorder()``); when
   telemetry is off that recorder is the :data:`NOOP` null object, so
   a hot loop pays one attribute load to discover ``enabled`` is false
   and skips all instrumentation.  Analyses additionally batch their
   hot-path counters in plain dataclasses (``ICDStats`` etc.) and
   publish them once at execution end — the per-event cost of
   telemetry is zero in every mode.
2. **Deterministic aggregation.**  Counter values are derived from the
   analyzed execution, never from wall-clock time, so merging worker
   snapshots in submission order yields identical counters for any
   ``--jobs`` count.  Wall-clock data lives in histograms and span
   events only.
3. **Picklable snapshots.**  :meth:`MetricsRegistry.snapshot` returns
   plain dicts/lists so :class:`~repro.harness.parallel.CellPool`
   workers can ship their telemetry back to the parent process.

Modes (the CLI's ``--obs`` flag):

* ``off`` — the null recorder; nothing is collected.
* ``counters`` — counters, gauges, and duration histograms.
* ``full`` — everything above plus structured span events (the input
  to the Chrome-trace exporter).
"""

from __future__ import annotations

import dataclasses
import os
import time
import uuid
from typing import Any, Dict, Iterable, List, Optional, Tuple

MODE_OFF = "off"
MODE_COUNTERS = "counters"
MODE_FULL = "full"
MODES = (MODE_OFF, MODE_COUNTERS, MODE_FULL)

#: default histogram bucket upper bounds for durations, in seconds
#: (fixed at registry creation so snapshots always merge bucket-wise)
DEFAULT_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0,
)


class Histogram:
    """Fixed-bucket histogram; bucket ``i`` counts values ``<= bounds[i]``
    (the final overflow bucket counts the rest)."""

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge_dict(self, data: Dict[str, Any]) -> None:
        if tuple(data["bounds"]) != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(data["counts"]):
            self.counts[i] += c
        self.count += data["count"]
        self.total += data["total"]
        for key, pick in (("min", min), ("max", max)):
            other = data.get(key)
            if other is None:
                continue
            mine = getattr(self, key)
            setattr(self, key, other if mine is None else pick(mine, other))


class NoopSpan:
    """Null context manager returned by the null recorder."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NOOP_SPAN = NoopSpan()


class NoopRecorder:
    """Null-object recorder: the interface of :class:`MetricsRegistry`
    with every operation a no-op.  Installed globally when telemetry is
    off, so instrumented code never needs a None check — one attribute
    load of :attr:`enabled` is the whole cost of disabled telemetry."""

    enabled = False
    mode = MODE_OFF
    events: Tuple = ()

    def inc(self, name: str, value: int = 1) -> None:
        return None

    def gauge_set(self, name: str, value: float) -> None:
        return None

    def gauge_max(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def emit_event(self, name: str, category: str, ts: float, dur: float,
                   args: Optional[Dict[str, Any]] = None) -> None:
        return None

    def emit_flow(self, name: str, ts: float, flow_id: int,
                  side: str) -> None:
        return None

    def set_label(self, label: str) -> None:
        return None

    def span(self, name: str, category: str = "phase",
             **fields: Any) -> NoopSpan:
        return _NOOP_SPAN

    def snapshot(self) -> Dict[str, Any]:
        return {"mode": MODE_OFF, "counters": {}, "gauges": {},
                "histograms": {}, "events": []}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        return None


#: the process-wide null recorder
NOOP = NoopRecorder()


class MetricsRegistry:
    """A live metrics store for one process or experiment cell.

    ``epoch`` pins the perf_counter origin event timestamps are taken
    against; child processes of a distributed run (CellPool workers,
    shard processes) receive the run's epoch so every process's events
    land on **one** shared timeline (see :mod:`repro.obs.wire`).
    ``trace_id`` identifies the run the registry belongs to; children
    inherit it so a merged trace is self-describing.  ``label`` names
    this process's track in the exported trace.
    """

    enabled = True

    def __init__(self, mode: str = MODE_COUNTERS, *,
                 epoch: Optional[float] = None,
                 trace_id: Optional[str] = None,
                 label: Optional[str] = None) -> None:
        if mode not in (MODE_COUNTERS, MODE_FULL):
            raise ValueError(
                f"registry mode must be one of {(MODE_COUNTERS, MODE_FULL)}, "
                f"got {mode!r} (use NOOP for {MODE_OFF!r})"
            )
        self.mode = mode
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: structured span events (``full`` mode only); each is a plain
        #: dict with the Chrome trace-event fields (name/cat/ts/dur/pid)
        self.events: List[Dict[str, Any]] = []
        #: perf_counter origin: event timestamps are relative to this,
        #: so every process's trace starts near zero
        self.epoch = time.perf_counter() if epoch is None else epoch
        self.pid = os.getpid()
        #: run identity stamped into exported traces/metrics
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        #: pid -> human-readable track name for the trace exporter
        self.labels: Dict[int, str] = {}
        if label:
            self.labels[self.pid] = label

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge_set(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def emit_event(self, name: str, category: str, ts: float, dur: float,
                   args: Optional[Dict[str, Any]] = None) -> None:
        """Record one completed span (``full`` mode only).

        ``ts`` is seconds since :attr:`epoch`, ``dur`` in seconds; the
        Chrome-trace exporter converts to microseconds.
        """
        if self.mode != MODE_FULL:
            return
        event: Dict[str, Any] = {
            "name": name, "cat": category, "ts": ts, "dur": dur,
            "pid": self.pid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def emit_flow(self, name: str, ts: float, flow_id: int,
                  side: str) -> None:
        """Record one end of a cross-process flow arrow (``full`` mode).

        ``side`` is ``"s"`` (producer) or ``"f"`` (consumer); the two
        ends bind by ``(name, flow_id)``.  The Chrome-trace exporter
        turns these into trace-event flow phases so e.g. a chunk's
        send on the coordinator visually connects to its replay on the
        analysis shard.
        """
        if self.mode != MODE_FULL:
            return
        self.events.append({
            "name": name, "cat": "flow", "ph": side, "ts": ts,
            "id": flow_id, "pid": self.pid,
        })

    def set_label(self, label: str) -> None:
        """Name this process's track in the exported trace."""
        self.labels.setdefault(self.pid, label)

    def span(self, name: str, category: str = "phase", **fields: Any):
        """A timed span over this registry (see :mod:`repro.obs.spans`)."""
        from repro.obs.spans import Span

        return Span(self, name, category=category, args=fields or None)

    # ------------------------------------------------------------------
    # snapshots and merging
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Picklable copy of every metric, deterministically ordered."""
        return {
            "mode": self.mode,
            "trace_id": self.trace_id,
            "labels": dict(self.labels),
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict()
                for k in sorted(self.histograms)
            },
            "events": list(self.events),
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a snapshot in: counters/histograms add, gauges take the
        max, events append.  Merging worker snapshots in submission
        order therefore reproduces the serial counters exactly."""
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge_max(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram(
                    tuple(data["bounds"])
                )
            histogram.merge_dict(data)
        for pid, label in snapshot.get("labels", {}).items():
            self.labels.setdefault(int(pid), label)
        if self.mode == MODE_FULL:
            self.events.extend(snapshot.get("events", []))


# ----------------------------------------------------------------------
# the process-global active recorder
# ----------------------------------------------------------------------
_active: Any = NOOP


def recorder() -> Any:
    """The active recorder (a :class:`MetricsRegistry` or :data:`NOOP`).

    Instrumented components capture this once at construction time, so
    a cell's components all record into the registry that was active
    when the cell started.
    """
    return _active


def use_registry(registry: Any) -> Any:
    """Install ``registry`` (or :data:`NOOP`) as the active recorder;
    returns the previous one so callers can restore it."""
    global _active
    previous = _active
    _active = registry if registry is not None else NOOP
    return previous


def configure(mode: str) -> Any:
    """Install a fresh recorder for ``mode`` and return it.

    ``"off"`` installs :data:`NOOP`; ``"counters"``/``"full"`` install
    a new :class:`MetricsRegistry`.
    """
    if mode not in MODES:
        raise ValueError(f"obs mode must be one of {MODES}, got {mode!r}")
    registry = NOOP if mode == MODE_OFF else MetricsRegistry(mode)
    use_registry(registry)
    return registry


# ----------------------------------------------------------------------
# dataclass publication
# ----------------------------------------------------------------------
def publish_stats(target: Any, prefix: str, stats: Any,
                  gauges: Iterable[str] = ()) -> None:
    """Publish a ``*Stats`` dataclass onto the registry as counters.

    Every integer field becomes ``<prefix>.<field>``; integer-valued
    dict fields fan out to ``<prefix>.<field>.<key>``.  Field names in
    ``gauges`` (peaks and other high-water marks) become max-merged
    gauges instead.  Non-numeric fields — including linked nested stats
    objects — are skipped, so analyses can keep their existing
    dataclasses as hot-path accumulators and publish them once at
    execution end.
    """
    if not target.enabled:
        return
    gauge_names = set(gauges)
    for field in dataclasses.fields(stats):
        value = getattr(stats, field.name)
        name = f"{prefix}.{field.name}"
        if isinstance(value, bool):
            continue
        if isinstance(value, int):
            if field.name in gauge_names:
                target.gauge_max(name, value)
            else:
                target.inc(name, value)
        elif isinstance(value, dict):
            for key in sorted(value):
                entry = value[key]
                if isinstance(entry, int) and not isinstance(entry, bool):
                    target.inc(f"{name}.{key}", entry)


__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "MODE_COUNTERS",
    "MODE_FULL",
    "MODE_OFF",
    "MODES",
    "NOOP",
    "NoopRecorder",
    "NoopSpan",
    "configure",
    "publish_stats",
    "recorder",
    "use_registry",
]
