"""``repro obs analyze``: critical-path analysis of merged traces.

Reads a merged Chrome trace (``--trace-out``) and optionally the
matching metrics JSON (``--metrics-out``) and answers the question the
distributed telemetry exists for: *where does the time actually go?*
The report contains:

* per-process busy time (interval union of that process's spans);
* per-stage **self time** — each span's duration minus the spans
  nested inside it, so wrappers (``experiment.*``, ``executor.run``,
  ``shard.analyzer.run``) do not double-count their children — with
  the percentage of wall each stage accounts for;
* the longest blocking chain across processes, reconstructed from the
  trace's flow arrows (chunk sends, worker chunks, PCD job hand-offs);
* the top-k longest individual spans;
* stall / queue-depth / per-role CPU tables when a metrics JSON is
  supplied;
* a one-line "suggested next bottleneck".

Usage::

    repro obs analyze trace.json [--metrics metrics.json] [--top 10]
    python -m repro.obs.analyze trace.json --json

Exit status 2 marks a missing or schema-invalid trace.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

#: flow-arrow count beyond which the O(n^2) chain search subsamples
_MAX_ARROWS = 8000

#: events per process beyond which self-time attribution subsamples is
#: never needed in practice (quantum events are already capped at the
#: executor); kept as a guard against hand-built pathological traces
_MAX_EVENTS = 500_000


# ----------------------------------------------------------------------
# loading and validation
# ----------------------------------------------------------------------
def load_trace(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


def validate_trace(doc: Any) -> List[str]:
    """Schema-validate a merged trace document; returns error strings
    (empty = valid).  Checks exactly what the analyzer and the trace
    viewers rely on, so a truncated or hand-mangled file fails loudly
    instead of producing a silently wrong report."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["trace document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M", "s", "f"):
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int):
            errors.append(f"{where}: missing integer pid")
        if ph == "M":
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                errors.append(f"{where}: metadata event without args.name")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: missing numeric ts")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: complete event without dur >= 0")
        else:  # flow
            if not isinstance(event.get("id"), int):
                errors.append(f"{where}: flow event without integer id")
        if len(errors) >= 20:
            errors.append("... (more errors suppressed)")
            break
    return errors


# ----------------------------------------------------------------------
# attribution
# ----------------------------------------------------------------------
def _interval_union(intervals: List[Tuple[float, float]]) -> float:
    total = 0.0
    current_start: Optional[float] = None
    current_end = 0.0
    for start, end in sorted(intervals):
        if current_start is None or start > current_end:
            if current_start is not None:
                total += current_end - current_start
            current_start, current_end = start, end
        elif end > current_end:
            current_end = end
    if current_start is not None:
        total += current_end - current_start
    return total


def _self_times(
    spans: List[Tuple[float, float, str]],
) -> Tuple[Dict[str, float], Dict[str, int]]:
    """Per-name self time for one process's spans (``(ts, dur, name)``
    seconds).  A stack over the timestamp-sorted spans subtracts each
    span's overlap from its innermost enclosing span, so nested phases
    partition their parents instead of double-counting."""
    self_by_name: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    stack: List[Tuple[float, str]] = []  # (end, name)
    for ts, dur, name in sorted(spans, key=lambda s: (s[0], -s[1])):
        end = ts + dur
        while stack and stack[-1][0] <= ts:
            stack.pop()
        self_by_name[name] = self_by_name.get(name, 0.0) + dur
        counts[name] = counts.get(name, 0) + 1
        if stack:
            parent_end, parent_name = stack[-1]
            overlap = min(parent_end, end) - ts
            if overlap > 0:
                self_by_name[parent_name] -= overlap
        stack.append((end, name))
    for name, value in self_by_name.items():
        if value < 0:  # clock-skew slop across merged processes
            self_by_name[name] = 0.0
    return self_by_name, counts


def _blocking_chain(
    arrows: List[Tuple[float, float, str, int, int]],
) -> Dict[str, Any]:
    """Longest chain of flow arrows ``a1 .. ak`` with each arrow
    starting after the previous one lands, scored by summed latency
    (finish ts - start ts): the longest cross-process blocking chain
    the trace can prove."""
    if not arrows:
        return {"hops": 0, "latency_seconds": 0.0, "path": []}
    if len(arrows) > _MAX_ARROWS:
        step = len(arrows) / float(_MAX_ARROWS)
        arrows = [arrows[int(i * step)] for i in range(_MAX_ARROWS)]
    arrows = sorted(arrows, key=lambda a: a[1])  # by finish ts
    n = len(arrows)
    best = [0.0] * n
    prev = [-1] * n
    for i in range(n):
        s_ts, f_ts = arrows[i][0], arrows[i][1]
        latency = max(0.0, f_ts - s_ts)
        best[i] = latency
        for j in range(i):
            if arrows[j][1] <= s_ts and best[j] + latency > best[i]:
                best[i] = best[j] + latency
                prev[i] = j
    tail = max(range(n), key=lambda i: best[i])
    path: List[Dict[str, Any]] = []
    i = tail
    while i >= 0:
        s_ts, f_ts, name, s_pid, f_pid = arrows[i]
        path.append({
            "name": name,
            "from_pid": s_pid,
            "to_pid": f_pid,
            "latency_seconds": max(0.0, f_ts - s_ts),
        })
        i = prev[i]
    path.reverse()
    return {"hops": len(path), "latency_seconds": best[tail], "path": path}


def critical_path_report(
    trace_doc: Dict[str, Any],
    metrics_doc: Optional[Dict[str, Any]] = None,
    top: int = 10,
) -> Dict[str, Any]:
    """Build the critical-path report (a plain dict; see module doc)."""
    events = trace_doc.get("traceEvents", [])
    labels: Dict[int, str] = {}
    spans_by_pid: Dict[int, List[Tuple[float, float, str]]] = {}
    arrows_open: Dict[Tuple[str, int], Tuple[float, int]] = {}
    arrows: List[Tuple[float, float, str, int, int]] = []
    all_spans: List[Tuple[float, float, str, int]] = []
    for event in events[:_MAX_EVENTS]:
        ph = event.get("ph")
        pid = event.get("pid", 0)
        if ph == "M":
            labels[pid] = event.get("args", {}).get("name", str(pid))
        elif ph == "X":
            ts = event["ts"] / 1e6
            dur = event.get("dur", 0.0) / 1e6
            spans_by_pid.setdefault(pid, []).append((ts, dur, event["name"]))
            all_spans.append((ts, dur, event["name"], pid))
        elif ph == "s":
            arrows_open[(event["name"], event["id"])] = (
                event["ts"] / 1e6, pid,
            )
        elif ph == "f":
            start = arrows_open.pop((event["name"], event["id"]), None)
            if start is not None:
                arrows.append(
                    (start[0], event["ts"] / 1e6, event["name"],
                     start[1], pid)
                )

    if all_spans:
        run_start = min(ts for ts, _d, _n, _p in all_spans)
        run_end = max(ts + dur for ts, dur, _n, _p in all_spans)
        wall = run_end - run_start
    else:
        run_start = run_end = wall = 0.0

    processes = []
    stage_self: Dict[str, float] = {}
    stage_count: Dict[str, int] = {}
    for pid in sorted(spans_by_pid):
        spans = spans_by_pid[pid]
        self_by_name, counts = _self_times(spans)
        for name, value in self_by_name.items():
            stage_self[name] = stage_self.get(name, 0.0) + value
        for name, value in counts.items():
            stage_count[name] = stage_count.get(name, 0) + value
        processes.append({
            "pid": pid,
            "label": labels.get(pid, str(pid)),
            "busy_seconds": _interval_union(
                [(ts, ts + dur) for ts, dur, _n in spans]
            ),
            "spans": len(spans),
        })

    coverage = _interval_union(
        [(ts, ts + dur) for ts, dur, _n, _p in all_spans]
    )
    stages = [
        {
            "name": name,
            "self_seconds": stage_self[name],
            "count": stage_count.get(name, 0),
            "percent_of_wall": (
                100.0 * stage_self[name] / wall if wall > 0 else 0.0
            ),
        }
        for name in sorted(
            stage_self, key=lambda n: stage_self[n], reverse=True
        )
        if stage_self[name] > 0.0
    ]

    top_spans = [
        {
            "name": name,
            "pid": pid,
            "label": labels.get(pid, str(pid)),
            "start_seconds": ts - run_start,
            "dur_seconds": dur,
        }
        for ts, dur, name, pid in sorted(
            all_spans, key=lambda s: s[1], reverse=True
        )[:top]
    ]

    report: Dict[str, Any] = {
        "trace_id": trace_doc.get("otherData", {}).get("trace_id"),
        "wall_seconds": wall,
        "coverage_percent": 100.0 * coverage / wall if wall > 0 else 0.0,
        "processes": processes,
        "stages": stages,
        "top_spans": top_spans,
        "blocking_chain": _blocking_chain(arrows),
    }

    if metrics_doc is not None:
        histograms = metrics_doc.get("histograms", {})

        def rows(prefix: str) -> List[Dict[str, Any]]:
            return [
                {
                    "name": name,
                    "count": h.get("count", 0),
                    "total": h.get("total", 0.0),
                    "max": h.get("max"),
                }
                for name, h in sorted(histograms.items())
                if name.startswith(prefix)
            ]

        report["stalls"] = rows("shard.stall.")
        report["queues"] = rows("shard.queue.")
        report["cpu"] = rows("shard.cpu.")

    report["suggestion"] = _suggest(report)
    return report


def _suggest(report: Dict[str, Any]) -> str:
    """The "what to split next" line the ROADMAP asks this tool for."""
    stages = report.get("stages") or []
    if not stages:
        return "no spans recorded — run with --obs full to attribute time"
    lead = stages[0]
    line = (
        f"suggested next bottleneck: {lead['name']} "
        f"({lead['percent_of_wall']:.1f}% of wall self time across "
        f"{lead['count']} span(s))"
    )
    stalls = report.get("stalls") or []
    wall = report.get("wall_seconds") or 0.0
    if stalls and wall > 0:
        worst = max(stalls, key=lambda s: s["total"])
        if worst["total"] > 0.25 * wall:
            line += (
                f"; note {worst['name']} blocked "
                f"{100.0 * worst['total'] / wall:.0f}% of wall — the "
                f"channel, not the compute, may be the constraint"
            )
    return line


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_report(report: Dict[str, Any]) -> str:
    from repro.harness.rendering import render_table  # lazy: layering

    sections: List[str] = []
    header = (
        f"Critical path: {report['wall_seconds']:.3f}s wall, "
        f"{report['coverage_percent']:.1f}% covered by spans"
    )
    if report.get("trace_id"):
        header += f" (trace {report['trace_id']})"
    sections.append(header)

    if report["processes"]:
        sections.append(render_table(
            ["process", "pid", "busy_s", "busy_%", "spans"],
            [
                [
                    p["label"], p["pid"], f"{p['busy_seconds']:.3f}",
                    (
                        f"{100.0 * p['busy_seconds'] / report['wall_seconds']:.1f}"
                        if report["wall_seconds"] > 0 else "-"
                    ),
                    p["spans"],
                ]
                for p in report["processes"]
            ],
            title="Per-process utilization",
        ))

    if report["stages"]:
        sections.append(render_table(
            ["stage", "self_s", "% wall", "count"],
            [
                [
                    s["name"], f"{s['self_seconds']:.4f}",
                    f"{s['percent_of_wall']:.1f}", s["count"],
                ]
                for s in report["stages"]
            ],
            title="Per-stage attribution (self time)",
        ))

    chain = report["blocking_chain"]
    if chain["hops"]:
        hops = " -> ".join(
            f"{hop['name']}[{hop['from_pid']}->{hop['to_pid']}]"
            for hop in chain["path"][:6]
        )
        if chain["hops"] > 6:
            hops += f" -> ... ({chain['hops']} hops)"
        sections.append(
            f"Longest blocking chain: {chain['latency_seconds']:.4f}s "
            f"over {chain['hops']} hop(s): {hops}"
        )

    if report["top_spans"]:
        sections.append(render_table(
            ["span", "process", "start_s", "dur_s"],
            [
                [
                    s["name"], s["label"], f"{s['start_seconds']:.3f}",
                    f"{s['dur_seconds']:.4f}",
                ]
                for s in report["top_spans"]
            ],
            title=f"Top {len(report['top_spans'])} spans",
        ))

    for key, title in (
        ("stalls", "Blocking waits (shard.stall.*)"),
        ("queues", "Queue depth samples (shard.queue.*)"),
        ("cpu", "Per-role CPU (shard.cpu.*)"),
    ):
        rows = report.get(key)
        if rows:
            sections.append(render_table(
                ["metric", "count", "total", "max"],
                [
                    [
                        r["name"], r["count"], f"{r['total']:.4f}",
                        "-" if r["max"] is None else f"{r['max']:.4f}",
                    ]
                    for r in rows
                ],
                title=title,
            ))

    sections.append(report["suggestion"])
    return "\n\n".join(sections)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "analyze":
        # invoked as `repro obs analyze ...` or `python -m
        # repro.obs.analyze analyze ...` — both spellings work
        argv = argv[1:]
    parser = argparse.ArgumentParser(
        prog="repro obs analyze",
        description=(
            "Critical-path report over a merged Chrome trace "
            "(--trace-out) and optional metrics JSON (--metrics-out)."
        ),
    )
    parser.add_argument("trace", help="merged Chrome trace JSON file")
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="matching --metrics-out JSON (adds stall/queue/CPU tables)",
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="longest individual spans to list (default 10)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of text",
    )
    args = parser.parse_args(argv)

    try:
        trace_doc = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"repro obs analyze: error: cannot read trace: {exc}",
              file=sys.stderr)
        return 2
    errors = validate_trace(trace_doc)
    if errors:
        print(
            "repro obs analyze: error: trace failed schema validation:",
            file=sys.stderr,
        )
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 2

    metrics_doc = None
    if args.metrics:
        try:
            with open(args.metrics) as handle:
                metrics_doc = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"repro obs analyze: error: cannot read metrics: {exc}",
                  file=sys.stderr)
            return 2

    report = critical_path_report(trace_doc, metrics_doc, top=args.top)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())


__all__ = [
    "critical_path_report",
    "load_trace",
    "main",
    "render_report",
    "validate_trace",
]
