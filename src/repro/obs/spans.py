"""Timed spans and the ``phase()`` helper.

A :class:`Span` measures one timed region against a specific recorder.
Spans nest: each maintains its depth on a per-registry stack, and the
qualified name of a nested span is dotted under its parents is *not*
rewritten — Chrome's trace viewer nests complete events by timestamp
containment, so plain names render correctly.  What the stack buys is
the ``depth`` argument on emitted events and a cheap guard against
unbalanced exits.

In ``counters`` mode a span only folds its duration into the
``phase.<name>.seconds`` histogram (and bumps ``phase.<name>.count``);
``full`` mode additionally emits a structured event for the exporters.
Against the null recorder a span is a shared no-op context manager.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.obs.registry import MODE_FULL, recorder


class Span:
    """Context manager timing one region into a registry."""

    __slots__ = ("registry", "name", "category", "args", "_start")

    def __init__(self, registry: Any, name: str, category: str = "phase",
                 args: Optional[Dict[str, Any]] = None) -> None:
        self.registry = registry
        self.name = name
        self.category = category
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "Span":
        registry = self.registry
        stack = getattr(registry, "_span_stack", None)
        if stack is None:
            stack = registry._span_stack = []
        stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        end = time.perf_counter()
        registry = self.registry
        duration = end - self._start
        stack = registry._span_stack
        depth = len(stack)
        if stack and stack[-1] == self.name:
            stack.pop()
        registry.observe(f"phase.{self.name}.seconds", duration)
        registry.inc(f"phase.{self.name}.count")
        if registry.mode == MODE_FULL:
            args = dict(self.args) if self.args else {}
            args["depth"] = depth
            registry.emit_event(
                self.name, self.category,
                ts=self._start - registry.epoch, dur=duration, args=args,
            )


def phase(name: str, category: str = "phase", **fields: Any):
    """A span over the *active* recorder (no-op when telemetry is off).

    Usage::

        with phase("experiment.table2", names=len(names)):
            ...
    """
    return recorder().span(name, category=category, **fields)


__all__ = ["Span", "phase"]
