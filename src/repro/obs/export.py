"""Exporters: metrics JSON, JSONL event log, Chrome trace, text summary.

The Chrome trace output follows the Trace Event Format's *complete*
events (``"ph": "X"``, timestamps and durations in microseconds), so
the file loads directly in ``chrome://tracing`` and in Perfetto
(https://ui.perfetto.dev → "Open trace file").  Each worker process
appears as its own track via its ``pid`` (named from the registry's
process labels when a distributed run recorded them); timestamps are
relative to the run's shared epoch (see :mod:`repro.obs.wire`), and
cross-process flow arrows (``"ph": "s"``/``"f"``) connect chunk sends
and PCD job hand-offs between processes.

Every file exporter writes **atomically** — the document is serialized
to a temporary file in the destination directory and renamed over the
target (the same write-then-rename discipline as
:class:`~repro.harness.checkpoint.Checkpoint`) — so a run killed
mid-export never leaves a truncated trace or metrics file behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Callable, Dict, List

# ----------------------------------------------------------------------
# normalisation
# ----------------------------------------------------------------------
def _as_snapshot(source: Any) -> Dict[str, Any]:
    """Accept either a registry or an already-taken snapshot dict."""
    if isinstance(source, dict):
        return source
    return source.snapshot()


def _atomic_write(path: str, write_body: Callable[[Any], None]) -> None:
    """Write-then-rename: ``write_body(handle)`` fills a temp file in
    the destination directory, which is atomically renamed over
    ``path`` only after a successful write + flush."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".obs-export-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            write_body(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# metrics JSON
# ----------------------------------------------------------------------
def metrics_document(source: Any) -> Dict[str, Any]:
    """The ``--metrics-out`` document: counters, gauges, and histogram
    summaries (events are the trace exporters' concern)."""
    snapshot = _as_snapshot(source)
    return {
        "mode": snapshot.get("mode"),
        "trace_id": snapshot.get("trace_id"),
        "counters": snapshot.get("counters", {}),
        "gauges": snapshot.get("gauges", {}),
        "histograms": {
            name: {
                "count": h["count"],
                "total": h["total"],
                "min": h["min"],
                "max": h["max"],
            }
            for name, h in snapshot.get("histograms", {}).items()
        },
    }


def write_metrics_json(path: str, source: Any) -> None:
    document = metrics_document(source)

    def body(handle):
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    _atomic_write(path, body)


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------
def write_jsonl(path: str, source: Any) -> None:
    """One JSON object per line, one line per span event."""
    snapshot = _as_snapshot(source)

    def body(handle):
        for event in snapshot.get("events", []):
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")

    _atomic_write(path, body)


# ----------------------------------------------------------------------
# Chrome trace
# ----------------------------------------------------------------------
def chrome_trace_document(source: Any) -> Dict[str, Any]:
    """Trace Event Format document for chrome://tracing / Perfetto.

    Span events become complete (``"X"``) events; cross-process flow
    ends recorded via :meth:`MetricsRegistry.emit_flow` become flow
    (``"s"``/``"f"``) events binding by id, so chunk sends and PCD job
    hand-offs draw arrows between process tracks.
    """
    snapshot = _as_snapshot(source)
    labels = snapshot.get("labels", {}) or {}
    trace_events: List[Dict[str, Any]] = []
    seen_pids = []
    for event in snapshot.get("events", []):
        pid = event.get("pid", 0)
        if pid not in seen_pids:
            seen_pids.append(pid)
        side = event.get("ph")
        if side in ("s", "f"):
            entry = {
                "name": event["name"],
                "cat": event.get("cat", "flow"),
                "ph": side,
                "ts": round(event["ts"] * 1e6, 3),
                "id": event.get("id", 0),
                "pid": pid,
                "tid": pid,
            }
            if side == "f":
                # bind the arrow head to the enclosing slice
                entry["bp"] = "e"
            trace_events.append(entry)
            continue
        entry = {
            "name": event["name"],
            "cat": event.get("cat", "phase"),
            "ph": "X",
            "ts": round(event["ts"] * 1e6, 3),
            "dur": round(event["dur"] * 1e6, 3),
            "pid": pid,
            "tid": pid,
        }
        if "args" in event:
            entry["args"] = event["args"]
        trace_events.append(entry)
    # name each process track so Perfetto shows something readable
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": pid,
            "args": {
                "name": labels.get(pid, labels.get(str(pid)))
                or f"doublechecker worker {pid}"
            },
        }
        for pid in seen_pids
    ]
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": snapshot.get("trace_id")},
    }


def write_chrome_trace(path: str, source: Any) -> None:
    document = chrome_trace_document(source)

    def body(handle):
        json.dump(document, handle)
        handle.write("\n")

    _atomic_write(path, body)


# ----------------------------------------------------------------------
# text summary
# ----------------------------------------------------------------------
def render_summary(source: Any, *, top: int = 0) -> str:
    """Fixed-width text rendering of a snapshot.

    ``top`` truncates the counter table to the N largest values
    (0 = everything).  Style-matched to the experiment tables from
    :mod:`repro.harness.rendering`.
    """
    from repro.harness.rendering import render_table  # lazy: layering

    snapshot = _as_snapshot(source)
    sections: List[str] = []

    counters = snapshot.get("counters", {})
    if counters:
        items = sorted(counters.items())
        if top:
            items = sorted(items, key=lambda kv: -kv[1])[:top]
        sections.append(
            render_table(
                ["counter", "value"],
                [[name, value] for name, value in items],
                title="Telemetry: counters",
            )
        )

    gauges = snapshot.get("gauges", {})
    if gauges:
        sections.append(
            render_table(
                ["gauge", "value"],
                [[name, value] for name, value in sorted(gauges.items())],
                title="Telemetry: gauges",
            )
        )

    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for name in sorted(histograms):
            h = histograms[name]
            mean = h["total"] / h["count"] if h["count"] else 0.0
            rows.append(
                [
                    name,
                    h["count"],
                    f"{h['total']:.4f}",
                    f"{mean:.6f}",
                    f"{h['max']:.6f}" if h["max"] is not None else "-",
                ]
            )
        sections.append(
            render_table(
                ["timer", "count", "total_s", "mean_s", "max_s"],
                rows,
                title="Telemetry: timers",
            )
        )

    events = snapshot.get("events", [])
    if events:
        sections.append(f"{len(events)} span event(s) recorded (full mode)")

    if not sections:
        return "Telemetry: no metrics recorded"
    return "\n\n".join(sections)


__all__ = [
    "chrome_trace_document",
    "metrics_document",
    "render_summary",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_json",
]
