"""Unified telemetry: metrics registry, phase spans, and exporters.

The observability layer shared by the executor, the analyses (Octet,
ICD, PCD, Velodrome, the graph engine), and the experiment harness.
See ``docs/OBSERVABILITY.md`` for the metric-name catalog and the
exporter formats.

Typical embedded use::

    from repro import obs

    registry = obs.configure("full")      # or "counters" / "off"
    ...  # run checkers, experiments, CellPool fan-outs
    print(obs.render_summary(registry))
    obs.write_chrome_trace("trace.json", registry)

Instrumented components capture ``obs.recorder()`` once at
construction; with telemetry off that is the :data:`~repro.obs.NOOP`
null object and instrumentation costs one attribute load.
"""

from repro.obs.export import (
    chrome_trace_document,
    metrics_document,
    render_summary,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    MODE_COUNTERS,
    MODE_FULL,
    MODE_OFF,
    MODES,
    NOOP,
    NoopRecorder,
    configure,
    publish_stats,
    recorder,
    use_registry,
)
from repro.obs.spans import Span, phase
from repro.obs.wire import (
    aligned_epoch,
    child_registry,
    merge_capsule,
    sample_depth,
    stalled_get,
    telemetry_capsule,
    trace_context,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "MODE_COUNTERS",
    "MODE_FULL",
    "MODE_OFF",
    "MODES",
    "NOOP",
    "NoopRecorder",
    "Span",
    "aligned_epoch",
    "child_registry",
    "chrome_trace_document",
    "configure",
    "merge_capsule",
    "metrics_document",
    "phase",
    "publish_stats",
    "recorder",
    "render_summary",
    "sample_depth",
    "stalled_get",
    "telemetry_capsule",
    "trace_context",
    "use_registry",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_json",
]
