"""Cross-process trace propagation for distributed runs.

The sharded pipeline (:mod:`repro.shard`) and the parallel harness
(:mod:`repro.harness.parallel`) fork worker processes; each one
records spans and wall-clock histograms into its own
:class:`~repro.obs.registry.MetricsRegistry` and ships the result back
over the channels the data already travels on (the shard result queue,
the CellPool future).  This module holds the three pieces that make
those per-process buffers merge into **one** timeline:

* **Trace context** (:func:`trace_context`) — a picklable capsule of
  the parent registry's ``(mode, epoch, trace_id, spawn_now)``.  It is
  attached to the spawn message/config of every child process.
* **Clock alignment** (:func:`aligned_epoch`) — the handshake that
  maps a child's monotonic clock onto the parent's.  Under ``fork`` on
  Linux both processes read the same ``CLOCK_MONOTONIC``, so the
  child simply adopts the parent's epoch; if the child's clock turns
  out to be a different domain (its "now" predates the parent's
  recorded spawn instant), the child pins its startup to the spawn
  instant instead — bounding skew by process-creation latency.
* **Telemetry capsules** (:func:`telemetry_capsule` /
  :func:`merge_capsule`) — the picklable subset of a child registry
  that is safe to merge upstream: span **events** and wall-clock
  **histograms** only.  Deterministic counters are deliberately
  excluded — the shard merge reconciles those to exact serial totals
  through the analysis bundles, and merging them twice would break the
  serial == ``--shards N`` counter identity the determinism tests pin.

The stall/queue-depth helpers wrap the blocking queue operations of
the shard processes: a ``get`` that would block is timed into a
``shard.stall.<role>.*.seconds`` histogram (count = number of blocking
waits, total = blocked seconds), and producers sample ``qsize()`` into
``shard.queue.<channel>.depth`` histograms at chunk boundaries.  All
of it lands in histograms, never counters, because wall-clock data is
exempt from the determinism contract by design.
"""

from __future__ import annotations

import queue as queue_mod
import time
from typing import Any, Dict, Optional

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    MODE_FULL,
    MODE_OFF,
)


def trace_context(registry: Any) -> Optional[Dict[str, Any]]:
    """Picklable spawn-time capsule of the active trace context.

    Returns ``None`` when telemetry is off (children then record
    nothing).  ``spawn_now`` is sampled here — call this immediately
    before starting the children so the clock handshake is tight.
    """
    if registry is None or not getattr(registry, "enabled", False):
        return None
    return {
        "mode": registry.mode,
        "epoch": registry.epoch,
        "trace_id": registry.trace_id,
        "spawn_now": time.perf_counter(),
    }


def aligned_epoch(trace_epoch: Optional[float],
                  spawn_now: Optional[float]) -> float:
    """The child-side epoch mapping local perf_counter onto the
    parent's timeline (see module docstring)."""
    now = time.perf_counter()
    if trace_epoch is None:
        return now
    if spawn_now is None or now >= spawn_now:
        # shared monotonic clock domain (fork): adopt the parent epoch
        return trace_epoch
    # disjoint domains: pin the child's "now" to the spawn instant
    return now - (spawn_now - trace_epoch)


def child_registry(context: Optional[Dict[str, Any]],
                   label: str) -> Optional[MetricsRegistry]:
    """Build a child process's registry from a :func:`trace_context`.

    Returns ``None`` when the parent ran with telemetry off.
    """
    if context is None or context.get("mode") in (None, MODE_OFF):
        return None
    return MetricsRegistry(
        context["mode"],
        epoch=aligned_epoch(context.get("epoch"), context.get("spawn_now")),
        trace_id=context.get("trace_id"),
        label=label,
    )


def telemetry_capsule(registry: Optional[MetricsRegistry]) -> Optional[dict]:
    """The picklable, merge-safe subset of a child registry: events,
    histograms, and track labels — never counters or gauges."""
    if registry is None:
        return None
    return {
        "pid": registry.pid,
        "labels": dict(registry.labels),
        "events": list(registry.events),
        "histograms": {
            name: registry.histograms[name].to_dict()
            for name in sorted(registry.histograms)
        },
    }


def merge_capsule(target: Any, capsule: Optional[dict]) -> None:
    """Fold a child's telemetry capsule into ``target`` (the parent's
    registry): histograms add, events append (``full`` mode), labels
    union.  A no-op against the null recorder or a ``None`` capsule."""
    if capsule is None or not getattr(target, "enabled", False):
        return
    for name, data in capsule.get("histograms", {}).items():
        histogram = target.histograms.get(name)
        if histogram is None:
            histogram = target.histograms[name] = Histogram(
                tuple(data["bounds"])
            )
        histogram.merge_dict(data)
    for pid, label in capsule.get("labels", {}).items():
        target.labels.setdefault(int(pid), label)
    if target.mode == MODE_FULL:
        target.events.extend(capsule.get("events", []))


# ----------------------------------------------------------------------
# backpressure instrumentation
# ----------------------------------------------------------------------
def stalled_get(q: Any, obs: Optional[MetricsRegistry], name: str) -> Any:
    """``q.get()`` that times the blocking wait, if any, into the
    ``name`` histogram.  A message already waiting costs one
    ``get_nowait`` probe; with ``obs=None`` this is a plain ``get``."""
    if obs is None:
        return q.get()
    try:
        return q.get_nowait()
    except queue_mod.Empty:
        started = time.perf_counter()
        msg = q.get()
        obs.observe(name, time.perf_counter() - started)
        return msg


def sample_depth(obs: Optional[MetricsRegistry], name: str, q: Any) -> None:
    """Sample a queue's depth into the ``name`` histogram (producer
    side, at chunk boundaries).  ``qsize`` is advisory and unsupported
    on some platforms — failures are ignored."""
    if obs is None:
        return
    try:
        obs.observe(name, q.qsize())
    except (NotImplementedError, OSError):  # pragma: no cover - platform
        pass


__all__ = [
    "aligned_epoch",
    "child_registry",
    "merge_capsule",
    "sample_depth",
    "stalled_get",
    "telemetry_capsule",
    "trace_context",
]
