"""An offline serializability checker with streaming summarization.

The paper's closest related work (Farzan & Parthasarathy, CAV 2008 —
reference [9]) differs from Velodrome/DoubleChecker in two documented
ways (Section 6):

* it detects cycles **offline**, after the execution finishes, over a
  recorded trace — and bounds space by *summarizing* the dependence
  graph as transactions finish, so space is not proportional to the
  length of the run;
* it does **not track synchronization edges** — so, unlike Velodrome
  and DoubleChecker (which follow Velodrome), it does not report the
  false positives that release–acquire edges can create when checking
  conflict serializability.

:class:`OfflineChecker` reproduces that design point over
:class:`~repro.trace.recorder.Trace` inputs: it streams the trace,
applies the last-access dependence rules at field granularity, detects
completed cycles as transactions retire (recording violations), and
then *collects* retired graph regions exactly the way DoubleChecker's
transaction GC does — the summarization that keeps live state bounded.
A final sweep at end of trace catches cycles completed by the last
transactions.

It reuses the shared transaction model, so its results are directly
comparable with the online checkers' (see
``tests/offline/test_checker.py``: identical verdicts on data
conflicts, no verdict on synchronization-only cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.gc import GcStats, TransactionCollector
from repro.core.reports import ViolationRecord, ViolationSummary
from repro.core.scc import is_cyclic_component, scc_containing
from repro.core.transactions import IdgEdge, Transaction, TransactionManager
from repro.runtime.events import AccessEvent
from repro.runtime.listeners import ExecutionListener
from repro.spec.specification import AtomicitySpecification
from repro.trace.recorder import Trace
from repro.trace.replay import replay_trace


@dataclass
class OfflineStats:
    """Work/space counters for the offline analysis."""

    accesses_processed: int = 0
    sync_accesses_skipped: int = 0
    edges: int = 0
    scc_computations: int = 0
    cycles_found: int = 0
    peak_live_transactions: int = 0


@dataclass
class OfflineResult:
    violations: ViolationSummary
    stats: OfflineStats
    gc_stats: GcStats

    @property
    def blamed_methods(self) -> set:
        return self.violations.blamed_methods()


class OfflineChecker(ExecutionListener):
    """Offline, summarizing conflict-serializability checking.

    Args:
        spec: the atomicity specification (transaction demarcation).
        track_sync_edges: include release–acquire (and fork/join)
            pseudo-accesses as dependences.  Off by default — the [9]
            design point; turning it on makes the verdicts match
            Velodrome's on synchronization-only cycles too.
        summarize_interval: collect retired graph regions every N
            transaction ends (None disables summarization; space then
            grows with the run, which is exactly the comparison [9]
            draws against unsummarized graphs).
    """

    def __init__(
        self,
        spec: AtomicitySpecification,
        *,
        track_sync_edges: bool = False,
        summarize_interval: Optional[int] = 64,
    ) -> None:
        self.spec = spec
        self.track_sync_edges = track_sync_edges
        self.summarize_interval = summarize_interval

        self.stats = OfflineStats()
        self.violations = ViolationSummary()
        self.tx_manager = TransactionManager(
            spec,
            on_transaction_end=self._transaction_ended,
        )
        self.collector = TransactionCollector(self.tx_manager)
        #: field address -> last writer transaction
        self._last_write: Dict[Tuple[int, str], Transaction] = {}
        #: field address -> thread -> last reader transaction
        self._last_reads: Dict[Tuple[int, str], Dict[str, Transaction]] = {}
        self._edge_order = 0
        self._processed: Set[frozenset] = set()
        self._ends_since_summary = 0

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def check(self, trace: Trace) -> OfflineResult:
        """Analyze a recorded trace."""
        replay_trace(trace, [self])
        return OfflineResult(self.violations, self.stats, self.collector.stats)

    # ------------------------------------------------------------------
    # ExecutionListener
    # ------------------------------------------------------------------
    def on_method_enter(self, thread_name: str, method: str, depth: int) -> None:
        self.tx_manager.on_method_enter(thread_name, method, depth)

    def on_method_exit(self, thread_name: str, method: str, depth: int) -> None:
        self.tx_manager.on_method_exit(thread_name, method, depth)

    def on_thread_end(self, thread_name: str) -> None:
        self.tx_manager.on_thread_end(thread_name)

    def on_execution_end(self) -> None:
        self.tx_manager.finish_all()

    def on_access(self, event: AccessEvent) -> None:
        if event.is_sync and not self.track_sync_edges:
            self.stats.sync_accesses_skipped += 1
            return
        tx = self.tx_manager.transaction_for_access(event)
        if tx is None:
            return
        self.stats.accesses_processed += 1
        address = event.address

        writer = self._last_write.get(address)
        if writer is not None and writer.thread_name != tx.thread_name:
            self._add_edge(writer, tx)

        if event.is_read():
            self._last_reads.setdefault(address, {})[tx.thread_name] = tx
        else:
            for thread_name, reader in self._last_reads.get(address, {}).items():
                if thread_name != tx.thread_name:
                    self._add_edge(reader, tx)
            self._last_reads[address] = {}
            self._last_write[address] = tx

    # ------------------------------------------------------------------
    def _add_edge(self, src: Transaction, dst: Transaction) -> None:
        if src is dst or src.collected:
            return
        if any(e.dst is dst for e in src.out_edges):
            return
        self._edge_order += 1
        edge = IdgEdge(src, dst, "offline", self._edge_order)
        src.out_edges.append(edge)
        dst.in_edges.append(edge)
        src.edge_touched = True
        dst.edge_touched = True
        self.stats.edges += 1
        self.tx_manager.end_if_interrupted_unary(src)

    def _transaction_ended(self, tx: Transaction) -> None:
        # cycles complete no later than their last member's retirement;
        # detecting at retirement lets summarization collect the region
        if tx.has_cross_edges():
            self.stats.scc_computations += 1
            component = scc_containing(tx)
            if is_cyclic_component(component):
                self._report(component)
        self._maybe_summarize()

    def _report(self, component: List[Transaction]) -> None:
        key = frozenset(t.tx_id for t in component)
        if key in self._processed:
            return
        self._processed.add(key)
        regular = [t for t in component if not t.is_unary]
        if not regular:
            return  # no specified atomic region is implicated
        self.stats.cycles_found += 1
        ordered = sorted(component, key=lambda t: t.tx_id)
        self.violations.add(
            ViolationRecord(
                blamed_method=regular[0].method,
                blamed_tx_id=regular[0].tx_id,
                thread_name=regular[0].thread_name,
                cycle_methods=tuple(t.method for t in ordered),
                cycle_tx_ids=tuple(t.tx_id for t in ordered),
                detector="offline",
            )
        )

    # ------------------------------------------------------------------
    # summarization: bounded live state
    # ------------------------------------------------------------------
    def _maybe_summarize(self) -> None:
        if self.summarize_interval is None:
            return
        self._ends_since_summary += 1
        if self._ends_since_summary < self.summarize_interval:
            return
        self._ends_since_summary = 0
        self.collector.note_peak()
        self.stats.peak_live_transactions = max(
            self.stats.peak_live_transactions,
            len(self.tx_manager.all_transactions),
        )
        # metadata-referenced transactions are pinned: they can still
        # source future edges (live state stays bounded by the field
        # population, not by the run's length)
        pinned: List[Transaction] = list(self._last_write.values())
        for readers in self._last_reads.values():
            pinned.extend(readers.values())
        self.collector.collect(pinned)
