"""Offline conflict-serializability checking (the §6 comparator)."""

from repro.offline.checker import OfflineChecker, OfflineResult

__all__ = ["OfflineChecker", "OfflineResult"]
