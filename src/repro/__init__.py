"""DoubleChecker — efficient sound and precise atomicity checking.

A production-quality Python reproduction of Biswas, Huang, Sengupta &
Bond, *DoubleChecker: Efficient Sound and Precise Atomicity Checking*
(PLDI 2014), including the Octet concurrency-control substrate, the
Velodrome baseline, and the deterministic multithreaded-execution
simulator the analyses run on.

Quickstart::

    from repro import (
        AtomicitySpecification, DoubleChecker, Program,
        RandomScheduler, Read, Write, Invoke,
    )

    program = Program("demo")
    shared = program.add_global_object("shared")

    @program.method
    def read_modify_write(ctx):
        value = yield Read(shared, "x")
        yield Write(shared, "x", value + 1)

    @program.method
    def worker(ctx):
        for _ in range(100):
            yield Invoke("read_modify_write")

    program.add_thread("T1", "worker")
    program.add_thread("T2", "worker")
    program.mark_entry("worker")

    spec = AtomicitySpecification.initial(program)
    checker = DoubleChecker(spec)
    result = checker.run_single(program, RandomScheduler(seed=1))
    print(result.violations.blamed_methods())
"""

from repro.core.doublechecker import (
    DoubleChecker,
    FirstRunResult,
    MultiRunResult,
    SingleRunResult,
)
from repro.core.icd import ICD
from repro.core.pcd import PCD
from repro.core.reports import ViolationRecord, ViolationSummary
from repro.core.static_info import StaticTransactionInfo
from repro.errors import (
    DeadlockError,
    OutOfMemoryBudget,
    ProgramError,
    ReproError,
    SpecificationError,
)
from repro.runtime import (
    Acquire,
    ArrayRead,
    ArrayWrite,
    Compute,
    Executor,
    Fork,
    Invoke,
    Join,
    New,
    NewArray,
    Notify,
    Program,
    RandomScheduler,
    Read,
    Release,
    RoundRobinScheduler,
    ScriptedScheduler,
    Wait,
    Write,
)
from repro.offline import OfflineChecker
from repro.oracle import HappensBeforeTracker, VectorClock
from repro.spec import AtomicitySpecification, iterative_refinement
from repro.trace import Trace, record_execution, replay_trace
from repro.velodrome import UnsoundVelodrome, VelodromeChecker

__version__ = "1.0.0"

__all__ = [
    "Acquire",
    "ArrayRead",
    "ArrayWrite",
    "AtomicitySpecification",
    "Compute",
    "DeadlockError",
    "DoubleChecker",
    "Executor",
    "FirstRunResult",
    "Fork",
    "HappensBeforeTracker",
    "ICD",
    "Invoke",
    "Join",
    "MultiRunResult",
    "New",
    "NewArray",
    "Notify",
    "OfflineChecker",
    "OutOfMemoryBudget",
    "PCD",
    "Program",
    "ProgramError",
    "RandomScheduler",
    "Read",
    "Release",
    "ReproError",
    "RoundRobinScheduler",
    "ScriptedScheduler",
    "SingleRunResult",
    "SpecificationError",
    "StaticTransactionInfo",
    "Trace",
    "UnsoundVelodrome",
    "VectorClock",
    "VelodromeChecker",
    "record_execution",
    "replay_trace",
    "ViolationRecord",
    "ViolationSummary",
    "Wait",
    "Write",
    "iterative_refinement",
]
