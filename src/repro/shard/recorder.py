"""Coordinator-side stream recorder.

Replaces the in-process ICD as the executor's single listener when the
run is sharded: every listener-visible fact — accesses, method
enter/exit, thread lifecycle, blocked-state flips — is serialized into
the :mod:`repro.shard.wire` record stream and shipped to the analysis
plane.  The executor itself is untouched; because analyses never feed
back into scheduling, the recorded execution is step-for-step the one
the serial run would produce.

The hot path is the batch barrier: the batch executor hands over
pre-interned column values, the recorder resolves the ``(site,
address)`` pair to an access descriptor (two dict probes; the pair
determines object, field, kind and site — kind is static per site)
and appends three ints.  The event path (sync pseudo-accesses,
generator frames, first accesses) interns a descriptor per ``(site,
oid, field, kind)`` and appends four.

Every lifecycle record carries a trailing stamp — the seq of the last
access emitted before it — so a partitioned analysis plane can merge
worker streams back into global order (see :mod:`repro.shard.wire`).

With ``partitions=A > 1`` the recorder fans out: it keeps one buffer
per partition worker, routes each access to the partition owning its
object (:func:`~repro.shard.wire.partition_of`), broadcasts
definitions and lifecycle records to every partition, and flushes all
partitions in lockstep so their watermarks advance together.  Flushed
buffers cycle through a :class:`~repro.shard.wire.ChunkPool` freelist
instead of being allocated per flush.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.runtime.events import AccessEvent, AccessKind, Site
from repro.runtime.listeners import ExecutionListener
from repro.shard.wire import (
    CHUNK_INTS,
    ChunkPool,
    T_BLOCK,
    T_END,
    T_ENTER,
    T_EVENT,
    T_EXIT,
    T_TEND,
    T_TSTART,
    encode_chunk,
    partition_of,
)


class ShardStreamRecorder(ExecutionListener):
    """Serialize the execution's listener stream into record chunks.

    Args:
        sink: per-flush callable.  With ``partitions == 1`` it receives
            ``(defs, chunk_bytes)``; with ``partitions > 1`` it
            receives ``(partition, defs, chunk_bytes, stamp)`` where
            ``stamp`` is the last access seq covered by the flush.
            ``defs`` is a tuple of definition tuples (see module docs
            of :mod:`repro.shard.wire`) or ``()``.
        partitions: analysis-plane partition count (1 = single
            analyzer stream).
    """

    def __init__(
        self,
        sink: Callable[..., None],
        *,
        partitions: int = 1,
    ) -> None:
        self._sink = sink
        self._partitions = partitions
        self._pool = ChunkPool(cap=2 * partitions + 2)
        if partitions <= 1:
            self._buf = array("q")
        else:
            self._bufs: List[array] = [
                self._pool.acquire() for _ in range(partitions)
            ]
            self._deflists: List[list] = [[] for _ in range(partitions)]
            #: desc/edesc id -> owning partition (dense, append order)
            self._part_by_desc: List[int] = []
            self._part_by_edesc: List[int] = []
        self._defs: list = []
        #: seq of the last access record emitted (lifecycle stamp)
        self._last_seq = 0
        # interning tables; ids are dense and defined before first use
        self._tids: Dict[str, int] = {}
        self._mids: Dict[str, int] = {}
        #: batch path: site -> {address -> desc}
        self._desc_by_site: Dict[Site, Dict[Tuple[int, str], int]] = {}
        #: event path: (site, oid, fieldname, kindval) -> edesc
        self._event_descs: Dict[tuple, int] = {}
        self._next_desc = 0
        self._next_edesc = 0
        # wire accounting (obs `shard.*` counters)
        self.records = 0
        self.chunks = 0
        self.bytes_shipped = 0
        self.defs_shipped = 0

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def _def(self, d: tuple) -> None:
        if self._partitions == 1:
            self._defs.append(d)
        else:
            for lst in self._deflists:
                lst.append(d)

    def _tid(self, thread: str) -> int:
        t = self._tids.get(thread)
        if t is None:
            t = self._tids[thread] = len(self._tids)
            self._def(("t", t, thread))
        return t

    def _mid(self, method: str) -> int:
        m = self._mids.get(method)
        if m is None:
            m = self._mids[method] = len(self._mids)
            self._def(("m", m, method))
        return m

    def _register_desc(
        self,
        site: Site,
        address: Tuple[int, str],
        kind: AccessKind,
        is_array: bool,
    ) -> int:
        desc = self._next_desc
        self._next_desc = desc + 1
        self._desc_by_site.setdefault(site, {})[address] = desc
        if self._partitions > 1:
            self._part_by_desc.append(
                partition_of(address[0], self._partitions)
            )
        self._def(
            (
                "d",
                desc,
                address[0],
                address[1],
                kind.value,
                site.method,
                site.index,
                1 if is_array else 0,
            )
        )
        return desc

    def _register_edesc(self, key: tuple, event: AccessEvent) -> int:
        edesc = self._next_edesc
        self._next_edesc = edesc + 1
        self._event_descs[key] = edesc
        site = event.site
        if self._partitions > 1:
            self._part_by_edesc.append(
                partition_of(event.obj.oid, self._partitions)
            )
        self._def(
            (
                "e",
                edesc,
                event.obj.oid,
                event.fieldname,
                event.kind.value,
                site.method,
                site.index,
                1 if event.is_sync else 0,
                1 if event.is_array else 0,
            )
        )
        return edesc

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        buf = self._buf
        if not buf and not self._defs:
            return
        defs = tuple(self._defs)
        self._defs.clear()
        payload = encode_chunk(buf)
        del buf[:]
        self.chunks += 1
        self.bytes_shipped += len(payload)
        self.defs_shipped += len(defs)
        self._sink(defs, payload)

    def _flush_all(self) -> None:
        """Fan-out flush: ship every partition's buffer (even empty
        ones — the stamp doubles as the partition worker's forwarding
        watermark, so all streams must advance together)."""
        stamp = self._last_seq
        pool = self._pool
        bufs = self._bufs
        deflists = self._deflists
        sink = self._sink
        for part in range(self._partitions):
            shipped = bufs[part]
            bufs[part] = pool.acquire()
            defs = tuple(deflists[part])
            deflists[part].clear()
            payload = encode_chunk(shipped)
            pool.release(shipped)
            self.chunks += 1
            self.bytes_shipped += len(payload)
            self.defs_shipped += len(defs)
            sink(part, defs, payload, stamp)

    # ------------------------------------------------------------------
    # barriers
    # ------------------------------------------------------------------
    def access_barrier(self) -> Callable[[AccessEvent], None]:
        if self._partitions > 1:
            return self._access_barrier_fanout()
        buf = self._buf
        append = buf.append
        tids = self._tids
        get_tid = self._tid
        event_descs = self._event_descs
        register = self._register_edesc
        flush = self._flush

        def record_event(event: AccessEvent) -> None:
            key = (event.site, event.obj.oid, event.fieldname,
                   event.kind.value)
            edesc = event_descs.get(key)
            if edesc is None:
                edesc = register(key, event)
            t = tids.get(event.thread_name)
            if t is None:
                t = get_tid(event.thread_name)
            append(T_EVENT)
            append(edesc)
            append(event.seq)
            append(t)
            self._last_seq = event.seq
            self.records += 1
            if len(buf) >= CHUNK_INTS:
                flush()

        return record_event

    def access_barrier_batch(self) -> Optional[Callable[..., None]]:
        if self._partitions > 1:
            return self._access_barrier_batch_fanout()
        buf = self._buf
        append = buf.append
        tids = self._tids
        get_tid = self._tid
        by_site = self._desc_by_site
        register = self._register_desc
        flush = self._flush

        def record_batch(
            seq: int,
            thread: str,
            obj: Any,
            fieldname: str,
            kind: AccessKind,
            site: Site,
            address: Tuple[int, str],
            site_str: str,
            is_array: bool,
        ) -> None:
            sub = by_site.get(site)
            desc = sub.get(address) if sub is not None else None
            if desc is None:
                desc = register(site, address, kind, is_array)
            t = tids.get(thread)
            if t is None:
                t = get_tid(thread)
            append(desc)
            append(seq)
            append(t)
            self._last_seq = seq
            self.records += 1
            if len(buf) >= CHUNK_INTS:
                flush()

        return record_batch

    def _access_barrier_fanout(self) -> Callable[[AccessEvent], None]:
        bufs = self._bufs
        parts = self._part_by_edesc
        tids = self._tids
        get_tid = self._tid
        event_descs = self._event_descs
        register = self._register_edesc
        flush_all = self._flush_all

        def record_event(event: AccessEvent) -> None:
            key = (event.site, event.obj.oid, event.fieldname,
                   event.kind.value)
            edesc = event_descs.get(key)
            if edesc is None:
                edesc = register(key, event)
            t = tids.get(event.thread_name)
            if t is None:
                t = get_tid(event.thread_name)
            buf = bufs[parts[edesc]]
            buf.append(T_EVENT)
            buf.append(edesc)
            buf.append(event.seq)
            buf.append(t)
            self._last_seq = event.seq
            self.records += 1
            if len(buf) >= CHUNK_INTS:
                flush_all()

        return record_event

    def _access_barrier_batch_fanout(self) -> Callable[..., None]:
        bufs = self._bufs
        parts = self._part_by_desc
        tids = self._tids
        get_tid = self._tid
        by_site = self._desc_by_site
        register = self._register_desc
        flush_all = self._flush_all

        def record_batch(
            seq: int,
            thread: str,
            obj: Any,
            fieldname: str,
            kind: AccessKind,
            site: Site,
            address: Tuple[int, str],
            site_str: str,
            is_array: bool,
        ) -> None:
            sub = by_site.get(site)
            desc = sub.get(address) if sub is not None else None
            if desc is None:
                desc = register(site, address, kind, is_array)
            t = tids.get(thread)
            if t is None:
                t = get_tid(thread)
            buf = bufs[parts[desc]]
            buf.append(desc)
            buf.append(seq)
            buf.append(t)
            self._last_seq = seq
            self.records += 1
            if len(buf) >= CHUNK_INTS:
                flush_all()

        return record_batch

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _life(self, *rec: int) -> None:
        stamp = self._last_seq
        if self._partitions == 1:
            buf = self._buf
            for v in rec:
                buf.append(v)
            buf.append(stamp)
        else:
            for buf in self._bufs:
                for v in rec:
                    buf.append(v)
                buf.append(stamp)

    def on_thread_start(self, thread_name: str) -> None:
        self._life(T_TSTART, self._tid(thread_name))

    def on_thread_end(self, thread_name: str) -> None:
        self._life(T_TEND, self._tid(thread_name))

    def on_method_enter(self, thread_name: str, method: str, depth: int) -> None:
        self._life(T_ENTER, self._tid(thread_name), self._mid(method), depth)

    def on_method_exit(self, thread_name: str, method: str, depth: int) -> None:
        self._life(T_EXIT, self._tid(thread_name), self._mid(method), depth)

    def on_thread_blocked(self, thread_name: str) -> None:
        self._life(T_BLOCK, self._tid(thread_name), 1)

    def on_thread_unblocked(self, thread_name: str) -> None:
        self._life(T_BLOCK, self._tid(thread_name), 0)

    def on_execution_end(self) -> None:
        self._life(T_END)
        if self._partitions == 1:
            self._flush()
        else:
            self._flush_all()


__all__ = ["ShardStreamRecorder"]
