"""Coordinator-side stream recorder.

Replaces the in-process ICD as the executor's single listener when the
run is sharded: every listener-visible fact — accesses, method
enter/exit, thread lifecycle, blocked-state flips — is serialized into
the :mod:`repro.shard.wire` record stream and shipped to the analysis
shard.  The executor itself is untouched; because analyses never feed
back into scheduling, the recorded execution is step-for-step the one
the serial run would produce.

The hot path is the batch barrier: the batch executor hands over
pre-interned column values, the recorder resolves the ``(site,
address)`` pair to an access descriptor (two dict probes; the pair
determines object, field, kind and site — kind is static per site)
and appends three ints.  The event path (sync pseudo-accesses,
generator frames, first accesses) interns a descriptor per ``(site,
oid, field, kind)`` and appends four.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Dict, Optional, Tuple

from repro.runtime.events import AccessEvent, AccessKind, Site
from repro.runtime.listeners import ExecutionListener
from repro.shard.wire import (
    CHUNK_INTS,
    T_BLOCK,
    T_END,
    T_ENTER,
    T_EVENT,
    T_EXIT,
    T_TEND,
    T_TSTART,
    encode_chunk,
)


class ShardStreamRecorder(ExecutionListener):
    """Serialize the execution's listener stream into record chunks.

    Args:
        sink: callable receiving ``(defs, chunk_bytes)`` per flush;
            ``defs`` is a tuple of definition tuples (see module docs
            of :mod:`repro.shard.wire`) or ``()``.
    """

    def __init__(self, sink: Callable[[tuple, bytes], None]) -> None:
        self._sink = sink
        self._buf = array("q")
        self._defs: list = []
        # interning tables; ids are dense and defined before first use
        self._tids: Dict[str, int] = {}
        self._mids: Dict[str, int] = {}
        #: batch path: site -> {address -> desc}
        self._desc_by_site: Dict[Site, Dict[Tuple[int, str], int]] = {}
        #: event path: (site, oid, fieldname, kindval) -> edesc
        self._event_descs: Dict[tuple, int] = {}
        self._next_desc = 0
        self._next_edesc = 0
        # wire accounting (obs `shard.*` counters)
        self.records = 0
        self.chunks = 0
        self.bytes_shipped = 0
        self.defs_shipped = 0

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def _tid(self, thread: str) -> int:
        t = self._tids.get(thread)
        if t is None:
            t = self._tids[thread] = len(self._tids)
            self._defs.append(("t", t, thread))
        return t

    def _mid(self, method: str) -> int:
        m = self._mids.get(method)
        if m is None:
            m = self._mids[method] = len(self._mids)
            self._defs.append(("m", m, method))
        return m

    def _register_desc(
        self,
        site: Site,
        address: Tuple[int, str],
        kind: AccessKind,
        is_array: bool,
    ) -> int:
        desc = self._next_desc
        self._next_desc = desc + 1
        self._desc_by_site.setdefault(site, {})[address] = desc
        self._defs.append(
            (
                "d",
                desc,
                address[0],
                address[1],
                kind.value,
                site.method,
                site.index,
                1 if is_array else 0,
            )
        )
        return desc

    def _register_edesc(self, key: tuple, event: AccessEvent) -> int:
        edesc = self._next_edesc
        self._next_edesc = edesc + 1
        self._event_descs[key] = edesc
        site = event.site
        self._defs.append(
            (
                "e",
                edesc,
                event.obj.oid,
                event.fieldname,
                event.kind.value,
                site.method,
                site.index,
                1 if event.is_sync else 0,
                1 if event.is_array else 0,
            )
        )
        return edesc

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        buf = self._buf
        if not buf and not self._defs:
            return
        defs = tuple(self._defs)
        self._defs.clear()
        payload = encode_chunk(buf)
        del buf[:]
        self.chunks += 1
        self.bytes_shipped += len(payload)
        self.defs_shipped += len(defs)
        self._sink(defs, payload)

    # ------------------------------------------------------------------
    # barriers
    # ------------------------------------------------------------------
    def access_barrier(self) -> Callable[[AccessEvent], None]:
        buf = self._buf
        append = buf.append
        tids = self._tids
        get_tid = self._tid
        event_descs = self._event_descs
        register = self._register_edesc
        flush = self._flush

        def record_event(event: AccessEvent) -> None:
            key = (event.site, event.obj.oid, event.fieldname,
                   event.kind.value)
            edesc = event_descs.get(key)
            if edesc is None:
                edesc = register(key, event)
            t = tids.get(event.thread_name)
            if t is None:
                t = get_tid(event.thread_name)
            append(T_EVENT)
            append(edesc)
            append(event.seq)
            append(t)
            self.records += 1
            if len(buf) >= CHUNK_INTS:
                flush()

        return record_event

    def access_barrier_batch(self) -> Optional[Callable[..., None]]:
        buf = self._buf
        append = buf.append
        tids = self._tids
        get_tid = self._tid
        by_site = self._desc_by_site
        register = self._register_desc
        flush = self._flush

        def record_batch(
            seq: int,
            thread: str,
            obj: Any,
            fieldname: str,
            kind: AccessKind,
            site: Site,
            address: Tuple[int, str],
            site_str: str,
            is_array: bool,
        ) -> None:
            sub = by_site.get(site)
            desc = sub.get(address) if sub is not None else None
            if desc is None:
                desc = register(site, address, kind, is_array)
            t = tids.get(thread)
            if t is None:
                t = get_tid(thread)
            append(desc)
            append(seq)
            append(t)
            self.records += 1
            if len(buf) >= CHUNK_INTS:
                flush()

        return record_batch

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_thread_start(self, thread_name: str) -> None:
        self._buf.append(T_TSTART)
        self._buf.append(self._tid(thread_name))

    def on_thread_end(self, thread_name: str) -> None:
        self._buf.append(T_TEND)
        self._buf.append(self._tid(thread_name))

    def on_method_enter(self, thread_name: str, method: str, depth: int) -> None:
        buf = self._buf
        buf.append(T_ENTER)
        buf.append(self._tid(thread_name))
        buf.append(self._mid(method))
        buf.append(depth)

    def on_method_exit(self, thread_name: str, method: str, depth: int) -> None:
        buf = self._buf
        buf.append(T_EXIT)
        buf.append(self._tid(thread_name))
        buf.append(self._mid(method))
        buf.append(depth)

    def on_thread_blocked(self, thread_name: str) -> None:
        buf = self._buf
        buf.append(T_BLOCK)
        buf.append(self._tid(thread_name))
        buf.append(1)

    def on_thread_unblocked(self, thread_name: str) -> None:
        buf = self._buf
        buf.append(T_BLOCK)
        buf.append(self._tid(thread_name))
        buf.append(0)

    def on_execution_end(self) -> None:
        self._buf.append(T_END)
        self._flush()


__all__ = ["ShardStreamRecorder"]
