"""A log shard: address-partitioned log construction plus PCD jobs.

Each log shard owns a slice of the ``(oid, field)`` address space.  It
consumes the analysis shard's record stream and rebuilds, for its
addresses only, exactly what the serial ICD's logging tail would have
built: the duplicate-elision filter replayed bit-for-bit from the
broadcast window bumps (transaction starts and IDG edges), surviving
entries appended as ``(desc, seq)`` column pairs per transaction, and
GC sweeps freeing swept columns at the serial collection points.

When the analysis shard captures a component (a ``W_JOB`` sentinel in
the record stream), the sentinel's stream position *is* the log
cutoff: every shard slices its members' columns as they stand and
ships the slices to the shard that owns the component (round-robin by
capture ordinal).  Because eager SCC detection re-captures a growing
component many times, both the slices and the owner's reassembly are
*incremental*: a shard only ships the column suffix the owner has not
seen yet (tracked per ``(owner, transaction)``), and the owner keeps
one cached serial log per transaction, extended suffix-only at each
job — every global sequence number in a new slice is greater than
everything already built, so extension is a sort of the new pairs
plus a mark-first merge with the spec's new edge marks.  Each
transaction's log is therefore constructed once, not once per job.
The owner then runs the *real* PCD replay on the assembled component.
Cycle records return to the analyzer tagged with their PDG cycle keys
so the merge can apply the serial run's global cycle deduplication.
"""

from __future__ import annotations

import time
import traceback
from array import array
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.core.pcd import PCD
from repro.core.rwlog import AccessEntry, EdgeMark, ReadWriteLog
from repro.core.transactions import IdgEdge, Transaction
from repro.errors import OutOfMemoryBudget
from repro.obs.registry import use_registry
from repro.obs.wire import (
    child_registry,
    sample_depth,
    stalled_get,
    telemetry_capsule,
)
from repro.runtime.events import AccessKind
from repro.shard.wire import (
    W_ADVANCE,
    W_EDGE,
    W_JOB,
    W_SWEEP,
    W_TXEND,
    W_TXSTART,
    decode_chunk,
    pack_columns,
)


class _KeyedPCD(PCD):
    """PCD that tags each accepted cycle record with its dedup key.

    The serial run dedups cycles globally through one PCD instance; a
    log shard only sees its own jobs, so it exports the keys (frozensets
    of ``(src_tx_id, dst_tx_id)`` PDG edge pairs — plain ints, stable
    across processes) and the analyzer's merge re-applies the global
    first-occurrence rule in capture order.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._keys: List[frozenset] = []

    def _report(self, cycle, tx_by_id):
        key = frozenset((e.src, e.dst) for e in cycle)
        record = super()._report(cycle, tx_by_id)
        if record is not None:
            self._keys.append(key)
        return record

    def process_keyed(self, component) -> List[tuple]:
        self._keys = []
        records = self.process(component)
        return list(zip(self._keys, records))


class LogShard:
    """Single log shard's state machine (see module docstring)."""

    def __init__(self, widx: int, nworkers: int, capture: bool,
                 worker_queues, q_analyzer, *,
                 pcd_memory_budget: Optional[int] = None,
                 use_engine: bool = True, obs=None,
                 nparts: int = 0, q_in=None) -> None:
        self.widx = widx
        self.nworkers = nworkers
        self.capture = capture
        self.worker_queues = worker_queues
        self.q_analyzer = q_analyzer
        # partitioned analysis plane (analysis shards > 1): absorbed
        # records arrive out-of-band in per-partition "P" streams and
        # are drained back into global seq order at W_ADVANCE barriers
        self.nparts = nparts
        self.q_in = q_in
        #: per partition worker: buffered (seq, desc, tid) triples
        self._pq: List[deque] = [deque() for _ in range(nparts)]
        #: per partition worker: forwarding watermark (no triple with a
        #: seq <= the watermark will ever arrive after it)
        self._pwm: List[int] = [0] * nparts
        #: owner "C"/"F" messages pulled off q_in while blocked inside
        #: a drain; replayed by the main loop in arrival order
        self.deferred: deque = deque()
        self.deferred_final: Optional[int] = None
        #: this shard's registry (None when telemetry is off)
        self.obs = obs
        #: chunks consumed so far — the flow-arrow id for this shard's
        #: chunk c is ``widx * 1_000_000 + c`` (matches the analyzer's
        #: producer-side count; the queue is FIFO)
        self.chunks_in = 0
        # peer slice mesh accounting (deterministic: suffix counters)
        self.slice_msgs = 0
        self.slice_bytes = 0

        #: worker desc -> (kind, oid, fieldname, site_str, address)
        self.descs: Dict[int, tuple] = {}
        self._addr_intern: Dict[Tuple[int, str], Tuple[int, str]] = {}
        # elision replay (serial ElisionFilter semantics, keyed by tid)
        self.ts_by_tid: Dict[int, int] = {}
        self.last_by_tid: Dict[int, Dict[Tuple[int, str],
                                         Tuple[int, AccessKind]]] = {}
        self.cur_tx: Dict[int, int] = {}
        #: tx_id -> flat [desc, seq, ...] column of surviving entries
        self.cols: Dict[int, array] = {}
        # serial-stat shares owed back to the analyzer
        self.entries = 0
        self.el_logged = 0
        self.el_elided = 0
        self.live = 0
        self.integral = 0
        self.collected = 0
        self.samples: List[int] = []
        #: edge order -> (src column pairs, dst column pairs) at edge
        #: time; lifts stub mark indices to full-log indices (capture)
        self.partials: Dict[int, Tuple[int, int]] = {}
        # component assembly
        self.k_total: Optional[int] = None
        #: ordinal -> member spec (full members for my jobs; the spec
        #: arrives via the defs side-channel of the chunk whose payload
        #: carries the matching W_JOB sentinel)
        self.pending_specs: Dict[int, object] = {}
        self.specs: Dict[int, list] = {}
        #: ordinal -> {source shard -> column-suffix payload}
        self.slices: Dict[int, Dict[int, object]] = {}
        #: per assigned shard: tx_id -> ints of its column already
        #: shipped there (suffix-only slicing)
        self.sent_to: List[Dict[int, int]] = [{} for _ in range(nworkers)]
        #: tx_id -> cached serial log entries; the list is shared
        #: across this shard's jobs and extended suffix-only, so each
        #: log is constructed once
        self.built: Dict[int, list] = {}
        #: tx_id -> accumulated (order, dst_tx_id) out-edges (specs
        #: ship unfiltered suffixes; each job wires a recorded prefix
        #: of this list filtered against its member set)
        self.outs: Dict[int, list] = {}
        self.done: Dict[int, bool] = {}
        self.next_job = widx  # ordinals are assigned round-robin
        self.pcd = _KeyedPCD(pcd_memory_budget, use_engine=use_engine)

    # ------------------------------------------------------------------
    # record stream
    # ------------------------------------------------------------------
    def handle_defs(self, defs: tuple) -> None:
        for df in defs:
            if df[0] == "d":
                _, d, oid, fieldname, kindval, site_str = df
                address = (oid, fieldname)
                address = self._addr_intern.setdefault(address, address)
                self.descs[d] = (AccessKind(kindval), oid, fieldname,
                                 site_str, address)
            else:  # "k": member spec for the W_JOB sentinel in this chunk
                self.pending_specs[df[1]] = df[2]

    def handle_chunk(self, payload: bytes) -> None:
        obs = self.obs
        if obs is not None:
            chunk_started = time.perf_counter()
            obs.emit_flow(
                "shard.wchunk", chunk_started - obs.epoch,
                self.widx * 1_000_000 + self.chunks_in, "f",
            )
            self.chunks_in += 1
        arr = decode_chunk(payload)
        descs = self.descs
        ts_by_tid = self.ts_by_tid
        last_by_tid = self.last_by_tid
        cur_tx = self.cur_tx
        cols = self.cols
        _WRITE = AccessKind.WRITE
        i = 0
        n = len(arr)
        while i < n:
            v = arr[i]
            if v >= 0:
                seq = arr[i + 1]
                tid = arr[i + 2]
                i += 3
                kind = descs[v][0]
                address = descs[v][4]
                per_thread = last_by_tid.get(tid)
                if per_thread is None:
                    per_thread = last_by_tid[tid] = {}
                ts = ts_by_tid.get(tid, 0)
                last = per_thread.get(address)
                if last is not None and last[0] == ts and (
                    last[1] is kind or last[1] is _WRITE
                ):
                    self.el_elided += 1
                    continue
                per_thread[address] = (ts, kind)
                self.el_logged += 1
                col = cols.get(cur_tx[tid])
                if col is None:
                    col = cols[cur_tx[tid]] = array("q")
                col.append(v)
                col.append(seq)
                self.entries += 1
                self.live += 1
            elif v == W_TXSTART:
                tid = arr[i + 1]
                cur_tx[tid] = arr[i + 2]
                ts_by_tid[tid] = ts_by_tid.get(tid, 0) + 1
                i += 3
            elif v == W_TXEND:
                self.integral += self.live
                i += 1
            elif v == W_JOB:
                ordinal = arr[i + 1]
                i += 2
                self.handle_component(
                    ordinal, self.pending_specs.pop(ordinal)
                )
            elif v == W_EDGE:
                stid = arr[i + 1]
                dtid = arr[i + 2]
                ts_by_tid[stid] = ts_by_tid.get(stid, 0) + 1
                ts_by_tid[dtid] = ts_by_tid.get(dtid, 0) + 1
                if self.capture:
                    order = arr[i + 3]
                    scol = self.cols.get(arr[i + 4])
                    dcol = self.cols.get(arr[i + 5])
                    self.partials[order] = (
                        0 if scol is None else len(scol) // 2,
                        0 if dcol is None else len(dcol) // 2,
                    )
                i += 6
            elif v == W_ADVANCE:
                self._drain_until(arr[i + 1])
                i += 2
            else:  # W_SWEEP
                # the serial peak sample is taken just before the sweep
                self.samples.append(self.live)
                count = arr[i + 1]
                for j in range(i + 2, i + 2 + count):
                    col = cols.pop(arr[j], None)
                    if col is not None:
                        swept = len(col) // 2
                        self.live -= swept
                        self.collected += swept
                i += 2 + count
        if obs is not None:
            now = time.perf_counter()
            obs.observe("shard.log.chunk.seconds", now - chunk_started)
            obs.emit_event("shard.log.chunk", "shard",
                           ts=chunk_started - obs.epoch,
                           dur=now - chunk_started,
                           args={"ordinal": self.chunks_in - 1})

    # ------------------------------------------------------------------
    # partitioned analysis plane: absorbed-record drain
    # ------------------------------------------------------------------
    def _access(self, v: int, seq: int, tid: int) -> None:
        """One absorbed record through the logging tail.

        Mirror of the inline ``v >= 0`` body in :meth:`handle_chunk`
        (kept inline there so the single-analyzer hot path pays no
        method call per record).
        """
        meta = self.descs[v]
        kind = meta[0]
        address = meta[4]
        per_thread = self.last_by_tid.get(tid)
        if per_thread is None:
            per_thread = self.last_by_tid[tid] = {}
        ts = self.ts_by_tid.get(tid, 0)
        last = per_thread.get(address)
        if last is not None and last[0] == ts and (
            last[1] is kind or last[1] is AccessKind.WRITE
        ):
            self.el_elided += 1
            return
        per_thread[address] = (ts, kind)
        self.el_logged += 1
        tx_id = self.cur_tx[tid]
        col = self.cols.get(tx_id)
        if col is None:
            col = self.cols[tx_id] = array("q")
        col.append(v)
        col.append(seq)
        self.entries += 1
        self.live += 1

    def _handle_p(self, aidx: int, defs: tuple, payload: bytes,
                  watermark: int) -> None:
        if defs:
            self.handle_defs(defs)
        arr = decode_chunk(payload)
        q = self._pq[aidx]
        for i in range(0, len(arr), 3):
            q.append((arr[i + 1], arr[i], arr[i + 2]))
        self._pwm[aidx] = watermark

    def _drain_until(self, s: int) -> None:
        """Block until every partition stream has advanced past ``s``,
        then fold the buffered absorbed records with seq <= ``s`` into
        the log state, merged across partitions by seq.

        The owner placed the W_ADVANCE barrier immediately before the
        record at position ``s``, so everything drained here precedes
        everything the owner's dispatch emits after it — the byte-exact
        serial stream order.  Owner messages pulled off the queue while
        blocked are deferred to the main loop.
        """
        pwm = self._pwm
        while min(pwm) < s:
            msg = stalled_get(self.q_in, self.obs,
                              "shard.stall.logshard.get.seconds")
            tag = msg[0]
            if tag == "P":
                self._handle_p(msg[1], msg[2], msg[3], msg[4])
            elif tag == "S":
                self.handle_slice(msg[1], msg[2], msg[3])
            elif tag == "F":
                self.deferred_final = msg[1]
            else:  # "C" — owner records beyond this barrier
                self.deferred.append(msg)
        pq = self._pq
        while True:
            best = -1
            bq = None
            for q in pq:
                if q:
                    seq = q[0][0]
                    if bq is None or seq < best:
                        best = seq
                        bq = q
            if bq is None or best > s:
                break
            seq, d, tid = bq.popleft()
            self._access(d, seq, tid)

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------
    def handle_component(self, ordinal: int, spec) -> None:
        """Stage this shard's column suffixes for one captured job.

        ``spec`` is the full member list when the job is assigned here,
        else just the member tx ids.  Only the suffix beyond what the
        assigned shard has already been sent is shipped (or staged
        locally); the per-owner counters make the suffixes disjoint and
        complete, so the owner can extend its cached logs append-only.
        Staging copies eagerly — columns keep growing and may be swept
        before the job actually runs.
        """
        assigned = ordinal % self.nworkers
        cols = self.cols
        sent = self.sent_to[assigned]
        if assigned == self.widx:
            staged: Dict[int, list] = {}
            job_members = []
            for tx_id, tn, method, is_unary, marks_new, out_new in spec:
                col = cols.get(tx_id)
                if col:
                    n = len(col)
                    start = sent.get(tx_id, 0)
                    if n > start:
                        staged[tx_id] = [
                            (col[i + 1], col[i]) for i in range(start, n, 2)
                        ]
                        sent[tx_id] = n
                outs = self.outs.get(tx_id)
                if out_new:
                    if outs is None:
                        outs = self.outs[tx_id] = []
                    outs.extend(out_new)
                # the recorded length pins this job's edge cutoff: the
                # list may grow for later pending jobs before this one
                # has all its slices and runs
                job_members.append(
                    (tx_id, tn, method, is_unary, marks_new,
                     0 if outs is None else len(outs))
                )
            self.specs[ordinal] = job_members
            self.slices.setdefault(ordinal, {})[self.widx] = staged
        else:
            payload: Dict[int, bytes] = {}
            for tx_id in spec:
                col = cols.get(tx_id)
                if not col:
                    continue
                n = len(col)
                start = sent.get(tx_id, 0)
                if n > start:
                    payload[tx_id] = col[start:n].tobytes()
                    sent[tx_id] = n
            self.slice_msgs += 1
            for raw in payload.values():
                self.slice_bytes += len(raw)
            self.worker_queues[assigned].put(
                ("S", ordinal, self.widx, payload)
            )
            if self.obs is not None:
                sample_depth(self.obs, "shard.queue.mesh.depth",
                             self.worker_queues[assigned])

    def handle_slice(self, ordinal: int, from_widx: int,
                     payload: Dict[int, bytes]) -> None:
        self.slices.setdefault(ordinal, {})[from_widx] = payload

    def ready(self, ordinal: int) -> bool:
        return (
            ordinal in self.specs
            and len(self.slices.get(ordinal, ())) == self.nworkers
        )

    def run_ready_jobs(self) -> None:
        # queues are per-producer FIFO and the analyzer emits K messages
        # in ordinal order, so readiness is monotone in the ordinal —
        # processing in ordinal order keeps the per-shard PCD instance's
        # cycle dedup consistent with the serial first-occurrence order
        while self.ready(self.next_job):
            ordinal = self.next_job
            self._run_job(ordinal, self.specs.pop(ordinal),
                          self.slices.pop(ordinal))
            self.done[ordinal] = True
            self.next_job += self.nworkers

    def _note_job(self, ordinal: int, started: float) -> None:
        """Record one PCD job's span + the return-channel depth."""
        obs = self.obs
        if obs is None:
            return
        now = time.perf_counter()
        obs.observe("shard.pcd.job.seconds", now - started)
        obs.emit_event("shard.pcd.job", "shard", ts=started - obs.epoch,
                       dur=now - started, args={"ordinal": ordinal})
        sample_depth(obs, "shard.queue.w2a.depth", self.q_analyzer)

    def _run_job(self, ordinal: int, members: list,
                 shard_slices: Dict[int, Dict[int, object]]) -> None:
        if self.obs is not None:
            job_started = time.perf_counter()
            # arrow from the analyzer's job announcement to the replay
            self.obs.emit_flow("shard.job", job_started - self.obs.epoch,
                               ordinal, "f")
        else:
            job_started = 0.0
        component: List[Transaction] = []
        tx_by_id: Dict[int, Transaction] = {}
        for tx_id, thread_name, method, is_unary, _marks, _nout in members:
            tx = Transaction(tx_id, thread_name, method, is_unary)
            tx_by_id[tx_id] = tx
            component.append(tx)
        # wire up member-internal IDG edges (all PCD reads: .order and
        # .dst.tx_id for merge constraints) — the accumulated edge list
        # up to this job's recorded cutoff, filtered to the member set
        all_outs = self.outs
        for tx_id, _tn, _m, _u, _marks, nout in members:
            if not nout:
                continue
            src = tx_by_id[tx_id]
            outs = all_outs[tx_id]
            for i in range(nout):
                order, dst_id = outs[i]
                dst = tx_by_id.get(dst_id)
                if dst is not None:
                    src.out_edges.append(IdgEdge(src, dst, "", order))
        # extend each member's cached serial log with this job's column
        # suffixes (merged by seq; unique per log) and the spec's new
        # edge marks, mark-first on equal seq.  Everything new carries a
        # seq greater than everything built — the per-owner suffix
        # counters guarantee it — so appending preserves serial order.
        ordered = [shard_slices[s] for s in sorted(shard_slices)]
        built = self.built
        descs = self.descs
        for tx_id, _tn, _m, _u, marks, _nout in members:
            entries = built.get(tx_id)
            if entries is None:
                entries = built[tx_id] = []
            pairs: List[Tuple[int, int]] = []
            for sl in ordered:
                raw = sl.get(tx_id)
                if raw is None:
                    continue
                if isinstance(raw, bytes):
                    arr = array("q")
                    arr.frombytes(raw)
                    for i in range(0, len(arr), 2):
                        pairs.append((arr[i + 1], arr[i]))  # (seq, desc)
                else:  # locally staged: already (seq, desc) tuples
                    pairs.extend(raw)
            if pairs or marks:
                pairs.sort()
                mi, pi = 0, 0
                nm, np_ = len(marks), len(pairs)
                while mi < nm and pi < np_:
                    if marks[mi][2] <= pairs[pi][0]:
                        order, is_source, seq = marks[mi]
                        entries.append(EdgeMark(order, is_source, seq))
                        mi += 1
                    else:
                        seq, d = pairs[pi]
                        kind, oid, fieldname, site_str, address = descs[d]
                        entries.append(
                            AccessEntry(kind, oid, fieldname, seq, site_str,
                                        address)
                        )
                        pi += 1
                for order, is_source, seq in marks[mi:]:
                    entries.append(EdgeMark(order, is_source, seq))
                for seq, d in pairs[pi:]:
                    kind, oid, fieldname, site_str, address = descs[d]
                    entries.append(
                        AccessEntry(kind, oid, fieldname, seq, site_str,
                                    address)
                    )
            log = ReadWriteLog()
            log.entries = entries
            tx_by_id[tx_id].log = log
        try:
            pairs_out = self.pcd.process_keyed(component)
        except OutOfMemoryBudget as exc:
            self._note_job(ordinal, job_started)
            self.q_analyzer.put(
                ("J", ordinal, "error",
                 (exc.component, exc.used, exc.budget))
            )
            return
        self._note_job(ordinal, job_started)
        self.q_analyzer.put(("J", ordinal, "ok", pairs_out))

    # ------------------------------------------------------------------
    def finished(self) -> bool:
        if self.k_total is None:
            return False
        ordinal = self.widx
        while ordinal < self.k_total:
            if ordinal not in self.done:
                return False
            ordinal += self.nworkers
        return True

    def final_bundle(self) -> dict:
        return {
            "entries": self.entries,
            "el_logged": self.el_logged,
            "el_elided": self.el_elided,
            "integral": self.integral,
            "collected": self.collected,
            "samples": self.samples,
            "partials": self.partials,
            "pcd_stats": self.pcd.stats,
            "cols": (
                {tx_id: pack_columns(col)
                 for tx_id, col in self.cols.items() if col}
                if self.capture else {}
            ),
            "cpu_seconds": time.process_time(),
            "slice_msgs": self.slice_msgs,
            "slice_bytes": self.slice_bytes,
            "telemetry": telemetry_capsule(self.obs),
        }


def run_worker(cfg: dict, widx: int, q_in, worker_queues, q_analyzer,
               q_result) -> None:
    """Log-shard main loop."""
    try:
        obs = child_registry(cfg.get("obs"), f"shard-log-{widx}")
        if obs is not None:
            use_registry(obs)
            run_started = time.perf_counter()
        analysis_shards = cfg.get("analysis_shards", 1)
        shard = LogShard(
            widx, cfg["shards"] - 1, cfg["capture"], worker_queues, q_analyzer,
            pcd_memory_budget=cfg["pcd_memory_budget"],
            use_engine=cfg["use_engine"], obs=obs,
            nparts=analysis_shards if analysis_shards > 1 else 0,
            q_in=q_in,
        )
        while not shard.finished():
            # a drain barrier may have pulled owner messages off the
            # queue out of turn; replay those first, in arrival order
            if shard.deferred:
                msg = shard.deferred.popleft()
            elif shard.deferred_final is not None:
                msg = ("F", shard.deferred_final)
                shard.deferred_final = None
            else:
                msg = stalled_get(q_in, obs,
                                  "shard.stall.logshard.get.seconds")
            tag = msg[0]
            if tag == "C":
                _, defs, payload = msg
                if defs:
                    shard.handle_defs(defs)
                shard.handle_chunk(payload)
                shard.run_ready_jobs()
            elif tag == "P":
                shard._handle_p(msg[1], msg[2], msg[3], msg[4])
            elif tag == "S":
                shard.handle_slice(msg[1], msg[2], msg[3])
                shard.run_ready_jobs()
            else:  # "F"
                shard.k_total = msg[1]
                shard.run_ready_jobs()
        if obs is not None:
            # emitted before final_bundle builds the telemetry capsule
            now = time.perf_counter()
            obs.observe("shard.log.run.seconds", now - run_started)
            obs.emit_event("shard.log.run", "shard",
                           ts=run_started - obs.epoch, dur=now - run_started,
                           args={"chunks": shard.chunks_in})
        q_analyzer.put(("W", widx, shard.final_bundle()))
    except BaseException as exc:  # noqa: BLE001 - crosses a process
        q_result.put(
            ("E", (type(exc).__name__, getattr(exc, "args", ()),
                   traceback.format_exc()))
        )


__all__ = ["LogShard", "run_worker", "_KeyedPCD"]
