"""Sharded single-execution analysis.

``DOUBLECHECKER_SHARDS=N`` (or ``DoubleChecker(... ) .run_single``
under ``--shards N``) splits the single-run ICD+PCD pipeline across
``N`` worker processes plus the executing (coordinator) process:

* **Coordinator** — the unmodified executor runs the program and, in
  place of the in-process ICD, a :class:`~repro.shard.recorder.
  ShardStreamRecorder` listener serializes the instruction stream —
  accesses as pre-interned 3-int column records, method/thread
  lifecycle and blocked-state flips as tagged records — into flat
  ``array('q')`` chunks shipped over a queue (no per-event pickling).
* **Analysis shard (shard 0)** — one worker replays the stream through
  the *real* ICD (Octet state machine, transaction demarcation, IDG,
  SCC detection, GC), with the read/write-logging tail replaced by
  emission of shard-routed log records, and orchestrates PCD: each
  cyclic SCC is captured (members, edge marks, cross-edge anchors) and
  fanned out as a numbered job.
* **Log shards (shards 1..N-1)** — each owns a slice of the ``(oid,
  field)`` address space (:func:`~repro.shard.wire.shard_of`) and
  builds its slice of every read/write log — replaying the elision
  filter exactly — then replays assigned PCD jobs with the real
  :class:`~repro.core.pcd.PCD` on reconstructed logs.

``DOUBLECHECKER_ANALYSIS_SHARDS=A`` (or ``--analysis-shards A``)
additionally splits the analysis shard itself into ``A`` partition
workers plus one exchange owner: each worker owns a deterministic
per-object partition (:func:`~repro.shard.wire.partition_of`) of Octet
ownership metadata, absorbs provably fast-path accesses locally
(shipping their log records straight to the owning log shard), and
forwards everything dependence-relevant to the exchange owner, which
k-way merges the ``A`` streams back into global seq order and runs the
real ICD + cycle engine — so SCC verdicts, PCD jobs, and GC stay
byte-identical to serial at any ``(shards, analysis-shards)`` pair.
``A=1`` (the default) runs the single-analyzer pipeline unchanged.

Results merge deterministically: PCD job results are folded in
component-capture (ordinal) order with the serial run's global
cycle-deduplication applied at the merge, and every counter that the
sharded split distributes (log entries, elision, GC footprint
integrals and peaks) is reconciled from per-shard partials into
exactly the serial totals.  ``DOUBLECHECKER_SHARDS=1`` (the default)
runs the existing single-process path with zero new overhead — the
same escape-hatch pattern as ``DOUBLECHECKER_BATCH_EXECUTOR``.
"""

from __future__ import annotations

import os
from typing import Optional

#: environment escape hatch mirroring DOUBLECHECKER_BATCH_EXECUTOR
SHARDS_ENV = "DOUBLECHECKER_SHARDS"

#: partition count for the analysis plane (1 = single analyzer)
ANALYSIS_SHARDS_ENV = "DOUBLECHECKER_ANALYSIS_SHARDS"

#: hard cap — more shards than this is certainly a typo, and each
#: shard is a full OS process
MAX_SHARDS = 64


def resolve_shards(shards: Optional[int] = None) -> int:
    """Validate and resolve the shard count (explicit arg wins, then
    ``$DOUBLECHECKER_SHARDS``, then 1 = the serial path).

    Raises :class:`ValueError` with a readable message on anything that
    is not an integer in ``[1, MAX_SHARDS]`` — the CLI preflights with
    this so bad values exit 2 before any work starts, exactly like
    ``--jobs``.
    """
    if shards is None:
        raw = os.environ.get(SHARDS_ENV)
        if raw is None or raw.strip() == "":
            return 1
        try:
            shards = int(raw)
        except ValueError:
            raise ValueError(
                f"{SHARDS_ENV} must be an integer, got {raw!r}"
            ) from None
    if shards < 1:
        raise ValueError(f"--shards must be >= 1, got {shards}")
    if shards > MAX_SHARDS:
        raise ValueError(
            f"--shards must be <= {MAX_SHARDS}, got {shards} "
            f"(each shard is a worker process)"
        )
    return shards


def resolve_analysis_shards(analysis_shards: Optional[int] = None) -> int:
    """Validate and resolve the analysis-plane partition count
    (explicit arg wins, then ``$DOUBLECHECKER_ANALYSIS_SHARDS``, then
    1 = the single-analyzer pipeline).  Same contract and error shape
    as :func:`resolve_shards`."""
    if analysis_shards is None:
        raw = os.environ.get(ANALYSIS_SHARDS_ENV)
        if raw is None or raw.strip() == "":
            return 1
        try:
            analysis_shards = int(raw)
        except ValueError:
            raise ValueError(
                f"{ANALYSIS_SHARDS_ENV} must be an integer, got {raw!r}"
            ) from None
    if analysis_shards < 1:
        raise ValueError(
            f"--analysis-shards must be >= 1, got {analysis_shards}"
        )
    if analysis_shards > MAX_SHARDS:
        raise ValueError(
            f"--analysis-shards must be <= {MAX_SHARDS}, got "
            f"{analysis_shards} (each partition is a worker process)"
        )
    return analysis_shards


__all__ = [
    "SHARDS_ENV", "ANALYSIS_SHARDS_ENV", "MAX_SHARDS",
    "resolve_shards", "resolve_analysis_shards",
]
