"""Sharded single-execution analysis.

``DOUBLECHECKER_SHARDS=N`` (or ``DoubleChecker(... ) .run_single``
under ``--shards N``) splits the single-run ICD+PCD pipeline across
``N`` worker processes plus the executing (coordinator) process:

* **Coordinator** — the unmodified executor runs the program and, in
  place of the in-process ICD, a :class:`~repro.shard.recorder.
  ShardStreamRecorder` listener serializes the instruction stream —
  accesses as pre-interned 3-int column records, method/thread
  lifecycle and blocked-state flips as tagged records — into flat
  ``array('q')`` chunks shipped over a queue (no per-event pickling).
* **Analysis shard (shard 0)** — one worker replays the stream through
  the *real* ICD (Octet state machine, transaction demarcation, IDG,
  SCC detection, GC), with the read/write-logging tail replaced by
  emission of shard-routed log records, and orchestrates PCD: each
  cyclic SCC is captured (members, edge marks, cross-edge anchors) and
  fanned out as a numbered job.
* **Log shards (shards 1..N-1)** — each owns a slice of the ``(oid,
  field)`` address space (:func:`~repro.shard.wire.shard_of`) and
  builds its slice of every read/write log — replaying the elision
  filter exactly — then replays assigned PCD jobs with the real
  :class:`~repro.core.pcd.PCD` on reconstructed logs.

Results merge deterministically: PCD job results are folded in
component-capture (ordinal) order with the serial run's global
cycle-deduplication applied at the merge, and every counter that the
sharded split distributes (log entries, elision, GC footprint
integrals and peaks) is reconciled from per-shard partials into
exactly the serial totals.  ``DOUBLECHECKER_SHARDS=1`` (the default)
runs the existing single-process path with zero new overhead — the
same escape-hatch pattern as ``DOUBLECHECKER_BATCH_EXECUTOR``.
"""

from __future__ import annotations

import os
from typing import Optional

#: environment escape hatch mirroring DOUBLECHECKER_BATCH_EXECUTOR
SHARDS_ENV = "DOUBLECHECKER_SHARDS"

#: hard cap — more shards than this is certainly a typo, and each
#: shard is a full OS process
MAX_SHARDS = 64


def resolve_shards(shards: Optional[int] = None) -> int:
    """Validate and resolve the shard count (explicit arg wins, then
    ``$DOUBLECHECKER_SHARDS``, then 1 = the serial path).

    Raises :class:`ValueError` with a readable message on anything that
    is not an integer in ``[1, MAX_SHARDS]`` — the CLI preflights with
    this so bad values exit 2 before any work starts, exactly like
    ``--jobs``.
    """
    if shards is None:
        raw = os.environ.get(SHARDS_ENV)
        if raw is None or raw.strip() == "":
            return 1
        try:
            shards = int(raw)
        except ValueError:
            raise ValueError(
                f"{SHARDS_ENV} must be an integer, got {raw!r}"
            ) from None
    if shards < 1:
        raise ValueError(f"--shards must be >= 1, got {shards}")
    if shards > MAX_SHARDS:
        raise ValueError(
            f"--shards must be <= {MAX_SHARDS}, got {shards} "
            f"(each shard is a worker process)"
        )
    return shards


__all__ = ["SHARDS_ENV", "MAX_SHARDS", "resolve_shards"]
