"""The exchange owner of the partitioned analysis plane.

Folds the partition workers' forwarded streams back into one global
stream and replays it through the unmodified :class:`ShardedICD` —
Octet, transaction demarcation, IDG construction, SCC detection and GC
all behave exactly as on the single analysis shard, because the owner
sees exactly the records the serial pipeline's slow paths would see,
in exactly the serial order.

Two pieces make that true:

* :class:`ExchangeMerger` — a k-way merge over the ``A`` forwarded
  streams.  Access records are keyed ``(seq, 0)``; lifecycle records
  (worker 0's stream only) are keyed ``(stamp, 1)`` by their trailing
  stamp, which the recorder defined as the last access seq before
  them, so they sort exactly where they happened.  A record is
  dispatchable once every other stream either shows a later head or
  has advanced its watermark past the record's key; watermarks arrive
  with every flush, and the workers flush in lockstep with the
  coordinator's fan-out, so the merge never stalls.

* :class:`ExchangeChannel` — the log-shard fan-out extended with
  ``W_ADVANCE`` barriers.  Before dispatching a merged record the
  owner stamps each log-shard buffer with the record's position;
  the log shard blocks there until every partition worker's absorbed
  stream has caught up and drains those records (all with smaller
  seqs) first.  Everything the dispatch then emits — log records,
  transaction starts, edges, sweeps, job sentinels — lands after the
  barrier, so each log shard reconstructs the byte-exact serial
  stream, and the ``W_JOB`` position *is* still the log cutoff.
  Consecutive barriers with no emission in between coalesce in place.

The owner finishes like the single analyzer: merge worker tallies and
desc tables, orchestrate the PCD jobs, and hand the coordinator a
bundle byte-identical to the serial run's.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import OutOfMemoryBudget
from repro.obs.registry import use_registry
from repro.obs.wire import child_registry, stalled_get
from repro.runtime.events import AccessEvent, AccessKind, intern_site
from repro.shard.analyzer import (
    LiteObj,
    MirrorView,
    ShardChannel,
    ShardedICD,
    _merge,
)
from repro.shard.snapshot import CaptureTransitionLog
from repro.shard.wire import (
    STAMP_INF,
    T_BLOCK,
    T_END,
    T_ENTER,
    T_EVENT,
    T_EXIT,
    T_TEND,
    T_TSTART,
    W_ADVANCE,
    WORKER_CHUNK_INTS,
    decode_chunk,
)


class ExchangeChannel(ShardChannel):
    """Log-shard fan-out with ``W_ADVANCE`` drain barriers.

    Descriptors are minted from the owner's strided lane (base 0, step
    ``analysis_shards + 1``) so they never collide with the partition
    workers' lanes; the workers' ``desc_meta`` tables are merged into
    this channel's before capture stitching.
    """

    def __init__(self, queues, obs=None, *, analysis_shards: int) -> None:
        super().__init__(queues, obs,
                         desc_base=0, desc_stride=analysis_shards + 1)
        #: per log shard: buffer length right after the last W_ADVANCE
        #: (-1 = none since the last flush) — equal lengths mean nothing
        #: was emitted since, so the barrier coalesces in place
        self.adv_pos = [-1] * self.n
        self.advances = 0

    def advance(self, stamp: int) -> None:
        adv_pos = self.adv_pos
        for widx, buf in enumerate(self.bufs):
            if adv_pos[widx] == len(buf):
                buf[-1] = stamp
            else:
                buf.append(W_ADVANCE)
                buf.append(stamp)
                adv_pos[widx] = len(buf)
                self.advances += 1
                if len(buf) >= WORKER_CHUNK_INTS:
                    self.flush(widx)

    def flush(self, widx: int) -> None:
        super().flush(widx)
        self.adv_pos[widx] = -1


class ExchangeMerger:
    """K-way merge of the partition workers' forwarded streams.

    ``push`` decodes one ``X`` chunk into the stream's pending deque
    and raises its watermark bound; ``drain`` yields every record that
    is now globally next.  Keys are ``(seq, 0)`` for accesses and
    ``(stamp, 1)`` for lifecycle records (stream 0 only); a stream
    whose watermark is ``w`` can still produce lifecycle records
    stamped ``w`` but no access with seq ``<= w``, hence the
    asymmetric bounds.
    """

    def __init__(self, nstreams: int) -> None:
        self.n = nstreams
        self.pending: List[deque] = [deque() for _ in range(nstreams)]
        self.bounds: List[Tuple[int, int]] = [(0, 0)] * nstreams

    def push(self, aidx: int, payload: bytes, watermark: int) -> None:
        arr = decode_chunk(payload)
        q = self.pending[aidx]
        append = q.append
        i = 0
        n = len(arr)
        while i < n:
            v = arr[i]
            if v >= 0:
                append(((arr[i + 1], 0), (v, arr[i + 1], arr[i + 2])))
                i += 3
            elif v == T_EVENT:
                append(((arr[i + 2], 0),
                        (v, arr[i + 1], arr[i + 2], arr[i + 3])))
                i += 4
            elif v == T_ENTER or v == T_EXIT:
                append(((arr[i + 4], 1), tuple(arr[i:i + 5])))
                i += 5
            elif v == T_TSTART or v == T_TEND:
                append(((arr[i + 2], 1), tuple(arr[i:i + 3])))
                i += 3
            elif v == T_BLOCK:
                append(((arr[i + 3], 1), tuple(arr[i:i + 4])))
                i += 4
            else:  # T_END
                append(((arr[i + 1], 1), tuple(arr[i:i + 2])))
                i += 2
        self.bounds[aidx] = (watermark, 1) if aidx == 0 else (watermark + 1, 0)

    def drain(self) -> List[tuple]:
        out: List[tuple] = []
        pending = self.pending
        bounds = self.bounds
        n = self.n
        while True:
            best: Optional[Tuple[int, int]] = None
            bi = -1
            for idx in range(n):
                q = pending[idx]
                if q:
                    key = q[0][0]
                    if best is None or key < best:
                        best = key
                        bi = idx
            if bi < 0:
                break
            # every record on the min stream strictly below the other
            # streams' caps (their head, or their watermark bound when
            # empty) dispatches in one run — keys never tie across
            # streams, so the per-record n-way scan collapses to deque
            # pops for the common long single-stream stretches
            limit: Optional[Tuple[int, int]] = None
            for j in range(n):
                if j == bi:
                    continue
                q = pending[j]
                cap = q[0][0] if q else bounds[j]
                if limit is None or cap < limit:
                    limit = cap
            q = pending[bi]
            popleft = q.popleft
            if limit is None:  # single-stream merge: everything flows
                while q:
                    out.append(popleft()[1])
                break
            drained = False
            while q and q[0][0] < limit:
                out.append(popleft()[1])
                drained = True
            if not drained:
                break
        return out


# ----------------------------------------------------------------------
# process entry point
# ----------------------------------------------------------------------
def run_exchange(cfg: dict, q_in, worker_queues, q_result) -> None:
    """Exchange-owner main: merge, replay, orchestrate, merge stats."""
    try:
        obs = child_registry(cfg.get("obs"), "shard-exchange")
        if obs is not None:
            use_registry(obs)
        bundle = _exchange(cfg, q_in, worker_queues, obs)
        q_result.put(("A", bundle))
    except OutOfMemoryBudget as exc:
        q_result.put(
            ("E", ("OutOfMemoryBudget",
                   (exc.component, exc.used, exc.budget),
                   traceback.format_exc()))
        )
    except BaseException as exc:  # noqa: BLE001 - crosses a process
        q_result.put(
            ("E", (type(exc).__name__, getattr(exc, "args", ()),
                   traceback.format_exc()))
        )


def _exchange(cfg: dict, q_in, worker_queues, obs: Any = None) -> dict:
    run_started = time.perf_counter()
    nparts = cfg["analysis_shards"]
    channel = ExchangeChannel(list(worker_queues), obs,
                              analysis_shards=nparts)
    view = MirrorView()
    capture = cfg["capture"]

    components_small = 0
    transactions_small = 0

    def handle_scc(component) -> None:
        nonlocal components_small, transactions_small
        logged = [tx for tx in component if tx.log is not None]
        if len(logged) < 2:
            components_small += 1
            transactions_small += len(logged)
            return
        channel.send_job(logged)

    icd = ShardedICD(
        cfg["spec"],
        channel,
        logging_enabled=True,
        monitor_unary=cfg["monitor_unary"],
        instrument_arrays=cfg["instrument_arrays"],
        cycle_detection=cfg["cycle_detection"],
        eager_scc=cfg["eager_scc"],
        on_scc=handle_scc,
        runtime_view=view,
        gc_interval=cfg["gc_interval"],
        use_engine=cfg["use_engine"],
    )
    transitions = None
    if capture:
        transitions = CaptureTransitionLog()
        icd.octet.add_listener(transitions)

    barrier = icd.access_barrier()
    fused = icd.access_barrier_batch()
    advance = channel.advance

    threads: List[str] = []
    methods: List[str] = []
    desc_rows: List[tuple] = []
    edesc_rows: List[tuple] = []
    objs: Dict[int, LiteObj] = {}
    addr_intern = icd._addr_intern
    site_intern = icd._site_intern

    def lite(oid: int) -> LiteObj:
        obj = objs.get(oid)
        if obj is None:
            obj = objs[oid] = LiteObj(oid)
        return obj

    def handle_defs(defs: tuple) -> None:
        # worker 0 forwards the coordinator's defs verbatim, so this is
        # the serial def stream: ids are dense and arrive before use
        for df in defs:
            tag = df[0]
            if tag == "d":
                _, _d, oid, fieldname, kindval, method, index, arraybit = df
                address = (oid, fieldname)
                address = addr_intern.setdefault(address, address)
                site = intern_site(method, index)
                site_str = site_intern.get(site)
                if site_str is None:
                    site_str = site_intern[site] = str(site)
                desc_rows.append(
                    (lite(oid), fieldname, AccessKind(kindval), site,
                     address, site_str, bool(arraybit))
                )
            elif tag == "e":
                (_, _ed, oid, fieldname, kindval, method, index,
                 syncbit, arraybit) = df
                edesc_rows.append(
                    (lite(oid), fieldname, AccessKind(kindval),
                     intern_site(method, index), bool(syncbit),
                     bool(arraybit))
                )
            elif tag == "t":
                _, t, name = df
                assert t == len(threads)
                threads.append(name)
                channel.register_thread(t, name)
            else:  # "m"
                _, m, name = df
                assert m == len(methods)
                methods.append(name)

    merger = ExchangeMerger(nparts)
    job_results: Dict[int, Tuple[str, object]] = {}
    worker_bundles: Dict[int, dict] = {}
    finals: Dict[int, tuple] = {}
    nworkers = channel.n

    def dispatch(rec: tuple) -> bool:
        v = rec[0]
        if v >= 0:
            seq = rec[1]
            advance(seq)
            row = desc_rows[v]
            if fused is not None:
                fused(seq, threads[rec[2]], *row)
            else:
                obj, fieldname, kind, site, _addr, _s, is_array = row
                barrier(
                    AccessEvent(seq, threads[rec[2]], obj, fieldname,
                                kind, False, is_array, site)
                )
        elif v == T_EVENT:
            seq = rec[2]
            advance(seq)
            obj, fieldname, kind, site, is_sync, is_array = edesc_rows[rec[1]]
            barrier(
                AccessEvent(seq, threads[rec[3]], obj, fieldname, kind,
                            is_sync, is_array, site)
            )
        elif v == T_ENTER:
            advance(rec[4])
            icd.on_method_enter(threads[rec[1]], methods[rec[2]], rec[3])
        elif v == T_EXIT:
            advance(rec[4])
            icd.on_method_exit(threads[rec[1]], methods[rec[2]], rec[3])
        elif v == T_TSTART:
            advance(rec[2])
            icd.on_thread_start(threads[rec[1]])
        elif v == T_TEND:
            advance(rec[2])
            icd.on_thread_end(threads[rec[1]])
        elif v == T_BLOCK:
            advance(rec[3])
            view.blocked[threads[rec[1]]] = bool(rec[2])
        else:  # T_END
            return True
        return False

    ended = False
    xchunks_in = [0] * nparts
    while not ended:
        msg = stalled_get(q_in, obs, "shard.stall.exchange.get.seconds")
        tag = msg[0]
        if tag == "X":
            _, aidx, defs, payload, watermark = msg
            if obs is not None:
                obs.emit_flow(
                    "shard.xchunk", time.perf_counter() - obs.epoch,
                    aidx * 1_000_000 + xchunks_in[aidx], "f",
                )
                xchunks_in[aidx] += 1
            if defs:
                handle_defs(defs)
            merger.push(aidx, payload, watermark)
            for rec in merger.drain():
                if dispatch(rec):
                    ended = True
        elif tag == "Y":
            finals[msg[1]] = msg[2:]
        elif tag == "J":
            job_results[msg[1]] = (msg[2], msg[3])
        elif tag == "W":
            worker_bundles[msg[1]] = msg[2]
        else:  # "E" from a partition worker
            name, args, tb = msg[1]
            raise RuntimeError(
                f"partition worker failed: {name}{tuple(args)}\n{tb}"
            )

    # execution end: the final advance releases every absorbed record
    # still buffered at the log shards, then the owner finishes exactly
    # like the single analyzer
    advance(STAMP_INF)
    icd.on_execution_end()
    channel.finish()

    while len(worker_bundles) < nworkers or len(finals) < nparts:
        msg = stalled_get(q_in, obs, "shard.stall.exchange.get.seconds")
        tag = msg[0]
        if tag == "J":
            job_results[msg[1]] = (msg[2], msg[3])
        elif tag == "W":
            worker_bundles[msg[1]] = msg[2]
        elif tag == "Y":
            finals[msg[1]] = msg[2:]
        elif tag == "E":
            name, args, tb = msg[1]
            raise RuntimeError(
                f"partition worker failed: {name}{tuple(args)}\n{tb}"
            )

    # fold the partition workers' absorbed shares back into the exact
    # serial totals (the `stats` property folds the octet pendings)
    stats = icd.stats
    tx_stats = icd.tx_manager.stats
    octet = icd.octet
    extra = {
        "shard.exchange.absorbed": 0,
        "shard.exchange.forwarded": 0,
        "shard.exchange.chunks": 0,
        "shard.exchange.bytes": 0,
        "shard.edge.chunks": 0,
        "shard.edge.bytes": 0,
        "shard.edge.advances": channel.advances,
        "shard.exchange.sync_facts": 0,
        "shard.exchange.sync_bytes": 0,
    }
    analysis_cpu: List[float] = []
    analysis_telemetry: List[object] = []
    for aidx in range(nparts):
        tallies, desc_meta, cpu_seconds, capsule = finals[aidx]
        stats.instrumented_accesses += tallies["instrumented"]
        stats.array_accesses_skipped += tallies["array_skipped"]
        tx_stats.regular_accesses += tallies["regular"]
        tx_stats.skipped_accesses += tallies["skipped"]
        octet._barriers_pending += tallies["instrumented"]
        octet._fastpath_pending += tallies["instrumented"]
        octet._fused_pending += tallies["instrumented"]
        channel.desc_meta.update(desc_meta)
        extra["shard.exchange.absorbed"] += tallies["absorbed"]
        extra["shard.exchange.forwarded"] += tallies["forwarded"]
        extra["shard.exchange.chunks"] += tallies["x_chunks"]
        extra["shard.exchange.bytes"] += tallies["x_bytes"]
        extra["shard.edge.chunks"] += tallies["p_chunks"]
        extra["shard.edge.bytes"] += tallies["p_bytes"]
        extra["shard.exchange.sync_facts"] += tallies["k_facts"]
        extra["shard.exchange.sync_bytes"] += tallies["k_bytes"]
        analysis_cpu.append(cpu_seconds)
        analysis_telemetry.append(capsule)

    if obs is not None:
        now = time.perf_counter()
        obs.observe("shard.exchange.run.seconds", now - run_started)
        obs.emit_event("shard.exchange.run", "shard",
                       ts=run_started - obs.epoch, dur=now - run_started,
                       args={"jobs": channel.jobs_sent,
                             "advances": channel.advances})
    return _merge(
        cfg, icd, channel, transitions, job_results,
        worker_bundles, components_small, transactions_small, obs,
        extra_counters=extra,
        analysis_cpu=analysis_cpu,
        analysis_telemetry=analysis_telemetry,
    )


__all__ = ["ExchangeChannel", "ExchangeMerger", "run_exchange"]
