"""The analysis shard (shard 0) of the sharded pipeline.

Replays the coordinator's record stream through the *real* ICD — the
Octet state machine, transaction demarcation, IDG construction, SCC
detection, and GC all run here unmodified — with exactly one seam
replaced: the read/write-logging tail.  Where the serial ICD appends an
:class:`~repro.core.rwlog.AccessEntry`, :class:`ShardedICD` appends a
3-int record to the owning log shard's buffer instead; the transaction
keeps a *stub* log holding only the IDG edge marks, created under
exactly the serial conditions, so SCC membership, GC sweeping, and
PCD's ``log is not None`` member filter behave identically.

Everything the log shards need to reproduce the serial logs travels as
records positioned exactly where the serial side effect happened:
transaction starts (elision-window bumps + current-transaction
switches), IDG edges (bumps on both threads), GC sweeps (free the
swept columns; also the aligned peak-sample point), and the component
cutoff itself — a captured SCC is flushed *then* announced, so the
stream position **is** the cutoff and no entry-count arithmetic is
needed.

The analyzer then plays PCD orchestrator: captured components fan out
round-robin to the log shards, per-job violation results come back
tagged with their cycle keys, and the final merge folds them in
capture (ordinal) order applying the serial run's global cycle
deduplication — so the merged violation list is byte-identical to the
serial run's.
"""

from __future__ import annotations

import time
import traceback
from array import array
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.gc import GcStats
from repro.core.icd import ICD
from repro.core.pcd import PCDStats
from repro.core.transactions import Transaction
from repro.errors import OutOfMemoryBudget
from repro.obs.registry import use_registry
from repro.obs.wire import (
    child_registry,
    sample_depth,
    stalled_get,
    telemetry_capsule,
)
from repro.octet.states import StateKind
from repro.runtime.events import AccessEvent, AccessKind, Site, intern_site
from repro.runtime.view import RuntimeView
from repro.shard.snapshot import (
    CaptureTransitionLog,
    stitch_log,
)
from repro.shard.wire import (
    T_BLOCK,
    T_END,
    T_ENTER,
    T_EVENT,
    T_EXIT,
    T_TEND,
    T_TSTART,
    W_EDGE,
    W_JOB,
    W_SWEEP,
    W_TXEND,
    W_TXSTART,
    WORKER_CHUNK_INTS,
    decode_chunk,
    encode_chunk,
    shard_of,
    unpack_columns,
)


class LiteObj:
    """Stand-in for a heap object on the analysis shard.

    Every analysis consumer — Octet state keys, transition records,
    log entries — reads only ``obj.oid``.
    """

    __slots__ = ("oid",)

    def __init__(self, oid: int) -> None:
        self.oid = oid


class _StubLog:
    """Marks-only stand-in for a transaction's ``ReadWriteLog``.

    Access entries live in the log shards' columns; the analysis shard
    keeps only the edge marks — as plain ``(edge_order, is_source,
    seq)`` tuples, already in member-spec wire format, so capturing a
    component's marks is a shallow ``list()`` copy.  ``len()`` matches
    the serial mark-index semantics every consumer here relies on
    (``append_mark`` return values anchor IDG edges, GC counts swept
    stub entries, component capture filters on ``tx.log``).
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[tuple] = []

    def append_mark(self, edge_order: int, is_source: bool, seq: int) -> int:
        self.entries.append((edge_order, is_source, seq))
        return len(self.entries) - 1

    def __len__(self) -> int:
        return len(self.entries)


class MirrorView(RuntimeView):
    """Blocked-thread view reconstructed from T_BLOCK records.

    Thread completion is *not* mirrored here: ICD checks its own
    ``_finished_threads`` (fed by T_TEND) before consulting the view,
    exactly as it does against the live executor.
    """

    def __init__(self) -> None:
        self.blocked: Dict[str, bool] = {}

    def is_thread_blocked(self, thread_name: str) -> bool:
        return self.blocked.get(thread_name, False)


class ShardChannel:
    """Analyzer-side fan-out to the log shards.

    Owns the per-shard record buffers, the worker access-descriptor
    table (interned per ``(site, address, kind)``), and the broadcast
    records that keep every shard's elision replay and column ownership
    in sync.  Definitions are flushed with the chunk that first uses
    them, so a definition always precedes its first reference.
    """

    def __init__(
        self,
        queues: List[Any],
        obs: Any = None,
        *,
        desc_base: int = 0,
        desc_stride: int = 1,
    ) -> None:
        self.queues = queues
        self.n = len(queues)
        #: analysis shard's registry (None when telemetry is off); the
        #: hot paths pay one is-None check when disabled
        self.obs = obs
        #: per log shard: chunks flushed so far — the flow-arrow id for
        #: chunk c to shard w is ``w * 1_000_000 + c`` and both ends
        #: derive it independently (the queues are FIFO)
        self.wchunks = [0] * self.n
        self.bufs = [array("q") for _ in queues]
        self.defs: List[list] = [[] for _ in queues]
        self.tid_by_name: Dict[str, int] = {}
        #: (site, address, kind) -> (worker desc, owning shard index)
        self.descs: Dict[tuple, Tuple[int, int]] = {}
        #: worker desc -> (kind, oid, fieldname, site_str) for capture.
        #: A dict, not a list: under a partitioned analysis plane every
        #: emitter (exchange owner + each partition worker) mints ids
        #: from its own strided lane (owner ``0, S, 2S, ...``, worker
        #: ``a`` from ``a+1`` step ``S = analysis_shards + 1``) so id
        #: spaces never collide without coordination, and the owner
        #: merges the workers' tables for capture.  The default
        #: base 0 / stride 1 is the dense single-analyzer numbering.
        self.desc_meta: Dict[int, tuple] = {}
        self._next_desc = desc_base
        self._desc_stride = desc_stride
        # wire accounting (merged into the shard.* obs counters)
        self.records = 0
        self.chunks = 0
        self.bytes_shipped = 0
        self.defs_shipped = 0
        self.jobs_sent = 0
        #: per owning shard: tx_id -> marks / out-edges already shipped
        #: there (job specs carry only the suffix the owner lacks)
        self.sent_marks: List[Dict[int, int]] = [{} for _ in queues]
        self.sent_out: List[Dict[int, int]] = [{} for _ in queues]

    def register_thread(self, tid: int, name: str) -> None:
        self.tid_by_name[name] = tid

    def register_desc(
        self,
        site: Site,
        address: Tuple[int, str],
        kind: AccessKind,
        site_str: str,
    ) -> Tuple[int, int]:
        d = self._next_desc
        self._next_desc = d + self._desc_stride
        widx = shard_of(address[0], address[1], self.n)
        entry = self.descs[(site, address, kind)] = (d, widx)
        self.desc_meta[d] = (kind, address[0], address[1], site_str)
        # broadcast: records for d flow only to the owner, but any
        # shard may have to expand d later when it assembles a PCD job
        # from peer slices
        df = ("d", d, address[0], address[1], kind.value, site_str)
        for defs in self.defs:
            defs.append(df)
        return entry

    def flush(self, widx: int) -> None:
        buf = self.bufs[widx]
        defs = self.defs[widx]
        if not buf and not defs:
            return
        payload = encode_chunk(buf)
        del buf[:]
        sent_defs = tuple(defs)
        defs.clear()
        self.chunks += 1
        self.bytes_shipped += len(payload)
        self.defs_shipped += len(sent_defs)
        self.queues[widx].put(("C", sent_defs, payload))
        obs = self.obs
        if obs is not None:
            obs.emit_flow(
                "shard.wchunk", time.perf_counter() - obs.epoch,
                widx * 1_000_000 + self.wchunks[widx], "s",
            )
            self.wchunks[widx] += 1
            sample_depth(obs, "shard.queue.a2w.depth", self.queues[widx])

    def flush_all(self) -> None:
        for widx in range(self.n):
            self.flush(widx)

    # ------------------------------------------------------------------
    # broadcast records (every shard must see these)
    # ------------------------------------------------------------------
    def tx_start(self, tid: int, tx_id: int) -> None:
        for widx, buf in enumerate(self.bufs):
            buf.append(W_TXSTART)
            buf.append(tid)
            buf.append(tx_id)
            if len(buf) >= WORKER_CHUNK_INTS:
                self.flush(widx)
        self.records += self.n

    def tx_end(self) -> None:
        for buf in self.bufs:
            buf.append(W_TXEND)
        self.records += self.n

    def edge(
        self, stid: int, dtid: int, order: int, stxid: int, dtxid: int
    ) -> None:
        for widx, buf in enumerate(self.bufs):
            buf.append(W_EDGE)
            buf.append(stid)
            buf.append(dtid)
            buf.append(order)
            buf.append(stxid)
            buf.append(dtxid)
            if len(buf) >= WORKER_CHUNK_INTS:
                self.flush(widx)
        self.records += self.n

    def sweep(self, swept_ids) -> None:
        ids = sorted(swept_ids)
        for widx, buf in enumerate(self.bufs):
            buf.append(W_SWEEP)
            buf.append(len(ids))
            for tx_id in ids:
                buf.append(tx_id)
            if len(buf) >= WORKER_CHUNK_INTS:
                self.flush(widx)
        self.records += self.n

    # ------------------------------------------------------------------
    def send_job(self, logged: List[Transaction]) -> int:
        """Announce one captured component to every shard.

        The announcement is a ``W_JOB`` sentinel embedded in each
        shard's record stream — its position *is* the log cutoff — with
        the member spec riding the same chunk's defs tuple, so a job
        costs no flush and no extra queue message.  Only the shard that
        will run the job (round-robin by ordinal) gets the full member
        spec; the others slice columns by id and need only the ids.

        Eager detection re-captures a growing component many times, so
        specs are incremental too: marks and out-edges are shipped as
        the suffix the owning shard has not seen yet (per-owner
        counters), and the owner accumulates them — re-capturing a
        member costs work proportional to what changed, not to the
        member's history.  Out-edges ship unfiltered; the owner filters
        against the job's member set when wiring the component.
        """
        ordinal = self.jobs_sent
        self.jobs_sent = ordinal + 1
        owner = ordinal % self.n
        sent_marks = self.sent_marks[owner]
        sent_out = self.sent_out[owner]
        members = []
        ids = []
        for tx in logged:
            tx_id = tx.tx_id
            ids.append(tx_id)
            # stub entries are wire-format mark tuples; the slice copy
            # decouples the spec from marks appended later (the queue
            # feeder thread pickles asynchronously)
            entries = tx.log.entries
            start = sent_marks.get(tx_id, 0)
            marks_new = entries[start:]
            if marks_new:
                sent_marks[tx_id] = len(entries)
            outs = tx.out_edges
            start = sent_out.get(tx_id, 0)
            out_new = [(e.order, e.dst.tx_id) for e in outs[start:]]
            if out_new:
                sent_out[tx_id] = len(outs)
            members.append(
                (tx_id, tx.thread_name, tx.method, tx.is_unary,
                 marks_new, out_new)
            )
        ids = tuple(ids)
        for widx in range(self.n):
            self.defs[widx].append(
                ("k", ordinal, members if widx == owner else ids)
            )
            buf = self.bufs[widx]
            buf.append(W_JOB)
            buf.append(ordinal)
            if len(buf) >= WORKER_CHUNK_INTS:
                self.flush(widx)
        if self.obs is not None:
            # flow finish lands on the shard that runs the PCD job
            self.obs.emit_flow(
                "shard.job", time.perf_counter() - self.obs.epoch,
                ordinal, "s",
            )
        return ordinal

    def finish(self) -> None:
        self.flush_all()
        for q in self.queues:
            q.put(("F", self.jobs_sent))


class ShardedICD(ICD):
    """ICD with the logging tail rerouted to the log shards.

    The fused barriers are line-for-line copies of the serial closures
    (same fast-path predicate, same demarcation, same counters) whose
    logging tail emits ``[desc, seq, tid]`` to the owning shard instead
    of appending an entry; elision is *not* probed here — the owning
    shard replays the filter bit-exactly from the broadcast bump
    records.  Stub logs are created under exactly the serial creation
    conditions and accumulate only edge marks, which keeps every
    consumer of ``tx.log`` (GC, SCC capture, the PCD member filter,
    the mark-count stats) behaving identically.
    """

    def __init__(self, spec, channel: ShardChannel, **kwargs) -> None:
        self.channel = channel
        self.peak_samples: List[int] = []
        super().__init__(spec, **kwargs)
        self.edge_tap = self._broadcast_edge

    # ------------------------------------------------------------------
    # barriers (serial copies; only the logging tail differs)
    # ------------------------------------------------------------------
    def access_barrier(self) -> Callable[[AccessEvent], None]:
        if (
            not self.octet.fastpath
            or self.track_unary_sites
            or self.array_granularity_object
        ):
            return self.on_access

        octet = self.octet
        states = octet._states
        thread_rdsh = octet._thread_rdsh
        tx_manager = self.tx_manager
        tx_for_fields = tx_manager.transaction_for_fields
        tx_current = tx_manager._current
        tx_stats = tx_manager.stats
        stats = self.stats
        addr_intern = self._addr_intern
        site_intern = self._site_intern
        instrument_arrays = self.instrument_arrays
        logging_enabled = self.logging_enabled
        slow_path = self.on_access
        channel = self.channel
        descs = channel.descs
        register = channel.register_desc
        tid_by_name = channel.tid_by_name
        bufs = channel.bufs
        flush = channel.flush

        def fused_access(
            event: AccessEvent,
            *,
            _READ: AccessKind = AccessKind.READ,
            _WR_EX: StateKind = StateKind.WR_EX,
            _RD_EX: StateKind = StateKind.RD_EX,
            _RD_SH: StateKind = StateKind.RD_SH,
        ) -> None:
            if event.is_array and not instrument_arrays:
                stats.array_accesses_skipped += 1
                return
            oid = event.obj.oid
            thread = event.thread_name
            state = states.get(oid)
            if state is not None:
                kind = state.kind
                if (
                    state.owner == thread
                    and (
                        kind is _WR_EX
                        or (kind is _RD_EX and event.kind is _READ)
                    )
                ) or (
                    kind is _RD_SH
                    and event.kind is _READ
                    and thread_rdsh.get(thread, 0) >= state.counter
                ):
                    tx = tx_current.get(thread)
                    if tx is not None and not tx.is_unary:
                        if not tx.monitored:
                            tx_stats.skipped_accesses += 1
                            return
                        tx_stats.regular_accesses += 1
                    else:
                        tx = tx_for_fields(thread, event.site)
                        if tx is None:
                            return  # not instrumented in this configuration
                    stats.instrumented_accesses += 1
                    octet._barriers_pending += 1
                    octet._fastpath_pending += 1
                    octet._fused_pending += 1
                    if logging_enabled:
                        if tx.log is None:
                            tx.log = _StubLog()
                        address = (oid, event.fieldname)
                        address = addr_intern.setdefault(address, address)
                        site = event.site
                        entry = descs.get((site, address, event.kind))
                        if entry is None:
                            site_str = site_intern.get(site)
                            if site_str is None:
                                site_str = site_intern[site] = str(site)
                            entry = register(site, address, event.kind, site_str)
                        d, widx = entry
                        buf = bufs[widx]
                        buf.append(d)
                        buf.append(event.seq)
                        buf.append(tid_by_name[thread])
                        if len(buf) >= WORKER_CHUNK_INTS:
                            flush(widx)
                    return
            slow_path(event)

        return fused_access

    def access_barrier_batch(self) -> Optional[Callable[..., None]]:
        if (
            not self.octet.fastpath
            or self.track_unary_sites
            or self.array_granularity_object
        ):
            return None

        octet = self.octet
        states = octet._states
        thread_rdsh = octet._thread_rdsh
        tx_manager = self.tx_manager
        tx_for_fields = tx_manager.transaction_for_fields
        tx_current = tx_manager._current
        tx_stats = tx_manager.stats
        stats = self.stats
        instrument_arrays = self.instrument_arrays
        logging_enabled = self.logging_enabled
        slow_path = self.on_access
        channel = self.channel
        descs = channel.descs
        register = channel.register_desc
        tid_by_name = channel.tid_by_name
        bufs = channel.bufs
        flush = channel.flush

        def fused_batch(
            seq: int,
            thread: str,
            obj: Any,
            fieldname: str,
            kind: AccessKind,
            site: Site,
            address: Tuple[int, str],
            site_str: str,
            is_array: bool,
            *,
            _READ: AccessKind = AccessKind.READ,
            _WR_EX: StateKind = StateKind.WR_EX,
            _RD_EX: StateKind = StateKind.RD_EX,
            _RD_SH: StateKind = StateKind.RD_SH,
        ) -> None:
            if is_array and not instrument_arrays:
                stats.array_accesses_skipped += 1
                return
            oid = obj.oid
            state = states.get(oid)
            if state is not None:
                skind = state.kind
                if (
                    state.owner == thread
                    and (
                        skind is _WR_EX
                        or (skind is _RD_EX and kind is _READ)
                    )
                ) or (
                    skind is _RD_SH
                    and kind is _READ
                    and thread_rdsh.get(thread, 0) >= state.counter
                ):
                    tx = tx_current.get(thread)
                    if tx is not None and not tx.is_unary:
                        if not tx.monitored:
                            tx_stats.skipped_accesses += 1
                            return
                        tx_stats.regular_accesses += 1
                    else:
                        tx = tx_for_fields(thread, site)
                        if tx is None:
                            return  # not instrumented in this configuration
                    stats.instrumented_accesses += 1
                    octet._barriers_pending += 1
                    octet._fastpath_pending += 1
                    octet._fused_pending += 1
                    if logging_enabled:
                        if tx.log is None:
                            tx.log = _StubLog()
                        entry = descs.get((site, address, kind))
                        if entry is None:
                            entry = register(site, address, kind, site_str)
                        d, widx = entry
                        buf = bufs[widx]
                        buf.append(d)
                        buf.append(seq)
                        buf.append(tid_by_name[thread])
                        if len(buf) >= WORKER_CHUNK_INTS:
                            flush(widx)
                    return
            slow_path(
                AccessEvent(
                    seq, thread, obj, fieldname, kind, False, is_array, site
                )
            )

        return fused_batch

    def _log_access(self, tx: Transaction, event: AccessEvent) -> None:
        # reference slow path: same lazy stub creation and interning as
        # the serial _log_access, with the append replaced by emission
        # (array_granularity_object never reaches the sharded pipeline,
        # so the address is always the field address)
        if tx.log is None:
            tx.log = _StubLog()
        address = (event.obj.oid, event.fieldname)
        address = self._addr_intern.setdefault(address, address)
        site = event.site
        channel = self.channel
        entry = channel.descs.get((site, address, event.kind))
        if entry is None:
            site_str = self._site_intern.get(site)
            if site_str is None:
                site_str = self._site_intern[site] = str(site)
            entry = channel.register_desc(site, address, event.kind, site_str)
        d, widx = entry
        buf = channel.bufs[widx]
        buf.append(d)
        buf.append(event.seq)
        buf.append(channel.tid_by_name[event.thread_name])
        if len(buf) >= WORKER_CHUNK_INTS:
            channel.flush(widx)

    # ------------------------------------------------------------------
    # lifecycle rebroadcasts
    # ------------------------------------------------------------------
    def _transaction_started(self, tx: Transaction) -> None:
        super()._transaction_started(tx)
        if tx.log is not None:
            # serial creation conditions, marks-only representation
            tx.log = _StubLog()
        self.channel.tx_start(self.channel.tid_by_name[tx.thread_name], tx.tx_id)

    def _transaction_ended(self, tx: Transaction) -> None:
        # the serial side samples the live-entry integral before
        # detection runs, so the shards' sample record must precede any
        # component announcement detection may produce
        self.channel.tx_end()
        super()._transaction_ended(tx)

    def _broadcast_edge(self, edge) -> None:
        # ICD's edge_tap hook fires at the very end of _add_edge —
        # after eager detection may have announced a job — so the
        # W_EDGE record lands in exactly the stream position the old
        # _add_edge override produced
        ch = self.channel
        ch.edge(
            ch.tid_by_name[edge.src.thread_name],
            ch.tid_by_name[edge.dst.thread_name],
            edge.order,
            edge.src.tx_id,
            edge.dst.tx_id,
        )

    def _maybe_collect(self) -> None:
        # serial copy with two additions: the aligned peak sample and
        # the sweep broadcast (the logging-off seen-edges pruning branch
        # never applies — sharding only serves logging single runs)
        self._tx_ends_since_gc += 1
        if self.gc_interval is None or self._tx_ends_since_gc < self.gc_interval:
            self._check_budget()
            return
        self._tx_ends_since_gc = 0
        self.collector.note_peak(self._live_log_entries)
        self.peak_samples.append(self._live_log_entries)
        roots: List[Transaction] = list(self._last_rdex.values())
        if self._g_last_rdsh is not None:
            roots.append(self._g_last_rdsh)
        self.collector.collect(roots)
        if self.scheduler is not None:
            self.scheduler.forget(self.collector.last_swept_ids)
        self._live_log_entries -= self.collector.last_swept_log_entries
        self.channel.sweep(self.collector.last_swept_ids)
        self._check_budget()


# ----------------------------------------------------------------------
# process entry point
# ----------------------------------------------------------------------
def run_analyzer(cfg: dict, q_in, worker_queues, q_result) -> None:
    """Analysis-shard main: decode, analyze, orchestrate, merge."""
    try:
        obs = child_registry(cfg.get("obs"), "shard-analyzer")
        if obs is not None:
            # analyses capture the active recorder at construction; the
            # counters they publish are dropped from the capsule (the
            # coordinator reconciles them), spans/histograms ship back
            use_registry(obs)
        bundle = _analyze(cfg, q_in, worker_queues, obs)
        q_result.put(("A", bundle))
    except OutOfMemoryBudget as exc:
        # a deterministic analysis outcome: ship the constructor triple
        # so the coordinator re-raises the exact serial exception
        q_result.put(
            ("E", ("OutOfMemoryBudget",
                   (exc.component, exc.used, exc.budget),
                   traceback.format_exc()))
        )
    except BaseException as exc:  # noqa: BLE001 - crosses a process
        q_result.put(
            ("E", (type(exc).__name__, getattr(exc, "args", ()),
                   traceback.format_exc()))
        )


def _analyze(cfg: dict, q_in, worker_queues, obs: Any = None) -> dict:
    run_started = time.perf_counter()
    channel = ShardChannel(list(worker_queues), obs)
    view = MirrorView()
    capture = cfg["capture"]

    components_small = 0
    transactions_small = 0

    def handle_scc(component) -> None:
        nonlocal components_small, transactions_small
        logged = [tx for tx in component if tx.log is not None]
        if len(logged) < 2:
            # the serial PCD would replay nothing; account for the call
            # here instead of shipping an empty job
            components_small += 1
            transactions_small += len(logged)
            return
        channel.send_job(logged)

    icd = ShardedICD(
        cfg["spec"],
        channel,
        logging_enabled=True,
        monitor_unary=cfg["monitor_unary"],
        instrument_arrays=cfg["instrument_arrays"],
        cycle_detection=cfg["cycle_detection"],
        eager_scc=cfg["eager_scc"],
        on_scc=handle_scc,
        runtime_view=view,
        gc_interval=cfg["gc_interval"],
        use_engine=cfg["use_engine"],
    )
    transitions = None
    if capture:
        transitions = CaptureTransitionLog()
        icd.octet.add_listener(transitions)

    barrier = icd.access_barrier()
    fused = icd.access_barrier_batch()

    threads: List[str] = []
    methods: List[str] = []
    desc_rows: List[tuple] = []
    edesc_rows: List[tuple] = []
    objs: Dict[int, LiteObj] = {}
    addr_intern = icd._addr_intern
    site_intern = icd._site_intern

    def lite(oid: int) -> LiteObj:
        obj = objs.get(oid)
        if obj is None:
            obj = objs[oid] = LiteObj(oid)
        return obj

    def handle_defs(defs: tuple) -> None:
        for df in defs:
            tag = df[0]
            if tag == "d":
                _, _d, oid, fieldname, kindval, method, index, arraybit = df
                address = (oid, fieldname)
                address = addr_intern.setdefault(address, address)
                site = intern_site(method, index)
                site_str = site_intern.get(site)
                if site_str is None:
                    site_str = site_intern[site] = str(site)
                desc_rows.append(
                    (lite(oid), fieldname, AccessKind(kindval), site,
                     address, site_str, bool(arraybit))
                )
            elif tag == "e":
                (_, _ed, oid, fieldname, kindval, method, index,
                 syncbit, arraybit) = df
                edesc_rows.append(
                    (lite(oid), fieldname, AccessKind(kindval),
                     intern_site(method, index), bool(syncbit),
                     bool(arraybit))
                )
            elif tag == "t":
                _, t, name = df
                assert t == len(threads)
                threads.append(name)
                channel.register_thread(t, name)
            else:  # "m"
                _, m, name = df
                assert m == len(methods)
                methods.append(name)

    # results arriving from the log shards while the stream is decoding
    job_results: Dict[int, Tuple[str, object]] = {}
    worker_bundles: Dict[int, dict] = {}
    nworkers = channel.n

    chunks_in = 0
    ended = False
    while not ended:
        msg = stalled_get(q_in, obs, "shard.stall.analyzer.get.seconds")
        tag = msg[0]
        if tag == "C":
            _, defs, payload = msg
            if obs is not None:
                chunk_started = time.perf_counter()
                obs.emit_flow("shard.chunk", chunk_started - obs.epoch,
                              chunks_in, "f")
            if defs:
                handle_defs(defs)
            arr = decode_chunk(payload)
            i = 0
            n = len(arr)
            while i < n:
                v = arr[i]
                if v >= 0:
                    row = desc_rows[v]
                    seq = arr[i + 1]
                    t = arr[i + 2]
                    i += 3
                    if fused is not None:
                        fused(seq, threads[t], *row)
                    else:
                        obj, fieldname, kind, site, _addr, _s, is_array = row
                        barrier(
                            AccessEvent(seq, threads[t], obj, fieldname,
                                        kind, False, is_array, site)
                        )
                elif v == T_EVENT:
                    ed = arr[i + 1]
                    seq = arr[i + 2]
                    t = arr[i + 3]
                    i += 4
                    obj, fieldname, kind, site, is_sync, is_array = \
                        edesc_rows[ed]
                    barrier(
                        AccessEvent(seq, threads[t], obj, fieldname, kind,
                                    is_sync, is_array, site)
                    )
                # lifecycle records carry a trailing stamp (the merge
                # key for partitioned analysis planes) — skipped here
                elif v == T_ENTER:
                    icd.on_method_enter(
                        threads[arr[i + 1]], methods[arr[i + 2]], arr[i + 3]
                    )
                    i += 5
                elif v == T_EXIT:
                    icd.on_method_exit(
                        threads[arr[i + 1]], methods[arr[i + 2]], arr[i + 3]
                    )
                    i += 5
                elif v == T_TSTART:
                    icd.on_thread_start(threads[arr[i + 1]])
                    i += 3
                elif v == T_TEND:
                    icd.on_thread_end(threads[arr[i + 1]])
                    i += 3
                elif v == T_BLOCK:
                    view.blocked[threads[arr[i + 1]]] = bool(arr[i + 2])
                    i += 4
                else:  # T_END
                    ended = True
                    i += 2
            if obs is not None:
                now = time.perf_counter()
                obs.observe("shard.analyzer.chunk.seconds",
                            now - chunk_started)
                obs.emit_event("shard.analyzer.chunk", "shard",
                               ts=chunk_started - obs.epoch,
                               dur=now - chunk_started,
                               args={"ordinal": chunks_in})
                chunks_in += 1
        elif tag == "J":
            job_results[msg[1]] = (msg[2], msg[3])
        else:  # "W"
            worker_bundles[msg[1]] = msg[2]

    # execution end: finish remaining transactions (may capture more
    # components and sweep), then release the log shards
    icd.on_execution_end()
    channel.finish()

    while len(worker_bundles) < nworkers:
        msg = stalled_get(q_in, obs, "shard.stall.analyzer.get.seconds")
        tag = msg[0]
        if tag == "J":
            job_results[msg[1]] = (msg[2], msg[3])
        elif tag == "W":
            worker_bundles[msg[1]] = msg[2]

    if obs is not None:
        # the run span is emitted *before* the merge builds the
        # telemetry capsule — anything recorded later would not ship
        now = time.perf_counter()
        obs.observe("shard.analyzer.run.seconds", now - run_started)
        obs.emit_event("shard.analyzer.run", "shard",
                       ts=run_started - obs.epoch, dur=now - run_started,
                       args={"chunks": chunks_in, "jobs": channel.jobs_sent})
    return _merge(
        cfg, icd, channel, transitions, job_results,
        worker_bundles, components_small, transactions_small, obs,
    )


def _merge(
    cfg: dict,
    icd: ShardedICD,
    channel: ShardChannel,
    transitions: Optional[CaptureTransitionLog],
    job_results: Dict[int, Tuple[str, object]],
    worker_bundles: Dict[int, dict],
    components_small: int,
    transactions_small: int,
    obs: Any = None,
    *,
    extra_counters: Optional[dict] = None,
    analysis_cpu: Optional[List[float]] = None,
    analysis_telemetry: Optional[list] = None,
) -> dict:
    merge_started = time.perf_counter()
    nworkers = channel.n
    workers = [worker_bundles[w] for w in range(nworkers)]

    # ------------------------------------------------------------------
    # violations: capture order + the serial global cycle deduplication
    # ------------------------------------------------------------------
    seen_keys: set = set()
    violation_records: List[object] = []
    for ordinal in range(channel.jobs_sent):
        status, payload = job_results[ordinal]
        if status == "error":
            # deterministic: the serial run would raise from this very
            # component (same capture order, same entry total)
            raise OutOfMemoryBudget(*payload)
        for key, record in payload:
            if key not in seen_keys:
                seen_keys.add(key)
                violation_records.append(record)

    # ------------------------------------------------------------------
    # stats reconciliation: distribute-and-sum counters back to the
    # exact serial totals
    # ------------------------------------------------------------------
    stats = icd.stats
    stats.log_entries = sum(w["entries"] for w in workers)
    stats.live_log_entry_integral += sum(w["integral"] for w in workers)

    elision = icd._elision.stats
    elision.logged = sum(w["el_logged"] for w in workers)
    elision.elided = sum(w["el_elided"] for w in workers)

    gc_stats: GcStats = icd.collector.stats
    gc_stats.log_entries_collected += sum(w["collected"] for w in workers)
    if icd.peak_samples:
        for w in workers:
            assert len(w["samples"]) == len(icd.peak_samples)
        gc_stats.peak_live_log_entries = max(
            icd.peak_samples[i] + sum(w["samples"][i] for w in workers)
            for i in range(len(icd.peak_samples))
        )

    pcd_stats = PCDStats()
    pcd_stats.components_processed = components_small
    pcd_stats.transactions_processed = transactions_small
    for w in workers:
        ws: PCDStats = w["pcd_stats"]
        pcd_stats.components_processed += ws.components_processed
        pcd_stats.transactions_processed += ws.transactions_processed
        pcd_stats.entries_replayed += ws.entries_replayed
        pcd_stats.accesses_replayed += ws.accesses_replayed
        pcd_stats.pdg_edges += ws.pdg_edges
        pcd_stats.cycle_checks += ws.cycle_checks
        pcd_stats.cycle_check_visits += ws.cycle_check_visits
        pcd_stats.engine_search_visits += ws.engine_search_visits
        pcd_stats.order_fallbacks += ws.order_fallbacks
    pcd_stats.cycles_found = len(violation_records)

    bundle = {
        "violations": violation_records,
        "icd_stats": stats,
        "tx_stats": icd.tx_manager.stats,
        "octet_stats": icd.octet.stats,
        "gc_stats": gc_stats,
        "elision_stats": elision,
        "protocol_stats": icd.octet.protocol.stats(),
        "pcd_stats": pcd_stats,
        "counters": {
            "shard.worker_chunks": channel.chunks,
            "shard.worker_bytes": channel.bytes_shipped,
            "shard.worker_records": channel.records,
            "shard.worker_defs": channel.defs_shipped,
            "shard.components": channel.jobs_sent,
            "shard.pcd_jobs": channel.jobs_sent,
            # peer slice mesh accounting (bytes-on-wire per channel);
            # suffix-only slicing makes both deterministic per config
            "shard.slice_msgs": sum(w["slice_msgs"] for w in workers),
            "shard.slice_bytes": sum(w["slice_bytes"] for w in workers),
        },
        "cpu_seconds": {
            "analyzer": time.process_time(),
            "workers": [w["cpu_seconds"] for w in workers],
        },
    }
    if extra_counters:
        bundle["counters"].update(extra_counters)
    if analysis_cpu is not None:
        bundle["cpu_seconds"]["analysis"] = analysis_cpu

    if transitions is not None:
        bundle["capture"] = _capture_bundle(icd, channel, transitions, workers)
    merge_seconds = time.perf_counter() - merge_started
    bundle["merge_seconds"] = merge_seconds
    if obs is not None:
        obs.observe("shard.analyzer.merge.seconds", merge_seconds)
        obs.emit_event("shard.analyzer.merge", "shard",
                       ts=merge_started - obs.epoch, dur=merge_seconds)
    bundle["telemetry"] = {
        "analyzer": telemetry_capsule(obs),
        "workers": [w.pop("telemetry", None) for w in workers],
    }
    if analysis_telemetry is not None:
        bundle["telemetry"]["analysis"] = analysis_telemetry
    return bundle


def _capture_bundle(
    icd: ShardedICD,
    channel: ShardChannel,
    transitions: CaptureTransitionLog,
    workers: List[dict],
) -> dict:
    """Stitch the serial-format dumps from stubs + worker columns."""
    desc_meta = channel.desc_meta
    # per-tx entry dump tuples, merged across shards by seq (each
    # shard's column is already in log order; seqs are unique per log)
    entries_by_tx: Dict[int, List[tuple]] = {}
    for w in workers:
        for tx_id, payload in w["cols"].items():
            arr = unpack_columns(payload)
            out = entries_by_tx.setdefault(tx_id, [])
            for i in range(0, len(arr), 2):
                kind, oid, fieldname, site_str = desc_meta[arr[i]]
                out.append(("a", kind.value, oid, fieldname, arr[i + 1],
                            site_str))
    for out in entries_by_tx.values():
        out.sort(key=lambda e: e[4])

    # stub logs hold wire-format mark tuples in serial mark order
    logs: Dict[int, List[tuple]] = {}
    for tx in icd.tx_manager.all_transactions:
        if tx.log is not None:
            logs[tx.tx_id] = stitch_log(
                tx.log.entries, entries_by_tx.get(tx.tx_id, [])
            )

    # IDG edges with log anchors lifted from stub (mark-only) indices
    # to full-log indices: marks-before stays the stub index, entries-
    # before is the sum of each shard's column length at edge time
    partials: Dict[int, List[int]] = {}
    for w in workers:
        for order, (src_cnt, dst_cnt) in w["partials"].items():
            acc = partials.get(order)
            if acc is None:
                partials[order] = [src_cnt, dst_cnt]
            else:
                acc[0] += src_cnt
                acc[1] += dst_cnt
    edges = []
    for tx in icd.tx_manager.all_transactions:
        for edge in tx.out_edges:
            counts = partials.get(edge.order, (0, 0))
            src_index = (
                None if edge.src_log_index is None
                else edge.src_log_index + counts[0]
            )
            dst_index = (
                None if edge.dst_log_index is None
                else edge.dst_log_index + counts[1]
            )
            edges.append(
                (edge.src.tx_id, edge.dst.tx_id, edge.kind, edge.order,
                 src_index, dst_index)
            )
    return {
        "transitions": transitions.records,
        "logs": logs,
        "edges": sorted(edges),
    }


__all__ = [
    "LiteObj",
    "MirrorView",
    "ShardChannel",
    "ShardedICD",
    "run_analyzer",
]
