"""Capture-mode snapshots shared by the sharded pipeline and its tests.

The sharded determinism tests compare a serial run and a sharded run on
three byte-level observables: the stream of Octet transition records,
every transaction's read/write log entry for entry, and the IDG edge
list (endpoints, kinds, creation order, log anchors).  The serial arm
produces these with :func:`dump_logs` / :func:`dump_edges` directly
from its ICD; the analysis shard produces the same structures by
stitching its mark-only stub logs together with the log shards' entry
columns (see :mod:`repro.shard.analyzer`).  Keeping both dump formats
in one module makes "byte-identical" a property of shared code rather
than of two hand-synchronized serializers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.rwlog import AccessEntry
from repro.octet.runtime import OctetListener


class CaptureTransitionLog(OctetListener):
    """Record every listener-visible Octet transition, fully serialized
    (picklable tuples, so the sharded analyzer can ship them back)."""

    def __init__(self) -> None:
        self.records: List[tuple] = []

    def _add(self, hook: str, record) -> None:
        event = record.event
        self.records.append(
            (
                hook,
                record.kind.value,
                event.seq,
                event.obj.oid,
                event.fieldname,
                event.thread_name,
                repr(record.old_state),
                repr(record.new_state),
                record.prior_owner,
                record.rdsh_counter,
            )
        )

    def on_initial(self, record) -> None:
        self._add("initial", record)

    def on_conflicting(self, record) -> None:
        self._add("conflicting", record)

    def on_upgrading_rd_sh(self, record) -> None:
        self._add("upgrading_rd_sh", record)

    def on_upgrading_wr_ex(self, record) -> None:
        self._add("upgrading_wr_ex", record)

    def on_fence(self, record) -> None:
        self._add("fence", record)


def dump_logs(icd) -> Dict[int, List[tuple]]:
    """Serialize every live transaction's log in log order."""
    out: Dict[int, List[tuple]] = {}
    for tx in icd.tx_manager.all_transactions:
        if tx.log is None:
            continue
        entries = []
        for entry in tx.log.entries:
            if isinstance(entry, AccessEntry):
                entries.append(
                    ("a", entry.kind.value, entry.oid, entry.fieldname,
                     entry.seq, entry.site)
                )
            else:
                entries.append(
                    ("m", entry.edge_order, entry.is_source, entry.seq)
                )
        out[tx.tx_id] = entries
    return out


def dump_edges(icd) -> List[tuple]:
    """Serialize the IDG edges of every live transaction."""
    return sorted(
        (edge.src.tx_id, edge.dst.tx_id, edge.kind, edge.order,
         edge.src_log_index, edge.dst_log_index)
        for tx in icd.tx_manager.all_transactions
        for edge in tx.out_edges
    )


def stitch_log(
    marks: List[Tuple[int, bool, int]],
    entries: List[tuple],
) -> List[tuple]:
    """Merge a stub log's marks with reconstructed entry dump tuples.

    ``marks`` are ``(edge_order, is_source, seq)`` in stub (= serial
    mark) order; ``entries`` are ``("a", ...)`` dump tuples sorted by
    seq.  In the serial log, every mark produced by an access precedes
    the entry that same access may log (marks are appended inside the
    Octet slow path, the entry afterwards), so ties on seq break
    mark-first — which makes this merge reproduce serial log order
    exactly.
    """
    out: List[tuple] = []
    mi, ei = 0, 0
    nm, ne = len(marks), len(entries)
    while mi < nm and ei < ne:
        if marks[mi][2] <= entries[ei][4]:
            order, is_source, seq = marks[mi]
            out.append(("m", order, is_source, seq))
            mi += 1
        else:
            out.append(entries[ei])
            ei += 1
    for order, is_source, seq in marks[mi:]:
        out.append(("m", order, is_source, seq))
    out.extend(entries[ei:])
    return out


__all__ = ["CaptureTransitionLog", "dump_logs", "dump_edges", "stitch_log"]
