"""Partition workers of the partitioned analysis plane.

With ``--analysis-shards A > 1`` the single analysis shard of the
sharded pipeline splits into ``A`` partition workers plus one exchange
owner (:mod:`repro.shard.exchange`).  Each worker owns a deterministic
slice of the object space (:func:`~repro.shard.wire.partition_of`) and
receives, from the coordinator's fan-out recorder, exactly the access
records touching its objects plus a broadcast copy of every definition
and lifecycle record.

The worker's job is *absorption*: decide, per access record, whether
the serial analysis shard would have taken the fused Octet fast path
inside a monitored regular transaction — in which case the record's
only global side effects are a handful of counters and one 3-int log
emission, both of which the worker performs locally — or whether the
record can have cross-partition effects (an ownership transition, a
fence, transaction demarcation in a unary context), in which case the
raw record is forwarded to the exchange owner, who replays it through
the real ICD.  The decision is made against a
:class:`~repro.octet.runtime.PartitionOctetView` mirror: a
partition-local replica of the Octet states whose per-thread read-share
counters are *stream positions*, sound lower bounds on the serial
counters, so a positive certain-fast answer implies the serial fast
path (never vice versa — uncertainty forwards, which is always
correct, merely slower).

Whether an access is instrumented at all is decided from a replica of
the transaction manager's regular-frame map, rebuilt from the
broadcast method-enter/exit/thread-end records; in shardable
configurations (``monitor_regular is None``) every regular frame is
monitored, so *frame present* is exactly *current transaction is a
monitored regular transaction*.

Stream contract (see :mod:`repro.shard.wire` for the merge algebra):

* ``("X", aidx, defs, payload, watermark)`` to the exchange owner —
  forwarded records in raw coordinator format.  Worker 0 additionally
  forwards every definition and lifecycle record verbatim, so the
  owner's def stream is the serial def stream and lifecycle records
  (keyed by their trailing stamp) interleave correctly.
* ``("P", aidx, defs, payload, watermark)`` to every log shard —
  absorbed ``[desc, seq, tid]`` emissions with channel-format defs.
  Worker descs are minted from the strided lane ``aidx + 1`` step
  ``A + 1`` so they never collide with the owner's lane.

Both streams flush at the end of every coordinator chunk (watermark =
the chunk's stamp) and at buffer-threshold overflows (watermark = the
last processed seq), so all watermarks advance in lockstep and neither
the owner's merge nor a log shard's ``W_ADVANCE`` drain can stall.
"""

from __future__ import annotations

import time
import traceback
from array import array
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import use_registry
from repro.obs.wire import (
    child_registry,
    sample_depth,
    stalled_get,
    telemetry_capsule,
)
from repro.octet.runtime import PartitionOctetView, barrier_fastpath_enabled
from repro.octet.states import StateKind
from repro.runtime.events import AccessKind
from repro.shard.wire import (
    CHUNK_INTS,
    STAMP_INF,
    T_BLOCK,
    T_END,
    T_ENTER,
    T_EVENT,
    T_EXIT,
    T_TEND,
    T_TSTART,
    WORKER_CHUNK_INTS,
    decode_chunk,
    encode_chunk,
    shard_of,
)


class PartitionShard:
    """One partition worker's state machine (see module docstring)."""

    def __init__(self, aidx: int, analysis_shards: int, spec,
                 monitor_unary: bool, instrument_arrays: bool,
                 q_exchange, worker_queues, *, peer_queues=None,
                 obs=None) -> None:
        self.aidx = aidx
        self.analysis_shards = analysis_shards
        self.spec = spec
        self.monitor_unary = monitor_unary
        self.instrument_arrays = instrument_arrays
        self.q_exchange = q_exchange
        self.worker_queues = worker_queues
        self.nworkers = len(worker_queues)
        self.obs = obs
        #: absorption requires the fused fast path; with the escape
        #: hatch off every record forwards and the owner replays the
        #: exact reference pipeline
        self.absorbing = barrier_fastpath_enabled()

        self.view = PartitionOctetView()
        #: tid -> (mid, depth) replica of the tx manager's regular
        #: frames (monitored is always True in shardable configs)
        self.frames: Dict[int, Tuple[int, int]] = {}
        #: mid -> is_atomic (from "m" defs via the spec)
        self.atomic_mid: List[bool] = []
        #: coordinator desc -> (oid, kind, is_array, fieldname, site_str)
        self.desc_rows: List[tuple] = []
        #: coordinator edesc -> same shape (sync-ness is irrelevant to
        #: absorption; events flow through the same fused predicate)
        self.edesc_rows: List[tuple] = []
        #: coordinator desc/edesc -> (worker desc, owning log shard),
        #: minted lazily on first absorbed use
        self.wdesc_by_desc: List[Optional[Tuple[int, int]]] = []
        self.wdesc_by_edesc: List[Optional[Tuple[int, int]]] = []
        self._next_wdesc = aidx + 1
        self._wdesc_stride = analysis_shards + 1

        # outbound buffers
        self.xbuf = array("q")
        self.xdefs: list = []  # worker 0 only: coordinator defs, verbatim
        self.pbufs = [array("q") for _ in range(self.nworkers)]
        self.pdefs: List[list] = [[] for _ in range(self.nworkers)]

        # peer counter sync: a fence (or upgrade-to-RdSh) on one of
        # this worker's objects raises the thread's serial rdShCnt for
        # *every* partition's subsequent RdSh reads, so broadcast the
        # bump as a ``(tid, ctr, pos)`` fact.  Receivers gate each fact
        # on their own stream position (a fact is true for all global
        # positions >= pos; counters are monotone), so late arrival
        # only costs conservative forwards, never a wrong absorption.
        self.peers = [
            q for j, q in enumerate(peer_queues or ()) if j != aidx
        ] if self.absorbing else []
        self.kbuf = array("q")
        self.kpend: List[tuple] = []  # buffered inbound (pos, tid, ctr)
        self.position = 0  # stamp of the last fully processed chunk

        # serial-stat shares owed back to the owner ("Y" final)
        self.t_instrumented = 0
        self.t_regular = 0
        self.t_skipped = 0
        self.t_array_skipped = 0
        #: worker desc -> (kind, oid, fieldname, site_str); merged into
        #: the owner channel's desc_meta for capture expansion
        self.desc_meta: Dict[int, tuple] = {}
        # wire accounting (nondeterministic only in flush granularity)
        self.absorbed = 0
        self.forwarded = 0
        self.x_chunks = 0
        self.x_bytes = 0
        self.p_chunks = 0
        self.p_bytes = 0
        self.k_facts = 0
        self.k_bytes = 0
        self.ended = False

    # ------------------------------------------------------------------
    # defs
    # ------------------------------------------------------------------
    def handle_defs(self, defs: tuple) -> None:
        desc_rows = self.desc_rows
        edesc_rows = self.edesc_rows
        for df in defs:
            tag = df[0]
            if tag == "d":
                _, _d, oid, fieldname, kindval, method, index, arraybit = df
                desc_rows.append(
                    (oid, AccessKind(kindval), bool(arraybit), fieldname,
                     f"{method}@{index}")
                )
                self.wdesc_by_desc.append(None)
            elif tag == "e":
                (_, _ed, oid, fieldname, kindval, method, index,
                 _syncbit, arraybit) = df
                edesc_rows.append(
                    (oid, AccessKind(kindval), bool(arraybit), fieldname,
                     f"{method}@{index}")
                )
                self.wdesc_by_edesc.append(None)
            elif tag == "m":
                _, m, name = df
                assert m == len(self.atomic_mid)
                self.atomic_mid.append(self.spec.is_atomic(name))
            # "t" defs need no worker-side state: records carry tids

    def _register_wdesc(self, row: tuple) -> Tuple[int, int]:
        oid, kind, _is_array, fieldname, site_str = row
        d = self._next_wdesc
        self._next_wdesc = d + self._wdesc_stride
        widx = shard_of(oid, fieldname, self.nworkers)
        self.desc_meta[d] = (kind, oid, fieldname, site_str)
        df = ("d", d, oid, fieldname, kind.value, site_str)
        for defs in self.pdefs:
            defs.append(df)
        return d, widx

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def flush_streams(self, watermark: int) -> None:
        """Ship both streams; empty payloads still advance watermarks."""
        payload = encode_chunk(self.xbuf)
        del self.xbuf[:]
        defs = tuple(self.xdefs)
        self.xdefs.clear()
        self.x_chunks += 1
        self.x_bytes += len(payload)
        obs = self.obs
        if obs is not None:
            # flow start: binds to the exchange owner's matching finish
            # for this stream's chunk ordinal (FIFO queue per stream)
            obs.emit_flow(
                "shard.xchunk", time.perf_counter() - obs.epoch,
                self.aidx * 1_000_000 + self.x_chunks - 1, "s",
            )
        self.q_exchange.put(("X", self.aidx, defs, payload, watermark))
        if obs is not None:
            sample_depth(obs, "shard.queue.p2x.depth", self.q_exchange)
        for widx in range(self.nworkers):
            pbuf = self.pbufs[widx]
            pdefs = tuple(self.pdefs[widx])
            self.pdefs[widx].clear()
            payload = encode_chunk(pbuf)
            del pbuf[:]
            self.p_chunks += 1
            self.p_bytes += len(payload)
            self.worker_queues[widx].put(
                ("P", self.aidx, pdefs, payload, watermark)
            )
        kbuf = self.kbuf
        if kbuf and not self.ended:
            payload = encode_chunk(kbuf)
            del kbuf[:]
            self.k_facts += len(payload) // 24
            self.k_bytes += len(payload) * len(self.peers)
            for q in self.peers:
                q.put(("K", payload))

    # ------------------------------------------------------------------
    # peer counter sync
    # ------------------------------------------------------------------
    def handle_facts(self, payload: bytes) -> None:
        """Buffer a peer's ``(tid, ctr, pos)`` counter-sync facts."""
        arr = decode_chunk(payload)
        kpend = self.kpend
        for i in range(0, len(arr), 3):
            kpend.append((arr[i + 2], arr[i], arr[i + 1]))

    def _apply_facts(self) -> None:
        """Apply buffered facts proven for every upcoming position."""
        position = self.position
        known_ctr = self.view.known_ctr
        later = []
        for fact in self.kpend:
            pos, tid, ctr = fact
            if pos <= position:
                if ctr > known_ctr.get(tid, 0):
                    known_ctr[tid] = ctr
            else:
                later.append(fact)
        self.kpend = later

    # ------------------------------------------------------------------
    # record stream
    # ------------------------------------------------------------------
    def handle_chunk(self, defs: tuple, payload: bytes, stamp: int) -> None:
        if defs:
            if self.aidx == 0:
                self.xdefs.extend(defs)
            self.handle_defs(defs)
        if self.kpend:
            self._apply_facts()
        arr = decode_chunk(payload)
        absorbing = self.absorbing
        forward_life = self.aidx == 0
        xbuf = self.xbuf
        pbufs = self.pbufs
        desc_rows = self.desc_rows
        edesc_rows = self.edesc_rows
        wdesc_by_desc = self.wdesc_by_desc
        wdesc_by_edesc = self.wdesc_by_edesc
        frames = self.frames
        atomic_mid = self.atomic_mid
        monitor_unary = self.monitor_unary
        instrument_arrays = self.instrument_arrays
        states = self.view._states
        known_ctr = self.view.known_ctr
        apply_tr = self.view.apply
        peers = self.peers
        kbuf = self.kbuf
        _READ = AccessKind.READ
        _WR_EX = StateKind.WR_EX
        _RD_EX = StateKind.RD_EX
        _RD_SH = StateKind.RD_SH
        i = 0
        n = len(arr)
        while i < n:
            v = arr[i]
            if v >= 0 or v == T_EVENT:
                if v >= 0:
                    row = desc_rows[v]
                    cache = wdesc_by_desc
                    seq = arr[i + 1]
                    tid = arr[i + 2]
                    i += 3
                else:
                    v = arr[i + 1]
                    row = edesc_rows[v]
                    cache = wdesc_by_edesc
                    seq = arr[i + 2]
                    tid = arr[i + 3]
                    i += 4
                if absorbing:
                    if row[2] and not instrument_arrays:
                        self.t_array_skipped += 1
                        self.absorbed += 1
                        continue
                    in_frame = tid in frames
                    if not in_frame and not monitor_unary:
                        # the serial pipeline drops the access before
                        # the Octet barrier: no transition to mirror
                        self.t_skipped += 1
                        self.absorbed += 1
                        continue
                    oid = row[0]
                    kind = row[1]
                    if in_frame:
                        state = states.get(oid)
                        if state is not None:
                            skind = state.kind
                            if (
                                state.owner == tid
                                and (
                                    skind is _WR_EX
                                    or (skind is _RD_EX and kind is _READ)
                                )
                            ) or (
                                skind is _RD_SH
                                and kind is _READ
                                and known_ctr.get(tid, 0) >= state.counter
                            ):
                                # certain fast path inside a monitored
                                # regular transaction: counters plus one
                                # log emission, all local
                                self.t_instrumented += 1
                                self.t_regular += 1
                                self.absorbed += 1
                                entry = cache[v]
                                if entry is None:
                                    entry = cache[v] = \
                                        self._register_wdesc(row)
                                d, widx = entry
                                pbuf = pbufs[widx]
                                pbuf.append(d)
                                pbuf.append(seq)
                                pbuf.append(tid)
                                if len(pbuf) >= WORKER_CHUNK_INTS:
                                    self.flush_streams(seq)
                                continue
                    # may transition, fence, or demarcate: forward and
                    # keep the mirror exact (forwarded records are
                    # always instrumented here, so the serial side
                    # always reaches the Octet barrier)
                    ctr = apply_tr(oid, kind, tid, seq)
                    if ctr is not None and peers:
                        kbuf.append(tid)
                        kbuf.append(ctr)
                        kbuf.append(seq)
                self.forwarded += 1
                if cache is wdesc_by_desc:
                    xbuf.append(v)
                else:
                    xbuf.append(T_EVENT)
                    xbuf.append(v)
                xbuf.append(seq)
                xbuf.append(tid)
                if len(xbuf) >= CHUNK_INTS:
                    self.flush_streams(seq)
            elif v == T_ENTER:
                t = arr[i + 1]
                m = arr[i + 2]
                if t not in frames and atomic_mid[m]:
                    frames[t] = (m, arr[i + 3])
                if forward_life:
                    xbuf.append(v)
                    xbuf.append(t)
                    xbuf.append(m)
                    xbuf.append(arr[i + 3])
                    xbuf.append(arr[i + 4])
                i += 5
            elif v == T_EXIT:
                t = arr[i + 1]
                if frames.get(t) == (arr[i + 2], arr[i + 3]):
                    del frames[t]
                if forward_life:
                    xbuf.append(v)
                    xbuf.append(t)
                    xbuf.append(arr[i + 2])
                    xbuf.append(arr[i + 3])
                    xbuf.append(arr[i + 4])
                i += 5
            elif v == T_TSTART:
                if forward_life:
                    xbuf.append(v)
                    xbuf.append(arr[i + 1])
                    xbuf.append(arr[i + 2])
                i += 3
            elif v == T_TEND:
                frames.pop(arr[i + 1], None)
                if forward_life:
                    xbuf.append(v)
                    xbuf.append(arr[i + 1])
                    xbuf.append(arr[i + 2])
                i += 3
            elif v == T_BLOCK:
                if forward_life:
                    xbuf.append(v)
                    xbuf.append(arr[i + 1])
                    xbuf.append(arr[i + 2])
                    xbuf.append(arr[i + 3])
                i += 4
            else:  # T_END
                self.ended = True
                if forward_life:
                    xbuf.append(v)
                    xbuf.append(arr[i + 1])
                i += 2
        self.position = stamp
        self.flush_streams(STAMP_INF if self.ended else stamp)

    # ------------------------------------------------------------------
    def final(self) -> tuple:
        tallies = {
            "instrumented": self.t_instrumented,
            "regular": self.t_regular,
            "skipped": self.t_skipped,
            "array_skipped": self.t_array_skipped,
            "absorbed": self.absorbed,
            "forwarded": self.forwarded,
            "x_chunks": self.x_chunks,
            "x_bytes": self.x_bytes,
            "p_chunks": self.p_chunks,
            "p_bytes": self.p_bytes,
            "k_facts": self.k_facts,
            "k_bytes": self.k_bytes,
        }
        return ("Y", self.aidx, tallies, self.desc_meta,
                time.process_time(), telemetry_capsule(self.obs))


def run_partition(cfg: dict, aidx: int, q_in, q_exchange,
                  worker_queues, peer_queues=None) -> None:
    """Partition-worker main loop."""
    try:
        obs = child_registry(cfg.get("obs"), f"shard-analysis-{aidx}")
        if obs is not None:
            use_registry(obs)
            run_started = time.perf_counter()
        shard = PartitionShard(
            aidx, cfg["analysis_shards"], cfg["spec"],
            cfg["monitor_unary"], cfg["instrument_arrays"],
            q_exchange, worker_queues, peer_queues=peer_queues, obs=obs,
        )
        chunks_in = 0
        while not shard.ended:
            msg = stalled_get(q_in, obs, "shard.stall.analysis.get.seconds")
            if msg[0] == "K":
                shard.handle_facts(msg[1])
                continue
            _, defs, payload, stamp = msg
            if obs is not None:
                chunk_started = time.perf_counter()
                obs.emit_flow("shard.chunk", chunk_started - obs.epoch,
                              aidx * 1_000_000 + chunks_in, "f")
            shard.handle_chunk(defs, payload, stamp)
            if obs is not None:
                now = time.perf_counter()
                obs.observe("shard.partition.chunk.seconds",
                            now - chunk_started)
                chunks_in += 1
        if obs is not None:
            now = time.perf_counter()
            obs.observe("shard.partition.run.seconds", now - run_started)
            obs.emit_event("shard.partition.run", "shard",
                           ts=run_started - obs.epoch, dur=now - run_started,
                           args={"chunks": chunks_in,
                                 "absorbed": shard.absorbed,
                                 "forwarded": shard.forwarded})
        q_exchange.put(shard.final())
    except BaseException as exc:  # noqa: BLE001 - crosses a process
        q_exchange.put(
            ("E", (type(exc).__name__, getattr(exc, "args", ()),
                   traceback.format_exc()))
        )


__all__ = ["PartitionShard", "run_partition"]
