"""Wire format for the sharded analysis pipeline.

Both inter-process streams — coordinator → analysis shard and analysis
shard → log shards — are sequences of **int64 records** batched into
``array('q')`` chunks and shipped as flat bytes, reusing the columnar
idiom of the batch executor: the hot path appends small integers to a
pre-grown array and periodically flushes ``tobytes()``; nothing is
pickled per event.  Strings (thread names, field names, method names,
site strings) travel out-of-band as *definition* tuples attached to
the chunk message that first needs them; a definition always precedes
the first record that references its id because the sender registers
ids eagerly and flushes definitions with (or before) the chunk that
uses them.

Record layouts (first int is the tag; non-negative tags are interned
access descriptors, so the common case costs three ints)::

  coordinator -> analyzer
    desc >= 0 : [desc, seq, tid]           batch-path access
    T_EVENT   : [tag, edesc, seq, tid]     event-path access
    T_ENTER   : [tag, tid, mid, depth]     method enter
    T_EXIT    : [tag, tid, mid, depth]     method exit
    T_TSTART  : [tag, tid]                 thread start
    T_TEND    : [tag, tid]                 thread end
    T_BLOCK   : [tag, tid, 0|1]            blocked-state flip
    T_END     : [tag]                      execution end

  analyzer -> log shard
    d >= 0    : [d, seq, tid]              log-record candidate
    W_TXSTART : [tag, tid, txid]           transaction start
    W_TXEND   : [tag]                      transaction end (sampling)
    W_EDGE    : [tag, stid, dtid, order, stxid, dtxid]
    W_SWEEP   : [tag, n, txid * n]         GC sweep (peak sample point)
    W_JOB     : [tag, ordinal]             PCD job cutoff sentinel

Access *descriptors* intern the immutable part of an access — object,
field, kind, site — per ``(site, address)`` pair (kind is static per
site, the address varies with the receiver), so the per-access record
is just ``[desc, seq, tid]``.

The address partition is a stable hash of the ``(oid, field)`` pair:
:func:`shard_of` uses ``zlib.crc32`` (process-independent, unlike
Python's randomized ``hash``) so every process agrees on ownership.
"""

from __future__ import annotations

from array import array
from typing import Tuple
from zlib import crc32

# ---------------------------------------------------------------------
# coordinator -> analyzer record tags
# ---------------------------------------------------------------------
T_EVENT = -1
T_ENTER = -2
T_EXIT = -3
T_TSTART = -4
T_TEND = -5
T_BLOCK = -6
T_END = -7

# ---------------------------------------------------------------------
# analyzer -> log shard record tags
# ---------------------------------------------------------------------
W_TXSTART = -1
W_TXEND = -2
W_EDGE = -3
W_SWEEP = -4
#: in-stream component-capture sentinel: its position in the record
#: stream *is* the job's log cutoff (the member spec rides the same
#: chunk's defs tuple), so announcing a job costs no extra flush
W_JOB = -5

#: flush threshold for the coordinator's record buffer, in int64s
#: (~192 KiB per message: large enough to amortize queue overhead,
#: small enough to keep the analyzer streaming)
CHUNK_INTS = 24_576

#: flush threshold for the analyzer's per-shard buffers
WORKER_CHUNK_INTS = 16_384


def shard_of(oid: int, fieldname: str, nshards: int) -> int:
    """Stable owner of address ``(oid, fieldname)`` among ``nshards``
    log shards.  crc32 is deterministic across processes and runs
    (Python's ``hash`` is salted per process, which would scatter the
    same address to different shards on replay)."""
    return crc32(b"%d.%s" % (oid, fieldname.encode())) % nshards


def encode_chunk(buf: array) -> bytes:
    """Flatten a record buffer for the queue; the buffer is reusable
    after ``del buf[:]``."""
    return buf.tobytes()


def decode_chunk(payload: bytes) -> array:
    out = array("q")
    out.frombytes(payload)
    return out


def pack_columns(pairs: array) -> bytes:
    """Serialize a per-transaction (desc, seq) column pair array."""
    return pairs.tobytes()


def unpack_columns(payload: bytes) -> array:
    out = array("q")
    out.frombytes(payload)
    return out


Address = Tuple[int, str]

__all__ = [
    "T_EVENT", "T_ENTER", "T_EXIT", "T_TSTART", "T_TEND", "T_BLOCK",
    "T_END", "W_TXSTART", "W_TXEND", "W_EDGE", "W_SWEEP", "W_JOB",
    "CHUNK_INTS", "WORKER_CHUNK_INTS", "shard_of",
    "encode_chunk", "decode_chunk", "pack_columns", "unpack_columns",
    "Address",
]
