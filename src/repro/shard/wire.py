"""Wire format for the sharded analysis pipeline.

All inter-process streams — coordinator → analysis plane, partition
worker → exchange owner, and analysis plane → log shards — are
sequences of **int64 records** batched into ``array('q')`` chunks and
shipped as flat bytes, reusing the columnar idiom of the batch
executor: the hot path appends small integers to a pre-grown array and
periodically flushes ``tobytes()``; nothing is pickled per event.
Strings (thread names, field names, method names, site strings) travel
out-of-band as *definition* tuples attached to the chunk message that
first needs them; a definition always precedes the first record that
references its id because the sender registers ids eagerly and flushes
definitions with (or before) the chunk that uses them.

Record layouts (first int is the tag; non-negative tags are interned
access descriptors, so the common case costs three ints)::

  coordinator -> analysis plane
    desc >= 0 : [desc, seq, tid]           batch-path access
    T_EVENT   : [tag, edesc, seq, tid]     event-path access
    T_ENTER   : [tag, tid, mid, depth, stamp]   method enter
    T_EXIT    : [tag, tid, mid, depth, stamp]   method exit
    T_TSTART  : [tag, tid, stamp]          thread start
    T_TEND    : [tag, tid, stamp]          thread end
    T_BLOCK   : [tag, tid, 0|1, stamp]     blocked-state flip
    T_END     : [tag, stamp]               execution end

  analysis plane -> log shard
    d >= 0    : [d, seq, tid]              log-record candidate
    W_TXSTART : [tag, tid, txid]           transaction start
    W_TXEND   : [tag]                      transaction end (sampling)
    W_EDGE    : [tag, stid, dtid, order, stxid, dtxid]
    W_SWEEP   : [tag, n, txid * n]         GC sweep (peak sample point)
    W_JOB     : [tag, ordinal]             PCD job cutoff sentinel
    W_ADVANCE : [tag, stamp]               partition-stream barrier

Lifecycle records carry a trailing *stamp*: the seq of the last access
the coordinator emitted before them.  With a single analysis worker
the stamp is simply skipped on decode; with ``--analysis-shards N`` it
is the merge key that interleaves worker 0's forwarded lifecycle
records into the globally seq-ordered access stream at the exchange
owner (a lifecycle record stamped ``s`` sorts *after* the access with
seq ``s``).

``W_ADVANCE`` exists only under a partitioned analysis plane: the
exchange owner emits it before each merged record so a log shard knows
every partition worker's directly-shipped records with ``seq <= stamp``
must drain ahead of the owner records that follow.  Partition workers
ship absorbed fast-path accesses straight to the owning log shard
(same ``[d, seq, tid]`` layout, descriptor ids strided so owner and
worker id spaces never collide) in watermarked batches.

Access *descriptors* intern the immutable part of an access — object,
field, kind, site — per ``(site, address)`` pair (kind is static per
site, the address varies with the receiver), so the per-access record
is just ``[desc, seq, tid]``.

The address partition is a stable hash of the ``(oid, field)`` pair:
:func:`shard_of` uses ``zlib.crc32`` (process-independent, unlike
Python's randomized ``hash``) so every process agrees on ownership.
The analysis-plane partition (:func:`partition_of`) hashes the ``oid``
*alone* — Octet ownership state is per-object, so every field of one
object must land on the same partition worker.
"""

from __future__ import annotations

from array import array
from typing import List, Tuple
from zlib import crc32

# ---------------------------------------------------------------------
# coordinator -> analysis plane record tags
# ---------------------------------------------------------------------
T_EVENT = -1
T_ENTER = -2
T_EXIT = -3
T_TSTART = -4
T_TEND = -5
T_BLOCK = -6
T_END = -7

# ---------------------------------------------------------------------
# analysis plane -> log shard record tags
# ---------------------------------------------------------------------
W_TXSTART = -1
W_TXEND = -2
W_EDGE = -3
W_SWEEP = -4
#: in-stream component-capture sentinel: its position in the record
#: stream *is* the job's log cutoff (the member spec rides the same
#: chunk's defs tuple), so announcing a job costs no extra flush
W_JOB = -5
#: partition-stream barrier: drain worker-shipped records up to the
#: stamp before applying whatever the exchange owner sends next
W_ADVANCE = -6

#: watermark value meaning "this stream is complete" — larger than any
#: real seq, small enough to survive int64 arithmetic
STAMP_INF = 2 ** 62

#: flush threshold for the coordinator's record buffer, in int64s
#: (~192 KiB per message: large enough to amortize queue overhead,
#: small enough to keep the analyzer streaming)
CHUNK_INTS = 24_576

#: flush threshold for the analyzer's per-shard buffers
WORKER_CHUNK_INTS = 16_384


def shard_of(oid: int, fieldname: str, nshards: int) -> int:
    """Stable owner of address ``(oid, fieldname)`` among ``nshards``
    log shards.  crc32 is deterministic across processes and runs
    (Python's ``hash`` is salted per process, which would scatter the
    same address to different shards on replay)."""
    return crc32(b"%d.%s" % (oid, fieldname.encode())) % nshards


def partition_of(oid: int, nparts: int) -> int:
    """Stable analysis-plane owner of object ``oid`` among ``nparts``
    partition workers.  Keyed on the object alone (not the field):
    Octet ownership metadata is per-object state, so splitting one
    object's fields across workers would split its state machine."""
    return crc32(b"%d" % oid) % nparts


class ChunkPool:
    """Freelist of reusable ``array('q')`` chunk buffers.

    The recorder's flush path previously paid one fresh ``array('q')``
    allocation (plus growth re-allocations back up to the chunk size)
    per shipped chunk; the pool hands flushed buffers back to the hot
    path once their bytes have been copied out.  Bounded so a burst of
    in-flight chunks cannot pin unbounded memory.
    """

    __slots__ = ("_free", "_cap")

    def __init__(self, cap: int = 16) -> None:
        self._free: List[array] = []
        self._cap = cap

    def acquire(self) -> array:
        if self._free:
            return self._free.pop()
        return array("q")

    def release(self, buf: array) -> None:
        if len(self._free) < self._cap:
            del buf[:]
            self._free.append(buf)


def encode_chunk(buf: array) -> bytes:
    """Flatten a record buffer for the queue; the buffer is reusable
    after ``del buf[:]``."""
    return buf.tobytes()


def decode_chunk(payload: bytes) -> array:
    out = array("q")
    out.frombytes(payload)
    return out


def pack_columns(pairs: array) -> bytes:
    """Serialize a per-transaction (desc, seq) column pair array."""
    return pairs.tobytes()


def unpack_columns(payload: bytes) -> array:
    out = array("q")
    out.frombytes(payload)
    return out


Address = Tuple[int, str]

__all__ = [
    "T_EVENT", "T_ENTER", "T_EXIT", "T_TSTART", "T_TEND", "T_BLOCK",
    "T_END", "W_TXSTART", "W_TXEND", "W_EDGE", "W_SWEEP", "W_JOB",
    "W_ADVANCE", "STAMP_INF", "CHUNK_INTS", "WORKER_CHUNK_INTS",
    "shard_of", "partition_of", "ChunkPool",
    "encode_chunk", "decode_chunk", "pack_columns", "unpack_columns",
    "Address",
]
