"""Coordinator for sharded single-run analysis.

Runs the executor in-process with a :class:`ShardStreamRecorder` as its
only listener (so execution proceeds exactly as a serial run would —
analyses never feed back into scheduling), streams the recorded
execution to the analysis shard, and the analysis shard fans log
construction and PCD replay out to ``shards - 1`` log shards.  The
merged bundle that comes back is packaged into the same
:class:`~repro.core.doublechecker.SingleRunResult` a serial
``run_single`` produces, byte-identical in every field the serial run
populates.

Topology (``N = shards`` worker processes)::

    coordinator ──records──▶ analysis shard ──records──▶ log shard 1
        (executor)            (Octet+ICD)    ├─records──▶ ...
                                   ▲         └─records──▶ log shard N-1
                                   │ job results, stat shares
                                   └── log shards (peer slice mesh)

With ``--analysis-shards A > 1`` the analysis shard itself splits into
``A`` partition workers plus one exchange owner (see
:mod:`repro.shard.partition` and :mod:`repro.shard.exchange`)::

    coordinator ──per-partition records──▶ analysis worker 0..A-1
        (executor)                               │ forwarded records
                                                 ▼ (k-way seq merge)
             log shard 1..N-1 ◀──records──  exchange owner (Octet+ICD)
                  ▲ absorbed records (drained at W_ADVANCE barriers)
                  └────────── analysis workers (direct)

Every child is a forked daemon; the coordinator polls the result queue
with a liveness check so a crashed child surfaces as an error instead
of a hang, and analysis-side exceptions (including the deterministic
``OutOfMemoryBudget``) are re-raised here with their original args.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Optional, Tuple

from repro.core.reports import ViolationSummary
from repro.errors import OutOfMemoryBudget, ReproError
from repro.obs.registry import NOOP, publish_stats, recorder as obs_recorder
from repro.obs.wire import merge_capsule, sample_depth, trace_context
from repro.runtime.executor import Executor
from repro.shard.analyzer import run_analyzer
from repro.shard.exchange import run_exchange
from repro.shard.logworker import run_worker
from repro.shard.partition import run_partition
from repro.shard.recorder import ShardStreamRecorder


class ShardWorkerError(ReproError):
    """A shard process failed with a non-analysis error."""


def unsupported_features(checker, monitor_regular,
                         monitor_unary_site) -> Tuple[str, ...]:
    """Which features of this configuration keep it off the sharded path?

    Callables can't cross the process boundary (``monitor_regular`` /
    ``monitor_unary_site``), the ICD memory budget is defined over one
    process's footprint, and object-granularity arrays change the
    address space the partition is defined over.  Returns a tuple of
    feature names, empty when the configuration can run sharded with
    byte-identical results; the caller records one
    ``shard.fallback.<name>`` counter per entry plus a single
    ``shard.fallbacks`` increment for the run.
    """
    missing = []
    if monitor_regular is not None:
        missing.append("monitor_regular")
    if monitor_unary_site is not None:
        missing.append("monitor_unary_site")
    if checker.icd_memory_budget is not None:
        missing.append("icd_memory_budget")
    if checker.array_granularity_object:
        missing.append("array_granularity_object")
    return tuple(missing)


def supported_config(checker, monitor_regular, monitor_unary_site) -> bool:
    """Can this configuration run sharded with byte-identical results?"""
    return not unsupported_features(checker, monitor_regular,
                                    monitor_unary_site)


def run_single_sharded(
    checker,
    program,
    scheduler,
    shards: int,
    *,
    analysis_shards: int = 1,
    monitor_unary: bool = True,
    capture: bool = False,
    stats_out: Optional[dict] = None,
) -> Tuple["SingleRunResult", Optional[dict]]:
    """Sharded equivalent of ``DoubleChecker.run_single``.

    Returns ``(result, capture_bundle)``; the capture bundle (serial
    transition/log/edge dumps, used by the determinism tests) is
    ``None`` unless ``capture=True``.  ``stats_out``, if given, is
    filled with per-role CPU seconds and wire counters (the sharded
    benchmark reads these to compute the pipeline critical path).
    ``analysis_shards > 1`` splits the analysis shard into that many
    partition workers plus an exchange owner (the partitioned analysis
    plane); results stay byte-identical at any shard count.
    """
    from repro.core.doublechecker import SingleRunResult

    obs = obs_recorder()
    obs.set_label("coordinator")
    cfg = {
        "spec": checker.spec,
        "shards": shards,
        "analysis_shards": analysis_shards,
        "monitor_unary": monitor_unary,
        "instrument_arrays": checker.instrument_arrays,
        "cycle_detection": checker.cycle_detection,
        "eager_scc": checker.eager_scc,
        "gc_interval": checker.gc_interval,
        "use_engine": checker.use_engine,
        "pcd_memory_budget": checker.pcd_memory_budget,
        "capture": capture,
        # trace context: children inherit the run's epoch/trace id and
        # ship their span/histogram buffers back inside the bundles
        "obs": trace_context(obs),
    }
    nworkers = shards - 1
    ctx = mp.get_context("fork")
    # mp.Queue (feeder-thread buffered) everywhere: a synchronous pipe
    # (SimpleQueue) can deadlock the peer slice mesh — two log shards
    # sending each other slices block on full pipes simultaneously
    worker_queues = [ctx.Queue() for _ in range(nworkers)]
    q_result = ctx.Queue()

    children = []
    if analysis_shards > 1:
        # partitioned analysis plane: A partition workers feed one
        # exchange owner; the log shards' feedback (job results, stat
        # shares) flows to the owner
        q_parts = [ctx.Queue() for _ in range(analysis_shards)]
        q_exchange = ctx.Queue()
        q_feedback = q_exchange
        children.append(
            ctx.Process(
                target=run_exchange,
                args=(cfg, q_exchange, worker_queues, q_result),
                name="shard-exchange",
                daemon=True,
            )
        )
        for aidx in range(analysis_shards):
            children.append(
                ctx.Process(
                    target=run_partition,
                    args=(cfg, aidx, q_parts[aidx], q_exchange,
                          worker_queues, q_parts),
                    name=f"shard-analysis-{aidx}",
                    daemon=True,
                )
            )
    else:
        q_analyzer = ctx.Queue()
        q_feedback = q_analyzer
        children.append(
            ctx.Process(
                target=run_analyzer,
                args=(cfg, q_analyzer, worker_queues, q_result),
                name="shard-analyzer",
                daemon=True,
            )
        )
    for widx in range(nworkers):
        children.append(
            ctx.Process(
                target=run_worker,
                args=(cfg, widx, worker_queues[widx], worker_queues,
                      q_feedback, q_result),
                name=f"shard-log-{widx}",
                daemon=True,
            )
        )

    started = time.perf_counter()
    cpu_before = time.process_time()
    try:
        for child in children:
            child.start()
        if analysis_shards > 1:
            if obs.enabled:
                epoch = obs.epoch
                part_ordinals = [0] * analysis_shards

                def _sink_fanout(part, defs, payload, stamp):
                    # flow start: binds to partition worker `part`'s
                    # matching finish (FIFO queue, per-worker ordinal
                    # in the wchunk id convention)
                    obs.emit_flow("shard.chunk",
                                  time.perf_counter() - epoch,
                                  part * 1_000_000 + part_ordinals[part],
                                  "s")
                    part_ordinals[part] += 1
                    q_parts[part].put(("C", defs, payload, stamp))
                    sample_depth(obs, "shard.queue.c2p.depth",
                                 q_parts[part])

            else:

                def _sink_fanout(part, defs, payload, stamp):
                    q_parts[part].put(("C", defs, payload, stamp))

            recorder = ShardStreamRecorder(
                _sink_fanout, partitions=analysis_shards
            )
        elif obs.enabled:
            epoch = obs.epoch
            chunk_ordinal = [0]

            def _sink(defs, payload):
                # flow start: binds to the analyzer's matching flow
                # finish for the same chunk ordinal (FIFO queue)
                obs.emit_flow("shard.chunk", time.perf_counter() - epoch,
                              chunk_ordinal[0], "s")
                chunk_ordinal[0] += 1
                q_analyzer.put(("C", defs, payload))
                sample_depth(obs, "shard.queue.c2a.depth", q_analyzer)

            recorder = ShardStreamRecorder(_sink)
        else:
            recorder = ShardStreamRecorder(
                lambda defs, payload: q_analyzer.put(("C", defs, payload))
            )
        executor = Executor(program, scheduler, [recorder])
        with obs.span("shard.execute", shards=shards):
            execution = executor.run()
        coordinator_cpu = time.process_time() - cpu_before

        with obs.span("shard.await"):
            bundle = _await_result(q_result, children, obs)
        elapsed = time.perf_counter() - started
    finally:
        for child in children:
            if child.is_alive():
                child.terminate()
        for child in children:
            child.join(timeout=5.0)

    violations = ViolationSummary()
    violations.extend(bundle["violations"])
    result = SingleRunResult(
        violations=violations,
        execution=execution,
        icd_stats=bundle["icd_stats"],
        tx_stats=bundle["tx_stats"],
        octet_stats=bundle["octet_stats"],
        gc_stats=bundle["gc_stats"],
        elision_stats=bundle["elision_stats"],
        protocol_stats=bundle["protocol_stats"],
        pcd_stats=bundle["pcd_stats"],
        elapsed_seconds=elapsed,
    )
    _publish(recorder, bundle, shards, coordinator_cpu)
    if stats_out is not None:
        stats_out["cpu_seconds"] = {
            "coordinator": coordinator_cpu,
            **bundle["cpu_seconds"],
        }
        stats_out["merge_seconds"] = bundle["merge_seconds"]
        stats_out["wall_seconds"] = elapsed
        stats_out["counters"] = dict(bundle["counters"])
        stats_out["stream_bytes"] = recorder.bytes_shipped
        stats_out["stream_records"] = recorder.records
    return result, bundle.get("capture")


def _await_result(q_result, children, obs=NOOP) -> dict:
    """Wait for the analysis bundle, re-raising child failures."""
    import queue as queue_mod

    wait_started = time.perf_counter()
    while True:
        try:
            tag, payload = q_result.get(timeout=1.0)
        except queue_mod.Empty:
            dead = [c for c in children if not c.is_alive() and c.exitcode]
            if dead:
                # drain a possible late error message before giving up
                try:
                    tag, payload = q_result.get(timeout=1.0)
                except queue_mod.Empty:
                    raise ShardWorkerError(
                        "shard process died without reporting: "
                        + ", ".join(
                            f"{c.name} (exit {c.exitcode})" for c in dead
                        )
                    )
            else:
                continue
        except (EOFError, OSError) as exc:  # pragma: no cover - teardown race
            raise ShardWorkerError(f"shard result channel closed: {exc}")
        if tag == "A":
            # time the coordinator spent blocked on the pipeline after
            # its own execution finished (wall, so histogram-only)
            if obs.enabled:
                obs.observe("shard.stall.coordinator.result.seconds",
                            time.perf_counter() - wait_started)
            return payload
        exc_name, args, tb = payload
        if exc_name == "OutOfMemoryBudget":
            # deterministic analysis outcome, not a crash: surface it
            # exactly as the serial run would
            raise OutOfMemoryBudget(*args)
        raise ShardWorkerError(
            f"shard process failed with {exc_name}{tuple(args)!r}:\n{tb}"
        )


def _publish(recorder: ShardStreamRecorder, bundle: dict, shards: int,
             coordinator_cpu: float = 0.0) -> None:
    """Republisher for the coordinator's observability registry.

    Mirrors the serial run's ``ICD.publish_metrics`` + PCD publication
    (the children's counters/gauges are deliberately discarded — see
    :func:`repro.obs.wire.telemetry_capsule`), adds the ``shard.*``
    wire/merge counters, folds in the children's telemetry capsules
    (spans + wall-clock histograms), and records the per-role CPU
    attribution histograms the critical-path analyzer reads.
    """
    obs = obs_recorder()
    if not obs.enabled:
        return
    icd_stats = bundle["icd_stats"]
    publish_stats(obs, "icd", icd_stats)
    obs.inc("icd.engine_search_visits", icd_stats.engine_search_visits)
    bundle["octet_stats"].publish(obs)
    for key, value in sorted(bundle["protocol_stats"].items()):
        if isinstance(value, int) and not isinstance(value, bool):
            obs.inc(f"octet.protocol.{key}", value)
    publish_stats(obs, "transactions", bundle["tx_stats"])
    publish_stats(
        obs,
        "gc",
        bundle["gc_stats"],
        gauges=("peak_live_transactions", "peak_live_log_entries"),
    )
    publish_stats(obs, "elision", bundle["elision_stats"])
    if icd_stats.engine is not None:
        icd_stats.engine.publish(obs, "icd.engine")
    publish_stats(obs, "pcd", bundle["pcd_stats"])
    # a serial run counts one `pcd.process` span per component replay;
    # sharded replays happen inside the log shards, whose counters are
    # discarded with the rest of the capsule, so mirror the span count
    # here to keep the merged counter set byte-identical with serial
    if bundle["pcd_stats"].components_processed:
        obs.inc(
            "phase.pcd.process.count",
            bundle["pcd_stats"].components_processed,
        )
    obs.inc("shard.workers", shards)
    obs.inc("shard.stream_chunks", recorder.chunks)
    obs.inc("shard.stream_bytes", recorder.bytes_shipped)
    obs.inc("shard.stream_records", recorder.records)
    obs.inc("shard.stream_defs", recorder.defs_shipped)
    for key, value in bundle["counters"].items():
        obs.inc(key, value)
    # wall-clock, so histograms like the phase timers — counters and
    # gauges must stay deterministic across identical runs
    obs.observe("shard.merge.seconds", bundle["merge_seconds"])
    cpu = bundle.get("cpu_seconds", {})
    obs.observe("shard.cpu.coordinator.seconds", coordinator_cpu)
    if "analyzer" in cpu:
        obs.observe("shard.cpu.analyzer.seconds", cpu["analyzer"])
    for worker_cpu in cpu.get("workers", ()):
        obs.observe("shard.cpu.logshard.seconds", worker_cpu)
    # partitioned analysis plane: one sample per partition worker (the
    # "analyzer" sample above is the exchange owner in this topology)
    for analysis_cpu in cpu.get("analysis", ()):
        obs.observe("shard.cpu.analysis.seconds", analysis_cpu)
    # fold the children's span/histogram buffers into the run timeline
    telemetry = bundle.get("telemetry") or {}
    merge_capsule(obs, telemetry.get("analyzer"))
    for capsule in telemetry.get("workers", ()):
        merge_capsule(obs, capsule)
    for capsule in telemetry.get("analysis", ()):
        merge_capsule(obs, capsule)


__all__ = [
    "run_single_sharded",
    "supported_config",
    "unsupported_features",
    "ShardWorkerError",
]
