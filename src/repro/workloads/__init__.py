"""Synthetic benchmark workloads.

The paper evaluates on the multithreaded DaCapo benchmarks, a set of
microbenchmarks, and three Java Grande programs.  Those programs are
unavailable here (and a JVM to run them on even less so), but the
evaluation never depends on their *semantics* — only on their access
and synchronization profiles and on which methods harbour atomicity
violations.  This package synthesizes one workload per benchmark name,
parameterized to reproduce each program's qualitative profile from the
paper's Tables 2 and 3 (scaled down ~10³ in dynamic counts).
"""

from repro.workloads.builder import WorkloadSpec, build_program
from repro.workloads.catalog import (
    CATALOG,
    all_names,
    build,
    compute_bound_names,
    get_spec,
)
from repro.workloads.patterns import PATTERN_NAMES

__all__ = [
    "CATALOG",
    "PATTERN_NAMES",
    "WorkloadSpec",
    "all_names",
    "build",
    "build_program",
    "compute_bound_names",
    "get_spec",
]
