"""The benchmark catalog: one workload per paper benchmark.

Parameters are calibrated to each program's qualitative profile in the
paper's Tables 2 and 3 (scaled down ~10³–10⁴× in dynamic counts):

========== ===============================================================
benchmark  profile reproduced
========== ===============================================================
eclipse6   largest violation population (230–244 static violations in the
           paper → the largest ``violating_methods`` here), many
           transactions and edges, some SCCs
hsqldb6    database-style locked traffic with a moderate bug population
lusearch6  per-thread search, exactly one rare violation, ~no SCCs
xalan6     the SCC storm: ring traffic + field-sliced objects make ICD
           find thousands of imprecise SCCs, PCD-heavy (the one program
           where Velodrome beats single-run mode)
avrora9    very many small transactions, heavy contention and edge
           traffic; the metadata-race crash benchmark for the unsound
           Velodrome variant
jython9    effectively sequential: threads on disjoint data, zero
           violations, zero edges
luindex9   same shape as jython9, smaller
lusearch9  per-thread search with a few violations, few edges/SCCs
pmd9       disjoint analysis tasks: zero violations
sunflow9   read-shared scene data + a long-running transaction (the PCD
           out-of-memory hazard; its method is a spec adjustment)
xalan9     many transactions, moderate SCCs, sizable bug population
elevator   tiny interactive simulation, two rare violations
hedc       tiny crawler, one violation (paper: 2–3)
philo      dining philosophers on wait/notify, zero violations
sor        barrier-phased stencil: fork/join only, zero violations
tsp        branch-and-bound with huge *non-transactional* access counts
           (the unary-dominated benchmark), a handful of violations
moldyn     Java Grande MD: mostly disjoint + locked reductions, zero
           violations, very few edges
montecarlo Java Grande MC: field-sliced accumulators → thousands of
           imprecise SCCs but only rare real violations
raytracer  Java Grande RT: long-running render transaction (PCD OOM
           hazard → spec adjustment), one SCC, zero violations
========== ===============================================================
"""

from __future__ import annotations

from typing import Dict, List

from repro.runtime.program import Program
from repro.workloads.builder import WorkloadSpec, build_program

CATALOG: Dict[str, WorkloadSpec] = {
    "eclipse6": WorkloadSpec(
        name="eclipse6",
        threads=6,
        iterations=110,
        shared_objects=6,
        readonly_objects=8,
        violating_methods=24,
        safe_methods=20,
        unary_ops=2,
        violating_weight=0.28,
        pad=8,
    ),
    "hsqldb6": WorkloadSpec(
        name="hsqldb6",
        threads=4,
        iterations=60,
        shared_objects=5,
        readonly_objects=4,
        violating_methods=6,
        safe_methods=12,
        unary_ops=1,
        violating_weight=0.12,
        pad=8,
    ),
    "lusearch6": WorkloadSpec(
        name="lusearch6",
        threads=6,
        iterations=70,
        shared_objects=6,
        readonly_objects=8,
        violating_methods=1,
        safe_methods=10,
        unary_ops=2,
        violating_weight=0.05,
        shared_read_weight=0.5,
        private_weight=0.4,
        pad=9,
    ),
    "xalan6": WorkloadSpec(
        name="xalan6",
        threads=8,
        iterations=90,
        shared_objects=10,
        readonly_objects=4,
        violating_methods=7,
        safe_methods=8,
        unary_ops=3,
        violating_weight=0.08,
        sliced_methods=8,
        sliced_weight=0.40,
        ring_size=5,
        ring_weight=0.12,
        pad=3,
    ),
    "avrora9": WorkloadSpec(
        name="avrora9",
        threads=8,
        iterations=130,
        shared_objects=6,
        readonly_objects=2,
        violating_methods=3,
        safe_methods=10,
        unary_ops=4,
        violating_weight=0.04,
        sliced_methods=4,
        sliced_weight=0.07,
        pad=6,
    ),
    "jython9": WorkloadSpec(
        name="jython9",
        threads=2,
        iterations=80,
        shared_objects=4,
        readonly_objects=4,
        violating_methods=0,
        safe_methods=8,
        unary_ops=4,
        disjoint=True,
        pad=6,
    ),
    "luindex9": WorkloadSpec(
        name="luindex9",
        threads=2,
        iterations=40,
        shared_objects=4,
        readonly_objects=4,
        violating_methods=0,
        safe_methods=6,
        unary_ops=3,
        disjoint=True,
        pad=6,
    ),
    "lusearch9": WorkloadSpec(
        name="lusearch9",
        threads=6,
        iterations=70,
        shared_objects=6,
        readonly_objects=8,
        violating_methods=4,
        safe_methods=10,
        unary_ops=3,
        violating_weight=0.06,
        shared_read_weight=0.5,
        private_weight=0.35,
        pad=8,
    ),
    "pmd9": WorkloadSpec(
        name="pmd9",
        threads=4,
        iterations=40,
        shared_objects=4,
        readonly_objects=4,
        violating_methods=0,
        safe_methods=8,
        unary_ops=2,
        disjoint=True,
        pad=6,
    ),
    "sunflow9": WorkloadSpec(
        name="sunflow9",
        threads=6,
        iterations=70,
        shared_objects=6,
        readonly_objects=10,
        violating_methods=2,
        safe_methods=10,
        unary_ops=1,
        violating_weight=0.06,
        shared_read_weight=0.6,
        long_transaction_iters=1050,
        pad=8,
        spec_adjustments=("render_scene",),
    ),
    "xalan9": WorkloadSpec(
        name="xalan9",
        threads=6,
        iterations=90,
        shared_objects=6,
        readonly_objects=4,
        violating_methods=8,
        safe_methods=12,
        unary_ops=3,
        violating_weight=0.14,
        sliced_methods=3,
        sliced_weight=0.08,
        pad=7,
    ),
    "elevator": WorkloadSpec(
        name="elevator",
        threads=3,
        iterations=25,
        shared_objects=4,
        readonly_objects=2,
        violating_methods=2,
        safe_methods=6,
        unary_ops=1,
        violating_weight=0.10,
        pad=5,
    ),
    "hedc": WorkloadSpec(
        name="hedc",
        threads=3,
        iterations=12,
        shared_objects=3,
        readonly_objects=2,
        violating_methods=1,
        safe_methods=5,
        unary_ops=1,
        violating_weight=0.15,
        pad=5,
    ),
    "philo": WorkloadSpec(
        name="philo",
        threads=2,
        iterations=10,
        shared_objects=3,
        readonly_objects=2,
        violating_methods=0,
        safe_methods=4,
        unary_ops=1,
        wait_notify_pairs=2,
        pad=4,
    ),
    "sor": WorkloadSpec(
        name="sor",
        threads=4,
        iterations=30,
        shared_objects=4,
        readonly_objects=4,
        violating_methods=0,
        safe_methods=6,
        unary_ops=6,
        disjoint=True,
        pad=6,
    ),
    "tsp": WorkloadSpec(
        name="tsp",
        threads=4,
        iterations=40,
        shared_objects=5,
        readonly_objects=3,
        violating_methods=1,
        safe_methods=8,
        unary_ops=14,
        violating_weight=0.07,
        pad=6,
    ),
    "moldyn": WorkloadSpec(
        name="moldyn",
        threads=4,
        iterations=90,
        shared_objects=4,
        readonly_objects=6,
        violating_methods=0,
        safe_methods=10,
        unary_ops=3,
        disjoint=True,
        pad=8,
    ),
    "montecarlo": WorkloadSpec(
        name="montecarlo",
        threads=4,
        iterations=80,
        shared_objects=6,
        readonly_objects=6,
        violating_methods=1,
        safe_methods=8,
        unary_ops=3,
        violating_weight=0.03,
        sliced_methods=6,
        sliced_weight=0.12,
        pad=7,
    ),
    "raytracer": WorkloadSpec(
        name="raytracer",
        threads=4,
        iterations=50,
        shared_objects=4,
        readonly_objects=8,
        violating_methods=0,
        safe_methods=8,
        unary_ops=2,
        shared_read_weight=0.55,
        long_transaction_iters=1200,
        pad=8,
        spec_adjustments=("render_scene",),
    ),
}

#: benchmarks excluded from performance experiments because they are not
#: compute bound (Section 5.3)
NOT_COMPUTE_BOUND = ("elevator", "hedc", "philo")


def all_names() -> List[str]:
    """All 19 benchmark names, in the paper's table order."""
    return list(CATALOG)


def compute_bound_names() -> List[str]:
    """The 16 benchmarks used in performance experiments."""
    return [n for n in CATALOG if n not in NOT_COMPUTE_BOUND]


def get_spec(name: str) -> WorkloadSpec:
    """Look up a workload spec by benchmark name."""
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(CATALOG)}"
        ) from None


def build(name: str) -> Program:
    """Build a fresh program for the named benchmark."""
    return build_program(get_spec(name))
