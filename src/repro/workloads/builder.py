"""Workload synthesis: :class:`WorkloadSpec` → runnable Program.

A workload is a population of methods drawn from the pattern library,
plus worker threads that invoke them according to a seeded, per-thread
schedule.  The *structure* of a workload (methods, schedules) is fully
determined by its spec, so repeated builds produce identical programs;
run-to-run nondeterminism comes exclusively from the scheduler, exactly
as in the paper's trials.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.runtime.ops import Acquire, Read, Release, Wait, Write
from repro.runtime.lowering import script_body
from repro.runtime.program import Program
from repro.workloads import patterns


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters describing one synthetic benchmark.

    Dynamic-count parameters are chosen per benchmark to reproduce its
    qualitative Table 2/3 profile at ~10³ reduced scale; see
    :mod:`repro.workloads.catalog` for the calibrated values and the
    paper row each one mimics.
    """

    name: str
    #: worker threads (forked from main unless ``fork_join`` is False)
    threads: int = 4
    #: method invocations per worker
    iterations: int = 60
    #: contended shared objects
    shared_objects: int = 8
    #: read-mostly objects (drive RdSh states and fence transitions)
    readonly_objects: int = 4
    #: methods with injected atomicity violations
    violating_methods: int = 2
    #: correctly synchronized / private methods
    safe_methods: int = 6
    #: per-iteration direct accesses in the worker body (unary traffic)
    unary_ops: int = 2
    #: per-iteration array-element accesses (the Section 5.4 array-
    #: instrumentation experiment; ignored by the main configurations,
    #: which do not instrument arrays)
    array_ops: int = 2
    #: length of the shared array the array traffic uses
    array_length: int = 16
    #: fraction of invocations that go to violating methods
    violating_weight: float = 0.15
    #: fraction of invocations that go to field-sliced methods
    sliced_weight: float = 0.10
    #: fraction of invocations that go to ring-write methods
    ring_weight: float = 0.12
    #: fraction of safe invocations that read the read-mostly objects
    shared_read_weight: float = 0.3
    #: fraction of safe invocations touching thread-private objects
    private_weight: float = 0.3
    #: one unary access in ``unary_shared_period`` touches shared state;
    #: the rest are thread-local (real non-transactional traffic is
    #: overwhelmingly local)
    unary_shared_period: int = 5
    #: per-thread-field slicing methods (imprecise-SCC driver)
    sliced_methods: int = 0
    #: ring-write methods (SCC storm, xalan6 profile)
    ring_size: int = 0
    #: iterations of one long-running transaction (PCD memory hazard)
    long_transaction_iters: int = 0
    #: iterations of each hub-scan transaction (cycle-check stress:
    #: hub threads run long transactions anchored into the producer
    #: group's access chain, so a large dead-end region stays reachable
    #: — and alive — for the whole scan)
    hub_scan_iters: int = 0
    #: how many hub-scan transactions each hub thread runs (0 disables)
    hub_rounds: int = 0
    #: how many threads run probing hub-scan schedules; one additional
    #: *warden* thread always rides along, anchoring the seeder chain
    #: so finished seed transactions stay collectable-from and alive
    hub_threads: int = 1
    #: every ``hub_probe_period`` scan iterations the hub reads one
    #: write-once seed field an old listener transaction published;
    #: the probe edge can never close a cycle, so the naive per-edge
    #: check exhausts the hub's whole reachable region to refute one,
    #: while a component certificate answers in O(1)
    hub_probe_period: int = 0
    #: listener threads running the seeder schedule (the hub's probe
    #: sources); the remaining helpers are producers pinned to
    #: ``shared[0]`` (the hub's anchor).  Producers and listeners touch
    #: disjoint state, so the only paths between the groups run
    #: through hub transactions
    hub_listener_threads: int = 2
    #: producer/consumer pairs using wait/notify (philo profile)
    wait_notify_pairs: int = 0
    #: threads work on disjoint data only (jython9/luindex9/pmd9 profile)
    disjoint: bool = False
    #: fork workers from a main thread and join them at the end
    fork_join: bool = True
    #: thread-local accesses padding every transactional method; real
    #: programs are dominated by same-state (fast-path) accesses — the
    #: paper's benchmarks see conflicting transitions on roughly 1% of
    #: accesses — and the padding reproduces that mix
    pad: int = 5
    #: methods the harness must exclude from specifications to avoid
    #: out-of-memory (the paper's raytracer/sunflow9 adjustments)
    spec_adjustments: Tuple[str, ...] = ()

    def structure_seed(self) -> int:
        """Deterministic seed derived from the workload name."""
        return sum(ord(c) * 31 ** i for i, c in enumerate(self.name)) % (2 ** 31)


def build_program(spec: WorkloadSpec) -> Program:
    """Synthesize the program for ``spec`` (deterministic)."""
    program = Program(spec.name)
    rng = random.Random(spec.structure_seed())

    shared = program.add_global_objects("shared", max(1, spec.shared_objects))
    readonly = program.add_global_objects("readonly", max(1, spec.readonly_objects))
    private = program.add_global_objects("private", spec.threads)
    hot = program.add_global_object("hot")

    violating = _make_violating_methods(program, spec, shared, rng)
    safe_locked, safe_private, safe_read, safe_hot = _make_safe_methods(
        program, spec, shared, readonly, hot
    )
    sliced = _make_sliced_methods(program, spec, shared)
    ring = _make_ring_methods(program, spec)
    long_tx = _make_long_transaction(program, spec)
    hub_parts = _make_hub_scan(program, spec, shared)
    hub, warden, archive = hub_parts if hub_parts else (None, None, None)
    groups = _make_group_methods(program, spec, shared, archive)

    _make_worker(
        program,
        spec,
        rng,
        shared=shared,
        violating=violating,
        safe_locked=safe_locked,
        safe_private=safe_private,
        safe_read=safe_read,
        safe_hot=safe_hot,
        sliced=sliced,
        ring=ring,
        long_tx=long_tx,
        hub=hub,
        warden=warden,
        groups=groups,
    )
    _make_wait_notify(program, spec)
    _make_main(program, spec)
    return program


# ----------------------------------------------------------------------
# method populations
# ----------------------------------------------------------------------
_VIOLATION_FACTORIES = (
    lambda target, aux: patterns.split_rmw(target),
    lambda target, aux: patterns.toctou(target, aux),
    lambda target, aux: patterns.two_phase_locked(target),
    lambda target, aux: patterns.read_pair(target),
)


def _pad_script(ctx, lane: int, pad: int) -> List[tuple]:
    """The thread-local fast-path padding prefix, as script ops."""
    pad_obj = ctx.private[lane % len(ctx.private)]
    out = []
    for i in range(pad):
        out.append(("read", pad_obj, f"pad{i % 3}", "_pad"))
        out.append(("write", pad_obj, f"pad{i % 3}", ("inc", "_pad", 1)))
    return out


def _padded(inner, pad: int, takes_lane: bool):
    """Wrap a method body with thread-local fast-path padding.

    Every transactional method takes a ``lane`` argument (the invoking
    worker's index) and performs ``pad`` read/write pairs against that
    worker's private object before its real work — the same-state
    traffic that dominates real programs.

    Padding a scripted inner body produces a scripted composite (so
    the whole method lowers for the batch executor); padding a
    generator body stays a generator.
    """
    inner_script = getattr(inner, "_dc_script_fn", None)
    if inner_script is not None:

        def padded_script(ctx, lane):
            script = _pad_script(ctx, lane, pad)
            if takes_lane:
                script.extend(inner_script(ctx, lane))
            else:
                script.extend(inner_script(ctx))
            return script

        return script_body(padded_script)

    def body(ctx, lane):
        pad_obj = ctx.private[lane % len(ctx.private)]
        for i in range(pad):
            value = yield Read(pad_obj, f"pad{i % 3}")
            yield Write(pad_obj, f"pad{i % 3}", (value or 0) + 1)
        if takes_lane:
            yield from inner(ctx, lane)
        else:
            yield from inner(ctx)

    return body


def _make_violating_methods(program, spec, shared, rng) -> List[str]:
    names = []
    for i in range(spec.violating_methods):
        factory = _VIOLATION_FACTORIES[i % len(_VIOLATION_FACTORIES)]
        target = shared[i % len(shared)]
        aux = shared[(i + 1) % len(shared)]
        name = f"unsafe_op{i}"
        program.method(
            _padded(factory(target, aux), spec.pad, takes_lane=False), name=name
        )
        names.append(name)
    return names


def _make_safe_methods(program, spec, shared, readonly, hot):
    locked, private_names, read_names, hot_names = [], [], [], []
    for i in range(max(1, spec.safe_methods)):
        kind = i % 4
        if kind == 0:
            name = f"locked_op{i}"
            program.method(
                _padded(
                    patterns.locked_rmw(shared[i % len(shared)]),
                    spec.pad,
                    takes_lane=False,
                ),
                name=name,
            )
            locked.append(name)
        elif kind == 1:
            name = f"private_op{i}"

            def make_private(idx=i):
                def script(ctx, lane):
                    target = ctx.private[lane % len(ctx.private)]
                    out = []
                    for j in range(3):
                        out.append(
                            ("read", target, f"field{(idx + j) % 3}", "v")
                        )
                        out.append(
                            ("write", target, f"field{(idx + j) % 3}",
                             ("inc", "v", 1))
                        )
                    return out

                return script_body(script)

            program.method(
                _padded(make_private(), spec.pad, takes_lane=True), name=name
            )
            private_names.append(name)
        elif kind == 2:
            name = f"scan_op{i}"
            program.method(
                _padded(patterns.shared_read(readonly), spec.pad, takes_lane=False),
                name=name,
            )
            read_names.append(name)
        else:
            name = f"flag_op{i}"
            program.method(
                _padded(
                    patterns.hot_write(hot, f"flag{i}"), spec.pad, takes_lane=False
                ),
                name=name,
            )
            hot_names.append(name)
    return locked, private_names, read_names, hot_names


def _make_sliced_methods(program, spec, shared) -> List[str]:
    names = []
    for i in range(spec.sliced_methods):
        name = f"sliced_op{i}"
        program.method(
            _padded(
                patterns.field_sliced(shared[i % len(shared)]),
                spec.pad,
                takes_lane=True,
            ),
            name=name,
        )
        names.append(name)
    return names


def _make_ring_methods(program, spec) -> List[str]:
    if spec.ring_size <= 0:
        return []
    ring_objects = program.add_global_objects("ring", spec.ring_size)
    names = []
    for start in range(spec.ring_size):
        name = f"ring_op{start}"
        program.method(
            _padded(
                patterns.ring_write(ring_objects, start),
                spec.pad,
                takes_lane=False,
            ),
            name=name,
        )
        names.append(name)
    return names


#: listener seeding comes in same-thread bursts of ``_SEED_BURST``
#: invocations every ``_SEED_STRIDE`` iterations (staggered between
#: listeners); each burst fills exactly one seedbank *epoch* object
_SEED_BURST = 12
_SEED_STRIDE = 48


def _make_hub_scan(program, spec, shared):
    """The probing hub method plus the listener-chain warden."""
    if spec.hub_rounds <= 0 or spec.hub_scan_iters <= 0:
        return None
    scratch = program.add_global_object("hub_scratch")
    archive = program.add_global_object("hub_archive")
    epochs = spec.iterations // _SEED_STRIDE + 2
    seedbanks = program.add_global_objects("hub_seedbank", epochs)
    program.method(
        _padded(
            patterns.hub_scan(
                shared[0],
                "u0",
                seedbanks,
                archive,
                scratch,
                spec.hub_scan_iters,
                spec.hub_probe_period,
                spec.hub_listener_threads,
                seed_epoch=_SEED_BURST,
            ),
            spec.pad,
            takes_lane=False,
        ),
        name="hub_scan",
    )
    # the warden is one scan-long transaction anchored into the seeder
    # chain (the archive's ping field): it never probes, it only keeps
    # the finished seed transactions reachable — hence alive — for the
    # hubs to probe
    program.method(
        _padded(
            patterns.hub_scan(
                archive,
                "ping",
                seedbanks,
                archive,
                program.add_global_object("warden_scratch"),
                spec.hub_scan_iters * spec.hub_rounds,
                0,
            ),
            spec.pad,
            takes_lane=False,
        ),
        name="hub_warden",
    )
    return "hub_scan", "hub_warden", (archive, seedbanks)


def _make_group_methods(program, spec, shared, archive):
    """Helper methods for hub-stress workloads.

    Producers touch only ``shared[0]`` — the hub's anchor — so their
    small real cycles, and their ever-growing write chain, all land
    inside the hub's reachable region.  Listeners run the write-only
    seeder chain on the archive object: acyclic by construction, and
    disjoint from the producers, so the only paths between the groups
    run through hub transactions.
    """
    if archive is None:
        return None
    archive_obj, seedbanks = archive
    first_listener = spec.hub_threads + 1
    program.method(
        _padded(
            patterns.seeder(
                archive_obj,
                seedbanks,
                first_listener,
                spec.hub_listener_threads,
                seed_epoch=_SEED_BURST,
            ),
            spec.pad,
            takes_lane=True,
        ),
        name="seed_op",
    )
    program.method(
        _padded(patterns.split_rmw(shared[0]), spec.pad, takes_lane=False),
        name="group_rmw0",
    )
    program.method(
        _padded(patterns.locked_rmw(shared[0]), spec.pad, takes_lane=False),
        name="group_locked0",
    )
    return "seed_op", "group_rmw0", "group_locked0"


def _make_long_transaction(program, spec) -> Optional[str]:
    if spec.long_transaction_iters <= 0:
        return None
    canvas = program.add_global_object("canvas")
    name = "render_scene"
    program.method(
        _padded(
            patterns.long_loop(canvas, spec.long_transaction_iters),
            spec.pad,
            takes_lane=False,
        ),
        name=name,
    )
    return name


# ----------------------------------------------------------------------
# worker and thread structure
# ----------------------------------------------------------------------
def _make_worker(
    program,
    spec,
    rng,
    *,
    shared,
    violating,
    safe_locked,
    safe_private,
    safe_read,
    safe_hot,
    sliced,
    ring,
    long_tx,
    hub=None,
    warden=None,
    groups=None,
):
    # precompute each thread's invocation schedule so the program
    # structure is deterministic
    hub_mode = hub is not None
    producer: Dict[int, bool] = {}
    schedules: Dict[int, List[Tuple[str, Tuple]]] = {}
    warden_tid = spec.hub_threads
    first_producer = spec.hub_threads + 1 + spec.hub_listener_threads
    for tid in range(spec.threads):
        schedule: List[Tuple[str, Tuple]] = []
        producer[tid] = hub_mode and tid >= first_producer
        if hub_mode and tid < spec.hub_threads:
            # hub threads run back-to-back long scans whose probe
            # cycle checks stress the detector
            schedule = [(hub, (tid,))] * spec.hub_rounds
        elif hub_mode and tid == warden_tid:
            schedule = [(warden, (tid,))]
        elif hub_mode and tid < first_producer:
            # listeners: the write-only seeder chain publishing the
            # hubs' probe targets.  Seeding comes in same-thread
            # bursts (staggered between listeners) so consecutive
            # seedbank writes keep its coherence state unchanged —
            # the object-granularity detector sees at most one
            # conflict per burst, the per-field one a distinct writer
            # transaction per seed
            listener = tid - warden_tid - 1
            burst, stride = _SEED_BURST, _SEED_STRIDE
            phase = listener * (stride // 2)
            for it in range(spec.iterations):
                if (it + phase) % stride < burst or not safe_private:
                    schedule.append((groups[0], (tid,)))
                else:
                    schedule.append((rng.choice(safe_private), (tid,)))
        elif hub_mode:
            # producers: group-pinned traffic on the hub anchor object,
            # a mix of small real cycles and locked (safe) updates
            group_rmw, group_locked = groups[1], groups[2]
            for it in range(spec.iterations):
                roll = rng.random()
                if roll < spec.violating_weight:
                    schedule.append((group_rmw, (tid,)))
                elif roll < 0.6 and safe_private:
                    schedule.append((rng.choice(safe_private), (tid,)))
                else:
                    schedule.append((group_locked, (tid,)))
        else:
            for it in range(spec.iterations):
                schedule.append(_pick_action(spec, rng, tid, it, violating,
                                             safe_locked, safe_private,
                                             safe_read, safe_hot, sliced,
                                             ring))
            if long_tx is not None and tid == 0:
                schedule.append((long_tx, (tid,)))
        schedules[tid] = schedule

    def worker(ctx, tid):
        # the whole schedule is statically determined by (spec, tid),
        # so the worker is a script: one lowered frame covers the
        # invokes, the unary padding, and the array traffic
        script: List[tuple] = []
        for it, (method, args) in enumerate(schedules[tid]):
            script.append(("invoke", method, args))
            for u in range(spec.unary_ops):
                shared_turn = (
                    not spec.disjoint
                    and (it + u) % spec.unary_shared_period == 0
                    and not (hub_mode and not producer[tid])
                )
                if shared_turn:
                    if hub_mode:
                        # producers only, write-only: pure writes keep
                        # the anchor object's access chain acyclic
                        # (every edge points from the previous writer
                        # to the next), so the hub's reachable region
                        # grows without drowning both detectors in
                        # mutual-RMW cycles — and ``u0`` is the chain
                        # the hub's anchor read hangs off
                        script.append(
                            ("write", ctx.shared[0], f"u{u % 2}", ("const", it))
                        )
                        continue
                    target = ctx.shared[(tid + u) % len(ctx.shared)]
                    fieldname = f"u{u % 2}"
                else:
                    target = ctx.private[tid % len(ctx.private)]
                    fieldname = f"u{tid}"
                script.append(("read", target, fieldname, "v"))
                script.append(("write", target, fieldname, ("inc", "v", 1)))
            for a in range(spec.array_ops):
                index = (tid * 3 + it + a) % spec.array_length
                script.append(("aread", ctx.grid, index, "e"))
                script.append(("awrite", ctx.grid, index, ("inc", "e", 1)))
        return script

    program.add_global_array("grid", spec.array_length)
    program.method(script_body(worker), name="worker")
    program.mark_entry("worker")


def _pick_action(
    spec, rng, tid, iteration, violating, safe_locked, safe_private,
    safe_read, safe_hot, sliced, ring,
) -> Tuple[str, Tuple]:
    # every method takes the worker's lane (for its fast-path padding)
    if spec.disjoint:
        pool = safe_private or safe_read or safe_locked
        return (rng.choice(pool), (tid,))
    roll = rng.random()
    if violating and roll < spec.violating_weight:
        return (rng.choice(violating), (tid,))
    if sliced and roll < spec.violating_weight + spec.sliced_weight:
        return (rng.choice(sliced), (tid,))
    if ring and roll < spec.violating_weight + spec.sliced_weight + spec.ring_weight:
        return (ring[(tid + iteration) % len(ring)], (tid,))
    roll = rng.random()
    if safe_read and roll < spec.shared_read_weight:
        return (rng.choice(safe_read), (tid,))
    if safe_private and roll < spec.shared_read_weight + spec.private_weight:
        return (rng.choice(safe_private), (tid,))
    pool = safe_locked or safe_hot or safe_read or safe_private
    return (rng.choice(pool), (tid,))


def _make_wait_notify(program, spec) -> None:
    if spec.wait_notify_pairs <= 0:
        return
    boxes = program.add_global_objects("box", spec.wait_notify_pairs)

    def producer(ctx, index):
        return [("invoke", "deposit", (index,)), ("compute", 2)] * 4

    def deposit(ctx, index):
        box = ctx.box[index]
        return [
            ("acquire", box),
            ("read", box, "count", "c"),
            ("write", box, "count", ("inc", "c", 1)),
            ("notify", box, True),
            ("release", box),
        ]

    def consumer(ctx, index):
        return [("invoke", "withdraw", (index,))] * 4

    def withdraw(ctx, index):
        box = ctx.box[index]
        yield Acquire(box)
        count = yield Read(box, "count")
        while not count:
            yield Wait(box)
            count = yield Read(box, "count")
        yield Write(box, "count", count - 1)
        yield Release(box)

    program.method(script_body(producer), name="producer")
    program.method(script_body(consumer), name="consumer")
    program.method(script_body(deposit), name="deposit")
    # withdraw loops until a value read under the monitor is non-zero:
    # data-dependent control flow, so it stays a generator
    program.method(withdraw, name="withdraw", interrupting=True)
    program.mark_entry("producer")
    program.mark_entry("consumer")


def _make_main(program, spec) -> None:
    def main(ctx):
        script: List[tuple] = []
        names = []
        for tid in range(spec.threads):
            name = f"W{tid}"
            script.append(("fork", name, "worker", (tid,)))
            names.append(name)
        for pair in range(spec.wait_notify_pairs):
            script.append(("fork", f"P{pair}", "producer", (pair,)))
            script.append(("fork", f"C{pair}", "consumer", (pair,)))
            names.extend([f"P{pair}", f"C{pair}"])
        for name in names:
            script.append(("join", name))
        return script

    if spec.fork_join:
        program.method(script_body(main), name="main")
        program.add_thread("main", "main")
    else:
        for tid in range(spec.threads):
            program.add_thread(f"W{tid}", "worker", (tid,))
