"""Atomicity-violation idioms.

Each pattern is a method-body generator factory: given the shared
objects it operates on, it returns a generator-function body suitable
for :meth:`repro.runtime.program.Program.add_method`.  The violating
patterns are the idioms the bug-characteristics literature (Lu et al.,
ASPLOS 2008) identifies as dominant in real code; the safe patterns
provide the non-violating traffic every benchmark is mostly made of.

Violating patterns (each yields conflict-serializability cycles when
interleaved, because the method is in the atomicity specification but
does not enforce atomicity):

* ``split_rmw`` — read-compute-write with no lock: a remote write
  between the read and the write creates W→R / R→W edges both ways.
* ``toctou`` — check-then-act: test a flag, then act on the protected
  state; the flag and the state are distinct fields.
* ``two_phase_locked`` — each *half* holds the lock, but the method
  releases it between the halves (the classic "locked but not atomic"
  bug: individual accesses race-free, region not serializable).
* ``read_pair`` — reads the same field twice expecting stability; a
  remote write between them yields a W→R/R→W cycle.

Safe patterns:

* ``locked_rmw`` — the whole read-modify-write under the object's
  monitor.
* ``private_work`` — accesses a thread-private object only.
* ``shared_read`` — reads read-mostly objects (drives Octet's RdSh
  states and fence transitions without creating violations).
* ``hot_write`` — writes a dedicated per-method object (WrEx traffic,
  conflicting transitions when two benchmarks share it).
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence

from repro.runtime.heap import SharedObject
from repro.runtime.lowering import script_body
from repro.runtime.ops import Compute, Read, Write

Body = Callable[..., Any]

# Patterns whose op stream is statically known are declared as *script
# functions* (see repro.runtime.lowering): the same tuple list drives
# the reference generator arm and lowers to the batch executor's
# columnar form.  Patterns with data-dependent control flow (toctou,
# read_pair, the probing hub_scan, seeder) remain plain generators and
# always run on the reference path.


def split_rmw(target: SharedObject, fieldname: str = "value", gap: int = 2) -> Body:
    """Unsynchronized read-modify-write (the canonical violation)."""

    def script(ctx):
        return [
            ("read", target, fieldname, "v"),
            ("compute", gap),
            ("write", target, fieldname, ("inc", "v", 1)),
        ]

    return script_body(script)


def toctou(flag_obj: SharedObject, state_obj: SharedObject) -> Body:
    """Check a flag, then act on separately-raced state."""

    def body(ctx):
        ready = yield Read(flag_obj, "ready")
        yield Compute(1)
        if ready:
            current = yield Read(state_obj, "items")
            yield Write(state_obj, "items", (current or 0) - 1)
        else:
            yield Write(flag_obj, "ready", 1)
            yield Write(state_obj, "items", 1)

    return body


def two_phase_locked(target: SharedObject, fieldname: str = "balance") -> Body:
    """Race-free but non-atomic: the lock is dropped mid-region."""

    def script(ctx):
        return [
            ("acquire", target),
            ("read", target, fieldname, "v"),
            ("release", target),
            ("compute", 2),
            ("acquire", target),
            ("write", target, fieldname, ("inc", "v", 1)),
            ("release", target),
        ]

    return script_body(script)


def read_pair(target: SharedObject, fieldname: str = "config") -> Body:
    """Two reads expecting a stable value."""

    def body(ctx):
        first = yield Read(target, fieldname)
        yield Compute(2)
        second = yield Read(target, fieldname)
        if first != second:
            yield Write(target, "retries", 1)

    return body


def locked_rmw(target: SharedObject, fieldname: str = "value") -> Body:
    """Atomic read-modify-write under the object's monitor."""

    def script(ctx):
        return [
            ("acquire", target),
            ("read", target, fieldname, "v"),
            ("write", target, fieldname, ("inc", "v", 1)),
            ("release", target),
        ]

    return script_body(script)


def private_work(target: SharedObject, ops: int = 4) -> Body:
    """Thread-private traffic: fast-path Octet states, no dependences."""

    def script(ctx):
        out = []
        for i in range(ops):
            out.append(("read", target, f"slot{i % 2}", "v"))
            out.append(("write", target, f"slot{i % 2}", ("inc", "v", 1)))
        return out

    return script_body(script)


def shared_read(targets: Sequence[SharedObject], ops: int = 3) -> Body:
    """Read-mostly traffic over shared objects (RdSh states, fences)."""

    def script(ctx):
        return [
            ("read", targets[i % len(targets)], "data", None)
            for i in range(ops)
        ]

    return script_body(script)


def hot_write(target: SharedObject, fieldname: str = "hot") -> Body:
    """A single write to a contended object (conflicting transitions)."""

    def script(ctx):
        return [("write", target, fieldname, ("const", 1))]

    return script_body(script)


def long_loop(target: SharedObject, iterations: int) -> Body:
    """A long-running transaction touching many *distinct* fields.

    Models raytracer's and sunflow9's long atomic regions, whose logs
    make PCD exhaust memory (Section 5.1's methodology adjustment).
    Fields are distinct so duplicate elision cannot shrink the log —
    matching the real hazard, where a render loop touches fresh scene
    data throughout.
    """

    def script(ctx):
        shared = ctx.shared[0]
        out = []
        for i in range(iterations):
            out.append(("read", target, f"cell{i}", "v"))
            out.append(("write", target, f"cell{i}", ("inc", "v", 1)))
            if i % 400 == 0:
                # periodic progress updates on shared state: the long
                # transaction exchanges dependences with concurrent
                # transactions, so ICD's imprecise cycles can (and do)
                # pull its huge log into PCD — the Section 5.1 hazard
                out.append(("read", shared, "progress", "p"))
                out.append(("write", shared, "progress", ("inc", "p", 1)))
        return out

    return script_body(script)


def hub_scan(
    anchor: SharedObject,
    anchor_field: str,
    seedbanks: Sequence[SharedObject],
    archive: SharedObject,
    scratch: SharedObject,
    iterations: int,
    probe_period: int = 0,
    listener_count: int = 0,
    probe_lag: int = 26,
    seed_epoch: int = 12,
) -> Body:
    """A long scanner transaction anchored into a large producer group.

    The transaction reads ``anchor`` once at the start.  The producer
    group keeps overwriting that variable, so the first post-anchor
    write hangs the scanner off the group's ever-growing access chain:
    a huge, still-live, dead-end region becomes reachable *from* the
    scanner for its whole lifetime (the collector cannot sweep it — it
    is reachable from an unfinished transaction).

    Periodically the scanner probes the ``seedbank``: it reads seed
    fields that listener transactions (:func:`seeder`) wrote *before
    this scan began* (per the cursors published on the ``archive``)
    and never write again.  Each probe adds an edge
    from an old, finished seeder transaction to the scanner, and the
    per-edge cycle check that follows must refute a cycle — which the
    naive whole-graph DFS can only do by exhausting the scanner's
    entire reachable region, re-walking the dead-end producer history
    on every probe.  An incremental component certificate answers the
    same question in O(1): the seeder and the scanner were never in
    one strongly connected component, so no traversal is needed.  This
    is the regime the paper's incremental detector targets.

    With ``probe_period=0`` the pattern degenerates into a *warden*: a
    long transaction that only anchors a group's chain, keeping its
    history alive (exactly how a long-running transaction pins memory
    in Section 5.1) without ever probing it.  The warden arm has no
    data-dependent control flow, so it is declared as a script; the
    probing arm computes its probe targets from values read at run
    time (the cursors), so it stays a generator.
    """

    if probe_period == 0:

        def script(ctx):
            out = [("read", anchor, anchor_field, None)]
            for i in range(iterations):
                out.append(("read", scratch, f"cell{i}", "v"))
                out.append(("write", scratch, f"cell{i}", ("inc", "v", 1)))
            return out

        return script_body(script)

    def body(ctx):
        yield Read(anchor, anchor_field)
        cursors = []
        if probe_period:
            # the listeners publish how many seeds they have written;
            # reading the cursors makes every later probe hit a field
            # that provably has a (pre-scan) writer
            for listener in range(listener_count):
                count = yield Read(archive, f"cursor{listener}")
                cursors.append(count or 0)
        probes = 0
        for i in range(iterations):
            value = yield Read(scratch, f"cell{i}")
            yield Write(scratch, f"cell{i}", (value or 0) + 1)
            if probe_period and i % probe_period == probe_period - 1:
                listener = probes % listener_count
                index = cursors[listener] - 1 - probe_lag - probes // listener_count
                # the seedbank is partitioned into per-burst *epoch*
                # objects the listeners never touch again once filled;
                # probing only epochs at least two bursts old keeps
                # every object-granularity probe edge pointing from an
                # old, already-registered transaction to the hub
                if index >= 0 and index // seed_epoch < len(seedbanks):
                    bank = seedbanks[index // seed_epoch]
                    yield Read(bank, f"seed{listener}_{index}")
                probes += 1

    return body


def seeder(
    archive: SharedObject,
    seedbanks: Sequence[SharedObject],
    lane_base: int = 0,
    listener_count: int = 1,
    seed_epoch: int = 12,
) -> Body:
    """One write-once seed per invocation, published via a cursor.

    The body takes a ``lane`` argument (the listener's index).  Each
    invocation writes the archive's ping field — chaining the
    transaction onto the global write-only seeder chain, which is what
    *registers* it in the incremental engine at creation time — then
    writes one fresh ``seed<lane>_<k>`` field on the seedbank (never
    written again: a later hub-scan probe of it can add an edge but
    never close a cycle) and advances the lane's cursor.  The chain is
    acyclic by construction: every precise edge points from an older
    seeder transaction to a newer one, so seeders can never join a
    strongly connected component.

    The seeds live on *epoch* objects separate from the ping/cursor
    traffic so that the coarse, object-granularity detector stays
    quiet too: seeder invocations come in same-thread bursts, one
    burst fills one epoch object, and the listeners never touch an
    epoch again once filled.  A hub probing only old epochs therefore
    reads quiescent objects — at most one object-level conflict per
    epoch ever, and none at all once the epoch is in the hub's read
    state — while the precise per-field detector still sees one
    distinct (old, finished) writer transaction per probe.
    """

    def body(ctx, lane):
        # ``lane`` is the invoking worker's thread index (so the
        # padding stays on that thread's private object); the
        # listener's seed namespace is its offset from ``lane_base``
        listener = lane - lane_base
        if listener_count > 1:
            # read a *sibling* listener's cursor: its last writer is an
            # old transaction of another thread, so this access gives
            # every seed transaction a precise cross-thread edge — and
            # hence an engine registration — at creation time.  Without
            # it, burst-interior seeds (whose ping/cursor writes follow
            # a same-thread access) would only register lazily when the
            # hub probes them, long after younger transactions claimed
            # later topological positions.  Bursts do not overlap, so
            # these sibling edges always point old -> new: acyclic.
            yield Read(archive, f"cursor{(listener + 1) % listener_count}")
        yield Write(archive, "ping", listener)
        count = yield Read(archive, f"cursor{listener}")
        index = count or 0
        bank = seedbanks[min(index // seed_epoch, len(seedbanks) - 1)]
        yield Write(bank, f"seed{listener}_{index}", 1)
        yield Write(archive, f"cursor{listener}", index + 1)

    return body


def ring_write(targets: Sequence[SharedObject], start: int) -> Body:
    """Write around a ring of shared objects.

    With several threads starting at different ring offsets, dependence
    edges form abundant cross-thread cycles at transaction granularity
    without any being an atomicity violation per se once refined —
    xalan6's SCC-storm profile.
    """

    def script(ctx):
        n = len(targets)
        out = []
        for step in range(n):
            obj = targets[(start + step) % n]
            out.append(("read", obj, "token", "v"))
            out.append(("write", obj, "token", ("inc", "v", 1)))
        return out

    return script_body(script)


def field_sliced(target: SharedObject) -> Body:
    """Per-thread fields of one shared object.

    The body takes a ``lane`` argument; each lane touches only its own
    field, so there is **no** precise cross-thread dependence — but
    Octet tracks state at object granularity, so every lane switch is a
    conflicting transition and ICD adds edges.  This is the purest
    driver of imprecise-but-not-precise SCCs (montecarlo's profile:
    thousands of ICD SCCs, almost no violations).
    """

    def script(ctx, lane):
        return [
            ("read", target, f"slot{lane}", "v"),
            ("compute", 1),
            ("write", target, f"slot{lane}", ("inc", "v", 1)),
        ]

    return script_body(script)


PATTERN_NAMES = [
    "field_sliced",
    "split_rmw",
    "toctou",
    "two_phase_locked",
    "read_pair",
    "locked_rmw",
    "private_work",
    "shared_read",
    "hot_write",
    "long_loop",
    "ring_write",
]
