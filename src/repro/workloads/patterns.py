"""Atomicity-violation idioms.

Each pattern is a method-body generator factory: given the shared
objects it operates on, it returns a generator-function body suitable
for :meth:`repro.runtime.program.Program.add_method`.  The violating
patterns are the idioms the bug-characteristics literature (Lu et al.,
ASPLOS 2008) identifies as dominant in real code; the safe patterns
provide the non-violating traffic every benchmark is mostly made of.

Violating patterns (each yields conflict-serializability cycles when
interleaved, because the method is in the atomicity specification but
does not enforce atomicity):

* ``split_rmw`` — read-compute-write with no lock: a remote write
  between the read and the write creates W→R / R→W edges both ways.
* ``toctou`` — check-then-act: test a flag, then act on the protected
  state; the flag and the state are distinct fields.
* ``two_phase_locked`` — each *half* holds the lock, but the method
  releases it between the halves (the classic "locked but not atomic"
  bug: individual accesses race-free, region not serializable).
* ``read_pair`` — reads the same field twice expecting stability; a
  remote write between them yields a W→R/R→W cycle.

Safe patterns:

* ``locked_rmw`` — the whole read-modify-write under the object's
  monitor.
* ``private_work`` — accesses a thread-private object only.
* ``shared_read`` — reads read-mostly objects (drives Octet's RdSh
  states and fence transitions without creating violations).
* ``hot_write`` — writes a dedicated per-method object (WrEx traffic,
  conflicting transitions when two benchmarks share it).
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence

from repro.runtime.heap import SharedObject
from repro.runtime.ops import Acquire, Compute, Read, Release, Write

Body = Callable[..., Any]


def split_rmw(target: SharedObject, fieldname: str = "value", gap: int = 2) -> Body:
    """Unsynchronized read-modify-write (the canonical violation)."""

    def body(ctx):
        value = yield Read(target, fieldname)
        yield Compute(gap)
        yield Write(target, fieldname, (value or 0) + 1)

    return body


def toctou(flag_obj: SharedObject, state_obj: SharedObject) -> Body:
    """Check a flag, then act on separately-raced state."""

    def body(ctx):
        ready = yield Read(flag_obj, "ready")
        yield Compute(1)
        if ready:
            current = yield Read(state_obj, "items")
            yield Write(state_obj, "items", (current or 0) - 1)
        else:
            yield Write(flag_obj, "ready", 1)
            yield Write(state_obj, "items", 1)

    return body


def two_phase_locked(target: SharedObject, fieldname: str = "balance") -> Body:
    """Race-free but non-atomic: the lock is dropped mid-region."""

    def body(ctx):
        yield Acquire(target)
        value = yield Read(target, fieldname)
        yield Release(target)
        yield Compute(2)
        yield Acquire(target)
        yield Write(target, fieldname, (value or 0) + 1)
        yield Release(target)

    return body


def read_pair(target: SharedObject, fieldname: str = "config") -> Body:
    """Two reads expecting a stable value."""

    def body(ctx):
        first = yield Read(target, fieldname)
        yield Compute(2)
        second = yield Read(target, fieldname)
        if first != second:
            yield Write(target, "retries", 1)

    return body


def locked_rmw(target: SharedObject, fieldname: str = "value") -> Body:
    """Atomic read-modify-write under the object's monitor."""

    def body(ctx):
        yield Acquire(target)
        value = yield Read(target, fieldname)
        yield Write(target, fieldname, (value or 0) + 1)
        yield Release(target)

    return body


def private_work(target: SharedObject, ops: int = 4) -> Body:
    """Thread-private traffic: fast-path Octet states, no dependences."""

    def body(ctx):
        for i in range(ops):
            value = yield Read(target, f"slot{i % 2}")
            yield Write(target, f"slot{i % 2}", (value or 0) + 1)

    return body


def shared_read(targets: Sequence[SharedObject], ops: int = 3) -> Body:
    """Read-mostly traffic over shared objects (RdSh states, fences)."""

    def body(ctx):
        total = 0
        for i in range(ops):
            value = yield Read(targets[i % len(targets)], "data")
            total += value or 0

    return body


def hot_write(target: SharedObject, fieldname: str = "hot") -> Body:
    """A single write to a contended object (conflicting transitions)."""

    def body(ctx):
        yield Write(target, fieldname, 1)

    return body


def long_loop(target: SharedObject, iterations: int) -> Body:
    """A long-running transaction touching many *distinct* fields.

    Models raytracer's and sunflow9's long atomic regions, whose logs
    make PCD exhaust memory (Section 5.1's methodology adjustment).
    Fields are distinct so duplicate elision cannot shrink the log —
    matching the real hazard, where a render loop touches fresh scene
    data throughout.
    """

    def body(ctx):
        shared = ctx.shared[0]
        for i in range(iterations):
            value = yield Read(target, f"cell{i}")
            yield Write(target, f"cell{i}", (value or 0) + 1)
            if i % 400 == 0:
                # periodic progress updates on shared state: the long
                # transaction exchanges dependences with concurrent
                # transactions, so ICD's imprecise cycles can (and do)
                # pull its huge log into PCD — the Section 5.1 hazard
                progress = yield Read(shared, "progress")
                yield Write(shared, "progress", (progress or 0) + 1)

    return body


def ring_write(targets: Sequence[SharedObject], start: int) -> Body:
    """Write around a ring of shared objects.

    With several threads starting at different ring offsets, dependence
    edges form abundant cross-thread cycles at transaction granularity
    without any being an atomicity violation per se once refined —
    xalan6's SCC-storm profile.
    """

    def body(ctx):
        n = len(targets)
        for step in range(n):
            obj = targets[(start + step) % n]
            value = yield Read(obj, "token")
            yield Write(obj, "token", (value or 0) + 1)

    return body


def field_sliced(target: SharedObject) -> Body:
    """Per-thread fields of one shared object.

    The body takes a ``lane`` argument; each lane touches only its own
    field, so there is **no** precise cross-thread dependence — but
    Octet tracks state at object granularity, so every lane switch is a
    conflicting transition and ICD adds edges.  This is the purest
    driver of imprecise-but-not-precise SCCs (montecarlo's profile:
    thousands of ICD SCCs, almost no violations).
    """

    def body(ctx, lane):
        value = yield Read(target, f"slot{lane}")
        yield Compute(1)
        yield Write(target, f"slot{lane}", (value or 0) + 1)

    return body


PATTERN_NAMES = [
    "field_sliced",
    "split_rmw",
    "toctou",
    "two_phase_locked",
    "read_pair",
    "locked_rmw",
    "private_work",
    "shared_read",
    "hot_write",
    "long_loop",
    "ring_write",
]
