"""Summary statistics used by the evaluation harness.

The paper reports medians of 25 trials with means as centers of 95%
confidence intervals, and geometric means across benchmarks (the
standard for normalized execution times).  These helpers reproduce
those aggregations.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

# two-sided 97.5% Student-t quantiles for small sample sizes; falls back
# to the normal quantile beyond the table (scipy would provide these,
# but a table keeps the hot path dependency-free)
_T_TABLE = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
}


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median; raises on empty input."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; requires strictly positive values."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def confidence_interval95(values: Sequence[float]) -> Tuple[float, float]:
    """Mean-centered 95% confidence half-width: (mean, half_width)."""
    m = mean(values)
    n = len(values)
    if n < 2:
        return (m, 0.0)
    variance = sum((v - m) ** 2 for v in values) / (n - 1)
    t = _T_TABLE.get(n - 1, 1.96)
    half = t * math.sqrt(variance / n)
    return (m, half)


def normalize(values: Sequence[float], baseline: float) -> list:
    """Divide each value by the baseline (normalized execution times)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return [v / baseline for v in values]
