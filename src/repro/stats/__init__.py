"""Small statistics helpers for the experiment harness."""

from repro.stats.summary import (
    confidence_interval95,
    geomean,
    mean,
    median,
    normalize,
)

__all__ = [
    "confidence_interval95",
    "geomean",
    "mean",
    "median",
    "normalize",
]
