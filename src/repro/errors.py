"""Exception types shared across the DoubleChecker reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class OutOfMemoryBudget(ReproError):
    """Raised when a checker exceeds its configured memory budget.

    The paper's 32-bit JVM runs out of virtual memory for several
    configurations (single-run mode on moldyn/raytracer with standard
    inputs, the PCD-only variant on four benchmarks, xalan6 with a fully
    refined specification).  We reproduce those methodology notes with an
    explicit budget measured in metadata units (log entries plus live
    graph nodes) instead of bytes.
    """

    def __init__(self, component: str, used: int, budget: int) -> None:
        super().__init__(
            f"{component} exceeded its memory budget: used {used} units, "
            f"budget {budget} units"
        )
        self.component = component
        self.used = used
        self.budget = budget


class SpecificationError(ReproError):
    """Raised for malformed atomicity specifications."""


class TraceFormatError(ReproError):
    """Raised when a serialized trace fails validation on load.

    Names the offending line so a corrupt or truncated trace file is
    diagnosable instead of surfacing later as an ``IndexError`` deep
    inside replay.
    """

    def __init__(self, line_number: int, reason: str) -> None:
        super().__init__(f"trace line {line_number}: {reason}")
        self.line_number = line_number
        self.reason = reason


class ProgramError(ReproError):
    """Raised when a simulated program misuses the runtime.

    Examples: releasing a lock the thread does not hold, waiting on an
    object without owning its monitor, joining an unknown thread.
    """


class DeadlockError(ReproError):
    """Raised when no runnable thread remains but threads are blocked."""

    def __init__(self, blocked: dict[str, str]) -> None:
        detail = ", ".join(f"{name}: {why}" for name, why in sorted(blocked.items()))
        super().__init__(f"deadlock: all live threads are blocked ({detail})")
        self.blocked = blocked


class SchedulerError(ReproError):
    """Raised when a scheduler makes an illegal choice."""


class StepLimitExceeded(ReproError):
    """Raised when an execution exceeds the executor's step limit."""

    def __init__(self, limit: int) -> None:
        super().__init__(f"execution exceeded the step limit of {limit} operations")
        self.limit = limit
