"""Classification of Octet state transitions (the paper's Table 1).

Given an object's current state and an access (thread + read/write),
:func:`classify` decides which transition fires and what the new state
is.  The categories carry the information ICD needs:

* **same-state** — the fast path; no state change, no dependence.
* **initial** — first access to an untouched object; installs an
  exclusive state without coordination.
* **upgrading** — RdExT → WrExT (write by T; no cross-thread
  dependence, ICD ignores it) and RdExT1 → RdShc (read by T2; possible
  dependence, ICD adds edges).
* **fence** — read of a RdShc object by a thread whose ``rdShCnt`` is
  stale; possible dependence.
* **conflicting** — requires the coordination protocol; possible
  dependence.  Four shapes: WrEx→WrEx, WrEx→RdEx, RdEx→WrEx (across
  threads) and RdSh→WrEx (responders are *all* other threads).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.runtime.events import AccessKind
from repro.octet.states import OctetState, StateKind, rd_ex, rd_sh, wr_ex


class TransitionKind(enum.Enum):
    """Transition categories from Table 1 (plus INITIAL for allocation)."""

    SAME_STATE = "same-state"
    INITIAL = "initial"
    UPGRADING_WR_EX = "upgrading-wrex"
    UPGRADING_RD_SH = "upgrading-rdsh"
    FENCE = "fence"
    CONFLICTING_WR_WR = "conflicting-wrex-wrex"
    CONFLICTING_WR_RD = "conflicting-wrex-rdex"
    CONFLICTING_RD_WR = "conflicting-rdex-wrex"
    CONFLICTING_SH_WR = "conflicting-rdsh-wrex"

    def is_conflicting(self) -> bool:
        return self in (
            TransitionKind.CONFLICTING_WR_WR,
            TransitionKind.CONFLICTING_WR_RD,
            TransitionKind.CONFLICTING_RD_WR,
            TransitionKind.CONFLICTING_SH_WR,
        )

    def is_fast_path(self) -> bool:
        return self is TransitionKind.SAME_STATE

    def may_carry_dependence(self) -> bool:
        """The Table 1 'Cross-thread dependence?' column."""
        return self.is_conflicting() or self in (
            TransitionKind.UPGRADING_RD_SH,
            TransitionKind.FENCE,
        )


@dataclass(frozen=True)
class Classified:
    """Result of classifying one access against the current state.

    ``new_state`` is ``None`` exactly for same-state transitions (and
    for fence transitions, which leave the object's state unchanged and
    instead update the *thread's* counter — signalled by
    ``thread_counter_update``).
    """

    kind: TransitionKind
    new_state: Optional[OctetState]
    thread_counter_update: Optional[int] = None

    @property
    def changes_object_state(self) -> bool:
        return self.new_state is not None


def is_same_state(
    state: Optional[OctetState],
    access: AccessKind,
    thread: str,
    thread_rdsh_counter: int,
) -> bool:
    """The barrier fast-path predicate: is this access a same-state one?

    True exactly when :func:`classify` would return
    ``TransitionKind.SAME_STATE``: the thread owns a WrEx object (read
    or write), the thread owns a RdEx object and reads, or the object
    is RdSh, the access is a read, and the thread's ``rdShCnt`` is
    current.  ``OctetRuntime.observe`` and ICD's fused access barrier
    inline this check (duplicated for speed); the property tests pin
    all three against :func:`classify`.
    """
    if state is None:
        return False
    kind = state.kind
    if state.owner == thread and (
        kind is StateKind.WR_EX
        or (kind is StateKind.RD_EX and access is AccessKind.READ)
    ):
        return True
    return (
        kind is StateKind.RD_SH
        and access is AccessKind.READ
        and state.counter is not None
        and thread_rdsh_counter >= state.counter
    )


def classify(
    state: Optional[OctetState],
    access: AccessKind,
    thread: str,
    thread_rdsh_counter: int,
    next_g_rdsh_counter: int,
) -> Classified:
    """Classify an access per Table 1.

    Args:
        state: the object's current state (``None`` = untouched).
        access: read or write.
        thread: the accessing thread's name.
        thread_rdsh_counter: the accessing thread's ``rdShCnt``.
        next_g_rdsh_counter: the value ``gRdShCnt`` *would take* if this
            access triggers an upgrade to RdSh (the runtime passes
            ``gRdShCnt + 1`` and commits the increment only if the
            classification says the upgrade happens).
    """
    is_write = access is AccessKind.WRITE

    if state is None:
        installed = wr_ex(thread) if is_write else rd_ex(thread)
        return Classified(TransitionKind.INITIAL, installed)

    if state.is_intermediate():
        raise ValueError(
            f"access classified against intermediate state {state}; "
            "the coordination protocol must complete first"
        )

    if state.kind is StateKind.WR_EX:
        if state.owner == thread:
            return Classified(TransitionKind.SAME_STATE, None)
        if is_write:
            return Classified(TransitionKind.CONFLICTING_WR_WR, wr_ex(thread))
        return Classified(TransitionKind.CONFLICTING_WR_RD, rd_ex(thread))

    if state.kind is StateKind.RD_EX:
        if state.owner == thread:
            if is_write:
                return Classified(TransitionKind.UPGRADING_WR_EX, wr_ex(thread))
            return Classified(TransitionKind.SAME_STATE, None)
        if is_write:
            return Classified(TransitionKind.CONFLICTING_RD_WR, wr_ex(thread))
        return Classified(
            TransitionKind.UPGRADING_RD_SH, rd_sh(next_g_rdsh_counter)
        )

    # RdSh
    if is_write:
        return Classified(TransitionKind.CONFLICTING_SH_WR, wr_ex(thread))
    assert state.counter is not None
    if thread_rdsh_counter >= state.counter:
        return Classified(TransitionKind.SAME_STATE, None)
    return Classified(
        TransitionKind.FENCE, None, thread_counter_update=state.counter
    )
