"""The Octet runtime: per-object states, counters, and barriers.

:class:`OctetRuntime` is driven by a client analysis (ICD) that calls
:meth:`OctetRuntime.observe` from its access barrier.  ``observe``
classifies the access against the object's current state (Table 1),
commits the state change, performs coordination for conflicting
transitions, and fires :class:`OctetListener` callbacks — the hooks
ICD's Figure 4 procedures attach to.

The runtime never inspects transactions; it only knows threads and
objects.  That separation mirrors the paper, where Octet is an
independently published mechanism that ICD extends.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.registry import publish_stats
from repro.octet.protocol import CoordinationProtocol, CoordinationRound
from repro.octet.states import OctetState, StateKind, rd_ex_int, wr_ex_int
from repro.octet.transitions import Classified, TransitionKind, classify
from repro.runtime.events import AccessEvent, AccessKind

#: escape hatch disabling the inline same-state fast path (and ICD's
#: fused barrier): the identity tests run with it set to ``0`` to pin
#: the optimized pipeline against the reference classify-everything one
FASTPATH_ENV = "DOUBLECHECKER_BARRIER_FASTPATH"


def barrier_fastpath_enabled() -> bool:
    """Whether the barrier fast path is enabled (default: yes)."""
    return os.environ.get(FASTPATH_ENV, "").strip().lower() not in (
        "0", "false", "off",
    )


@dataclass
class OctetStats:
    """Barrier and transition counters (feed the cost model)."""

    barriers: int = 0
    fast_path: int = 0
    #: subset of ``fast_path`` resolved inline by ICD's fused barrier
    #: (no :meth:`OctetRuntime.observe` call at all); 0 when the fast
    #: path is disabled via ``DOUBLECHECKER_BARRIER_FASTPATH=0``
    fast_path_fused: int = 0
    initial: int = 0
    upgrading_wr_ex: int = 0
    upgrading_rd_sh: int = 0
    fences: int = 0
    conflicting: int = 0
    conflicting_by_kind: Dict[str, int] = field(default_factory=dict)
    memory_fences_issued: int = 0
    atomic_operations: int = 0

    def slow_path(self) -> int:
        """All non-fast-path barrier executions."""
        return self.barriers - self.fast_path

    def publish(self, target, prefix: str = "octet") -> None:
        """Publish every transition-kind counter onto a registry.

        ``conflicting_by_kind`` fans out to
        ``octet.conflicting_by_kind.<kind>``; the derived slow-path
        count is included so the metric catalog needs no arithmetic.
        """
        if not target.enabled:
            return
        publish_stats(target, prefix, self)
        target.inc(f"{prefix}.slow_path", self.slow_path())


@dataclass(frozen=True)
class TransitionRecord:
    """Everything a listener may need to know about one transition."""

    event: AccessEvent
    kind: TransitionKind
    old_state: Optional[OctetState]
    new_state: Optional[OctetState]
    #: exclusive owner losing the object (conflicting WrEx/RdEx sources)
    prior_owner: Optional[str]
    #: coordination round for conflicting transitions (else None)
    coordination: Optional[CoordinationRound]
    #: counter value of the RdSh state entered by an upgrading transition
    rdsh_counter: Optional[int] = None


class OctetListener:
    """Hooks fired on state transitions; ICD implements these."""

    def on_conflicting(self, record: TransitionRecord) -> None:
        """A conflicting transition completed its coordination round."""

    def on_upgrading_rd_sh(self, record: TransitionRecord) -> None:
        """A RdExT1 → RdShc transition (read by another thread)."""

    def on_upgrading_wr_ex(self, record: TransitionRecord) -> None:
        """A RdExT → WrExT transition (ICD safely ignores these)."""

    def on_fence(self, record: TransitionRecord) -> None:
        """A fence transition (stale rdShCnt read of a RdSh object)."""

    def on_initial(self, record: TransitionRecord) -> None:
        """First access installed an exclusive state (no dependence)."""


class OctetRuntime:
    """Per-execution Octet state machine.

    Args:
        is_thread_blocked: predicate for the coordination protocol's
            explicit/implicit choice.
        live_threads: callable returning the names of live threads;
            needed for RdSh→WrEx conflicting transitions, whose
            responders are all other threads (readers of a RdSh object
            are not tracked individually — a key source of ICD's
            imprecision).
    """

    def __init__(
        self,
        is_thread_blocked: Callable[[str], bool] | None = None,
        live_threads: Callable[[], List[str]] | None = None,
        fastpath: Optional[bool] = None,
    ) -> None:
        self._states: Dict[int, OctetState] = {}
        self._thread_rdsh: Dict[str, int] = {}
        self.g_rdsh_counter = 0
        self.protocol = CoordinationProtocol(is_thread_blocked)
        self._live_threads = live_threads or (lambda: [])
        self.listeners: List[OctetListener] = []
        #: take the inline same-state shortcut in :meth:`observe`
        #: (``None`` = consult ``DOUBLECHECKER_BARRIER_FASTPATH``)
        self.fastpath = barrier_fastpath_enabled() if fastpath is None else fastpath
        self._stats = OctetStats()
        # Hot-counter batching: the two counters every barrier bumps
        # live in plain attributes and are folded into ``_stats`` only
        # when someone reads ``stats`` (or calls ``flush_hot_counters``)
        # — the per-access telemetry cost stays one attribute store.
        self._barriers_pending = 0
        self._fastpath_pending = 0
        self._fused_pending = 0
        #: transient record of intermediate states entered, for tests
        self.intermediate_entries = 0

    # ------------------------------------------------------------------
    @property
    def stats(self) -> OctetStats:
        """Barrier counters; reading flushes the batched hot counters."""
        if self._barriers_pending or self._fastpath_pending or self._fused_pending:
            self.flush_hot_counters()
        return self._stats

    @stats.setter
    def stats(self, value: OctetStats) -> None:
        self._stats = value
        self._barriers_pending = 0
        self._fastpath_pending = 0
        self._fused_pending = 0

    def flush_hot_counters(self) -> None:
        """Fold the batched barrier/fast-path counts into the stats."""
        stats = self._stats
        stats.barriers += self._barriers_pending
        stats.fast_path += self._fastpath_pending
        stats.fast_path_fused += self._fused_pending
        self._barriers_pending = 0
        self._fastpath_pending = 0
        self._fused_pending = 0

    # ------------------------------------------------------------------
    def add_listener(self, listener: OctetListener) -> None:
        self.listeners.append(listener)

    def state_of(self, oid: int) -> Optional[OctetState]:
        """Current state of object ``oid`` (None = untouched)."""
        return self._states.get(oid)

    def thread_counter(self, thread: str) -> int:
        """The thread's ``rdShCnt``."""
        return self._thread_rdsh.get(thread, 0)

    # ------------------------------------------------------------------
    def observe(self, event: AccessEvent) -> TransitionRecord:
        """Run the barrier for one access; returns the transition record.

        The client must call this *before* the access logically takes
        effect (it is the read/write barrier).

        The common case — a same-state access, i.e. the paper's
        unsynchronized fast path — is detected inline without calling
        :func:`classify` (no :class:`Classified` allocation, no
        ``_commit``/``_notify`` dispatch; listeners never consume
        same-state records).  ``DOUBLECHECKER_BARRIER_FASTPATH=0``
        routes every access through the reference classify path, which
        must stay observably identical (pinned by the identity tests).
        """
        oid = event.obj.oid
        thread = event.thread_name
        old_state = self._states.get(oid)
        if old_state is not None and self.fastpath:
            kind = old_state.kind
            if (
                old_state.owner == thread
                and (
                    kind is StateKind.WR_EX
                    or (kind is StateKind.RD_EX and event.kind is AccessKind.READ)
                )
            ) or (
                kind is StateKind.RD_SH
                and event.kind is AccessKind.READ
                and self._thread_rdsh.get(thread, 0) >= old_state.counter
            ):
                self._barriers_pending += 1
                self._fastpath_pending += 1
                return TransitionRecord(
                    event, TransitionKind.SAME_STATE, old_state, old_state,
                    None, None,
                )
        self._barriers_pending += 1
        classified = classify(
            old_state,
            event.kind,
            thread,
            self.thread_counter(thread),
            self.g_rdsh_counter + 1,
        )
        record = self._commit(event, oid, thread, old_state, classified)
        self._notify(record)
        return record

    # ------------------------------------------------------------------
    def _commit(
        self,
        event: AccessEvent,
        oid: int,
        thread: str,
        old_state: Optional[OctetState],
        classified: Classified,
    ) -> TransitionRecord:
        kind = classified.kind
        stats = self._stats

        if kind is TransitionKind.SAME_STATE:
            stats.fast_path += 1
            return TransitionRecord(event, kind, old_state, old_state, None, None)

        if kind is TransitionKind.INITIAL:
            stats.initial += 1
            self._states[oid] = classified.new_state
            return TransitionRecord(
                event, kind, None, classified.new_state, None, None
            )

        if kind is TransitionKind.UPGRADING_WR_EX:
            stats.upgrading_wr_ex += 1
            stats.atomic_operations += 1
            self._states[oid] = classified.new_state
            return TransitionRecord(
                event, kind, old_state, classified.new_state,
                old_state.owner if old_state else None, None,
            )

        if kind is TransitionKind.UPGRADING_RD_SH:
            stats.upgrading_rd_sh += 1
            # gRdShCnt is incremented atomically, globally ordering all
            # transitions to RdSh (Section 3.2.1)
            stats.atomic_operations += 1
            self.g_rdsh_counter += 1
            new_state = classified.new_state
            assert new_state is not None and new_state.counter == self.g_rdsh_counter
            self._states[oid] = new_state
            # the upgrading thread's own counter becomes current, so its
            # subsequent reads of this object take the fast path
            self._thread_rdsh[thread] = new_state.counter
            prior_owner = old_state.owner if old_state else None
            return TransitionRecord(
                event, kind, old_state, new_state, prior_owner, None,
                rdsh_counter=new_state.counter,
            )

        if kind is TransitionKind.FENCE:
            stats.fences += 1
            stats.memory_fences_issued += 1
            assert classified.thread_counter_update is not None
            self._thread_rdsh[thread] = classified.thread_counter_update
            return TransitionRecord(event, kind, old_state, old_state, None, None)

        # conflicting transitions
        assert kind.is_conflicting()
        stats.conflicting += 1
        stats.conflicting_by_kind[kind.value] = (
            stats.conflicting_by_kind.get(kind.value, 0) + 1
        )
        # enter the intermediate state: one atomic operation claims the
        # object for the requester
        stats.atomic_operations += 1
        self.intermediate_entries += 1
        intermediate = (
            rd_ex_int(thread)
            if classified.new_state.kind is StateKind.RD_EX
            else wr_ex_int(thread)
        )
        self._states[oid] = intermediate

        if kind is TransitionKind.CONFLICTING_SH_WR:
            responders = [t for t in self._live_threads() if t != thread]
            prior_owner = None
        else:
            assert old_state is not None and old_state.owner is not None
            responders = [old_state.owner]
            prior_owner = old_state.owner
        coordination = self.protocol.coordinate(thread, responders)
        # implicit responses set a flag atomically
        stats.atomic_operations += coordination.implicit_count

        self._states[oid] = classified.new_state
        return TransitionRecord(
            event, kind, old_state, classified.new_state, prior_owner, coordination
        )

    def _notify(self, record: TransitionRecord) -> None:
        kind = record.kind
        for listener in self.listeners:
            if kind.is_conflicting():
                listener.on_conflicting(record)
            elif kind is TransitionKind.UPGRADING_RD_SH:
                listener.on_upgrading_rd_sh(record)
            elif kind is TransitionKind.UPGRADING_WR_EX:
                listener.on_upgrading_wr_ex(record)
            elif kind is TransitionKind.FENCE:
                listener.on_fence(record)
            elif kind is TransitionKind.INITIAL:
                listener.on_initial(record)

    # ------------------------------------------------------------------
    def snapshot_states(self) -> Dict[int, OctetState]:
        """Copy of the state table (testing aid)."""
        return dict(self._states)


class PartitionOctetView:
    """Partition-local mirror of Octet state for the sharded analysis
    plane's partition workers.

    A worker owning a per-object partition replays the classification
    logic of :func:`~repro.octet.transitions.classify` over its own
    objects to decide which accesses are *certainly* fast-path in the
    serial run (and can therefore be absorbed locally, never reaching
    the exchange owner).  The mirror never allocates serial ``rdShCnt``
    counter values — those are assigned by the owner in global order —
    so it uses stream **positions** (seqs) as counters instead:
    upgrade-to-RdSh events are totally ordered by seq and serial
    counter values are assigned in exactly that order, hence comparing
    positions is equivalent to comparing serial counters.

    ``known_ctr[tid]`` is a sound *lower bound* on the thread's serial
    ``rdShCnt`` in position terms, advanced only by locally observed
    fences and upgrades; an access is absorbed only when the bound
    already proves the serial run takes the fast path, so staleness
    costs a forward to the owner, never a wrong absorption.
    """

    __slots__ = ("_states", "known_ctr")

    def __init__(self) -> None:
        self._states: Dict[int, OctetState] = {}
        #: tid -> position lower bound on the thread's serial rdShCnt
        self.known_ctr: Dict[int, int] = {}

    def is_certain_fast(self, oid: int, access: AccessKind, tid: int) -> bool:
        """Would the serial barrier certainly take the fast path?"""
        state = self._states.get(oid)
        if state is None:
            return False
        kind = state.kind
        if state.owner == tid and (
            kind is StateKind.WR_EX
            or (kind is StateKind.RD_EX and access is AccessKind.READ)
        ):
            return True
        return (
            kind is StateKind.RD_SH
            and access is AccessKind.READ
            and self.known_ctr.get(tid, 0) >= state.counter
        )

    def apply(self, oid: int, access: AccessKind, tid: int,
              seq: int) -> Optional[int]:
        """Mirror one instrumented access's transition at position
        ``seq``.  Conflicting transitions commit their final state
        directly (the mirror needs the state trajectory, not the
        coordination protocol), so intermediates never exist here.

        Returns the thread's new ``known_ctr`` bound when the access
        raised it (a fence or an upgrade-to-RdSh), else ``None`` —
        the partition workers broadcast these bumps to their peers as
        counter-sync facts, because a fence on *this* partition's
        object raises the thread's serial ``rdShCnt`` for every
        partition's subsequent reads."""
        state = self._states.get(oid)
        classified = classify(
            state, access, tid, self.known_ctr.get(tid, 0), seq
        )
        kind = classified.kind
        if kind is TransitionKind.UPGRADING_RD_SH:
            self._states[oid] = classified.new_state
            self.known_ctr[tid] = seq
            return seq
        if kind is TransitionKind.FENCE:
            ctr = classified.thread_counter_update
            self.known_ctr[tid] = ctr
            return ctr
        if classified.new_state is not None:
            self._states[oid] = classified.new_state
        return None
