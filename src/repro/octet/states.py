"""Octet locality states.

Each object is in exactly one state at a time:

* ``WrExT`` — write-exclusive for thread T: T may read and write
  without synchronization.
* ``RdExT`` — read-exclusive for thread T: T may read without
  synchronization.
* ``RdShc`` — read-shared: any thread may read, provided its per-thread
  counter ``rdShCnt`` is at least ``c`` (otherwise a fence transition
  brings it up to date).
* ``RdExIntT`` / ``WrExIntT`` — intermediate states used by the
  coordination protocol so only one thread at a time changes an
  object's state.  The simulator passes through them within a single
  conflicting transition; they are modelled (and tested) because the
  protocol's correctness argument depends on them.

Objects with no recorded state are *untouched* (e.g., globals allocated
before execution); their first access installs an exclusive state for
the accessing thread without coordination, matching Octet's allocation
behaviour (new objects are born WrEx for the allocating thread).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class StateKind(enum.Enum):
    """The five Octet state kinds."""

    WR_EX = "WrEx"
    RD_EX = "RdEx"
    RD_SH = "RdSh"
    RD_EX_INT = "RdExInt"
    WR_EX_INT = "WrExInt"


@dataclass(frozen=True)
class OctetState:
    """An Octet state value.

    Attributes:
        kind: which of the five states.
        owner: owning thread name for exclusive/intermediate states.
        counter: the value of ``gRdShCnt`` at the transition to RdSh
            (``c`` in the paper); ``None`` for non-RdSh states.
    """

    kind: StateKind
    owner: Optional[str] = None
    counter: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is StateKind.RD_SH:
            if self.counter is None:
                raise ValueError("RdSh state requires a counter")
            if self.owner is not None:
                raise ValueError("RdSh state has no owner")
        else:
            if self.owner is None:
                raise ValueError(f"{self.kind.value} state requires an owner")
            if self.counter is not None:
                raise ValueError(f"{self.kind.value} state has no counter")

    def is_exclusive(self) -> bool:
        return self.kind in (StateKind.WR_EX, StateKind.RD_EX)

    def is_intermediate(self) -> bool:
        return self.kind in (StateKind.RD_EX_INT, StateKind.WR_EX_INT)

    def __str__(self) -> str:
        if self.kind is StateKind.RD_SH:
            return f"RdSh({self.counter})"
        return f"{self.kind.value}({self.owner})"


def wr_ex(owner: str) -> OctetState:
    """Construct a WrExT state."""
    return OctetState(StateKind.WR_EX, owner=owner)


def rd_ex(owner: str) -> OctetState:
    """Construct a RdExT state."""
    return OctetState(StateKind.RD_EX, owner=owner)


def rd_sh(counter: int) -> OctetState:
    """Construct a RdShc state."""
    return OctetState(StateKind.RD_SH, counter=counter)


def rd_ex_int(owner: str) -> OctetState:
    """Construct the intermediate state entered while acquiring RdEx."""
    return OctetState(StateKind.RD_EX_INT, owner=owner)


def wr_ex_int(owner: str) -> OctetState:
    """Construct the intermediate state entered while acquiring WrEx."""
    return OctetState(StateKind.WR_EX_INT, owner=owner)
