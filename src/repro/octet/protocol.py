"""The coordination protocol for conflicting transitions.

A conflicting transition involves one *requesting* thread (reqT, the
thread whose access needs the state change) and one or more
*responding* threads (respT — the current exclusive owner, or, for
RdSh→WrEx, every other thread, since readers are not tracked
individually).  The object first enters an intermediate state so only
one thread at a time changes its state; then, per responder:

* **explicit protocol** — respT is executing code normally; reqT sends
  a request and respT responds at its next *safe point* (a point
  definitely not between a barrier and its access).  The roundtrip
  establishes happens-before.
* **implicit protocol** — respT is blocked (lock/wait/join/IO); reqT
  atomically sets a flag respT will observe on unblocking, placing a
  "hold" on respT while the requester performs work (ICD's procedure)
  on respT's behalf.

In the serialized simulator a thread is never *between* a barrier and
its access when another thread runs, so every scheduler interleaving
point is a safe point, and explicit-protocol responses happen
instantly.  What the protocol model preserves — and what ICD consumes —
is (a) which thread responds, (b) which protocol is used, and (c) which
thread invokes ICD's edge-creation procedure (respT for explicit, reqT
under a hold for implicit).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List


class ProtocolKind(enum.Enum):
    """Which coordination protocol a responder used."""

    EXPLICIT = "explicit"
    IMPLICIT = "implicit"


@dataclass(frozen=True)
class ResponderRecord:
    """One responder's participation in a coordination round."""

    thread_name: str
    protocol: ProtocolKind

    @property
    def invoked_by_requester(self) -> bool:
        """True when reqT invokes ICD's procedure (implicit protocol)."""
        return self.protocol is ProtocolKind.IMPLICIT


@dataclass
class CoordinationRound:
    """A complete coordination round for one conflicting transition."""

    requester: str
    responders: List[ResponderRecord] = field(default_factory=list)

    @property
    def explicit_count(self) -> int:
        return sum(
            1 for r in self.responders if r.protocol is ProtocolKind.EXPLICIT
        )

    @property
    def implicit_count(self) -> int:
        return sum(
            1 for r in self.responders if r.protocol is ProtocolKind.IMPLICIT
        )


class CoordinationProtocol:
    """Carries out coordination rounds and tallies protocol statistics.

    Args:
        is_thread_blocked: predicate telling whether a thread is at a
            blocking operation (decides explicit vs implicit).  Defaults
            to "never blocked" for standalone use.
    """

    def __init__(
        self, is_thread_blocked: Callable[[str], bool] | None = None
    ) -> None:
        self._is_blocked = is_thread_blocked or (lambda _name: False)
        self.rounds = 0
        self.explicit_responses = 0
        self.implicit_responses = 0
        self.holds_placed = 0

    def coordinate(self, requester: str, responders: List[str]) -> CoordinationRound:
        """Run one coordination round against ``responders``."""
        self.rounds += 1
        round_ = CoordinationRound(requester=requester)
        for name in responders:
            if name == requester:
                continue
            if self._is_blocked(name):
                protocol = ProtocolKind.IMPLICIT
                self.implicit_responses += 1
                self.holds_placed += 1
            else:
                protocol = ProtocolKind.EXPLICIT
                self.explicit_responses += 1
            round_.responders.append(ResponderRecord(name, protocol))
        return round_

    def stats(self) -> Dict[str, int]:
        """Protocol statistics for cost accounting."""
        return {
            "rounds": self.rounds,
            "explicit_responses": self.explicit_responses,
            "implicit_responses": self.implicit_responses,
            "holds_placed": self.holds_placed,
        }
