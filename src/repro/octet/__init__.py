"""Octet: software concurrency control (Bond et al., OOPSLA 2013).

Octet maintains a *locality state* per object — write-exclusive
(WrExT), read-exclusive (RdExT), or read-shared (RdShc) — and changes
states with barriers before every access.  State changes establish
happens-before relationships that soundly (but imprecisely) imply all
cross-thread dependences.  DoubleChecker's imprecise analysis (ICD)
piggybacks on these state transitions.

This package reproduces the mechanism at the fidelity DoubleChecker
needs: the full Table 1 transition relation, the global read-shared
counter ``gRdShCnt`` and per-thread ``rdShCnt`` counters, fence
transitions, intermediate states, and the explicit/implicit
coordination protocol (chosen by whether the responding thread is
blocked).
"""

from repro.octet.runtime import OctetListener, OctetRuntime, OctetStats
from repro.octet.states import OctetState, StateKind, rd_ex, rd_sh, wr_ex
from repro.octet.transitions import TransitionKind, classify

__all__ = [
    "OctetListener",
    "OctetRuntime",
    "OctetState",
    "OctetStats",
    "StateKind",
    "TransitionKind",
    "classify",
    "rd_ex",
    "rd_sh",
    "wr_ex",
]
