"""The execution engine: interprets simulated programs step by step.

Each scheduler step advances one thread by one operation.  Before every
shared-memory access (and every synchronization pseudo-access) the
executor invokes the attached listeners' :meth:`on_access` barrier, the
analogue of the compiler-inserted barriers in the paper's Jikes RVM
implementation.

The executor itself knows nothing about transactions, Octet states, or
dependence graphs — those all live in listeners — which keeps the
substrate reusable for every checker configuration the evaluation
needs (Velodrome, single-run, first run, second run, PCD-only, ...).
"""

from __future__ import annotations

import time
from bisect import insort
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

from repro.errors import DeadlockError, ProgramError, StepLimitExceeded
from repro.obs.registry import MODE_FULL, recorder as obs_recorder
from repro.runtime import ops
from repro.runtime.events import (
    LOCK_FIELD,
    THREAD_FIELD,
    AccessEvent,
    AccessKind,
    Site,
    intern_site,
)
from repro.runtime.heap import SharedArray, SharedObject
from repro.runtime.listeners import ExecutionListener, ListenerPipeline
from repro.runtime.lowering import (
    OP_AREAD,
    OP_AWRITE,
    OP_COMPUTE,
    OP_READ,
    OP_WRITE,
    VAL_CONST,
    VAL_INC,
    LoweredBody,
    batch_executor_enabled,
    lower_script,
)
from repro.runtime.program import Program
from repro.runtime.scheduler import RoundRobinScheduler, Scheduler
from repro.runtime.sync import LockTable
from repro.runtime.threads import ThreadState, VThread

#: default safety valve against runaway or livelocked programs
DEFAULT_STEP_LIMIT = 5_000_000

#: most ``executor.quantum`` trace events one run will emit; beyond
#: this, quanta are still counted (``executor.context_switches``,
#: ``executor.quantum.truncated``) but no longer individually traced
QUANTUM_EVENT_LIMIT = 5_000


@dataclass
class ExecutionResult:
    """Summary of one completed execution."""

    steps: int
    access_count: int
    sync_access_count: int
    #: thread name -> number of scheduler steps that ran the thread
    per_thread_ops: Dict[str, int]
    elapsed_seconds: float
    thread_names: List[str] = field(default_factory=list)

    @property
    def program_access_count(self) -> int:
        """Accesses to program data (excludes synchronization accesses)."""
        return self.access_count - self.sync_access_count

    @property
    def steps_per_second(self) -> float:
        """Executor throughput (the microbenchmark's headline metric)."""
        if self.elapsed_seconds <= 0.0:
            return float("inf") if self.steps else 0.0
        return self.steps / self.elapsed_seconds


@dataclass
class _PendingAcquire:
    obj: SharedObject
    depth: int
    after_wait: bool


@dataclass
class _PendingJoin:
    target: str


class _LoweredFrame:
    """One activation of a lowered body on a thread's call stack.

    Occupies the generator slot of the ``(method, payload)`` frame
    tuple; the batch interpreter advances ``pc`` through the body's
    columns instead of ``gen.send``-ing into a generator."""

    __slots__ = ("body", "pc", "regs")

    def __init__(self, body: LoweredBody) -> None:
        self.body = body
        self.pc = 0
        # registers start as None, matching the reference script
        # interpreter's regs.get() for a never-written register
        self.regs: List[Any] = [None] * body.nregs


#: cache-miss sentinel ("not lowerable" is cached as None)
_UNSET = object()


class Executor:
    """Interprets a :class:`~repro.runtime.program.Program`.

    Args:
        program: the program to run.
        scheduler: interleaving policy; defaults to round-robin.
        listeners: analyses to attach (barrier order = list order).
        step_limit: abort threshold for runaway executions.
        sync_as_accesses: when true (the default, matching the paper),
            synchronization operations are also presented to listeners
            as reads/writes of the object being synchronized on.
    """

    def __init__(
        self,
        program: Program,
        scheduler: Optional[Scheduler] = None,
        listeners: Iterable[ExecutionListener] = (),
        step_limit: int = DEFAULT_STEP_LIMIT,
        sync_as_accesses: bool = True,
    ) -> None:
        program.validate()
        self.program = program
        self.scheduler = scheduler or RoundRobinScheduler()
        self.pipeline = ListenerPipeline(listeners)
        self.step_limit = step_limit
        self.sync_as_accesses = sync_as_accesses

        self.heap = program.heap
        self.locks = LockTable()
        self.threads: Dict[str, VThread] = {}
        self._next_tid = 1
        self._seq = 0
        self._steps = 0
        self._access_count = 0
        self._sync_access_count = 0
        self._context = program.make_context()
        # Incrementally maintained scheduling state.  ``_runnable`` is
        # the sorted list of runnable thread names the scheduler sees
        # each step; it is updated on state transitions instead of
        # being rebuilt (and re-sorted) every iteration of the run
        # loop.  ``_runnable_set`` mirrors it for O(1) membership,
        # ``_live_count`` counts unfinished threads.
        self._runnable: List[str] = []
        self._runnable_set: set = set()
        self._live_count = 0
        self._per_thread_steps: Dict[str, int] = {}
        self._on_access = self.pipeline.on_access
        # Batch execution state.  ``_lowered`` caches one LoweredBody
        # per (method, args) activation shape; None marks bodies that
        # cannot be lowered (plain generators, unhashable args).
        self._batch = batch_executor_enabled()
        self._lowered: Dict[Tuple[str, Tuple[Any, ...]], Optional[LoweredBody]] = {}
        self._addr_intern: Dict[Tuple[int, str], Tuple[int, str]] = {}
        self._batch_steps = 0
        self._batch_accesses = 0
        self._batch_delegations = 0
        self._batch_frames_lowered = 0
        self._batch_frames_generator = 0
        # Telemetry.  The recorder is captured once; when telemetry is
        # off it is the NOOP null object and ``run`` takes the exact
        # pre-telemetry path (no per-step or per-access additions).
        self._obs = obs_recorder()
        self._context_switches = 0
        self._last_chosen: Optional[str] = None
        #: [total seconds, calls] spent inside listener dispatch when
        #: access timing is enabled (``full`` mode only)
        self._dispatch_time = [0.0, 0]
        # Quantum spans (``full`` mode only): one trace event per
        # scheduling quantum — a contiguous run of steps on one thread.
        # Bounded so schedulers that switch every step cannot balloon
        # the event buffer; overflow is counted, never silent.
        self._quantum_started = 0.0
        self._quantum_events_left = QUANTUM_EVENT_LIMIT

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self) -> ExecutionResult:
        """Execute the program to completion and return a summary."""
        obs = self._obs
        if not obs.enabled:
            return self._run_loop()
        with obs.span(
            "executor.run", category="executor", program=self.program.name
        ):
            result = self._run_loop(tracked=True)
            self._flush_quantum()
        obs.inc("executor.runs")
        obs.inc("executor.steps", result.steps)
        obs.inc("executor.accesses", result.access_count)
        obs.inc("executor.sync_accesses", result.sync_access_count)
        obs.inc("executor.threads", len(result.thread_names))
        obs.inc("executor.context_switches", self._context_switches)
        seconds, calls = self._dispatch_time
        if calls:
            obs.inc("executor.listener_dispatch.calls", calls)
            obs.observe("executor.listener_dispatch.seconds", seconds)
        if self._batch:
            obs.inc("executor.batch.steps", self._batch_steps)
            obs.inc("executor.batch.accesses", self._batch_accesses)
            obs.inc("executor.batch.delegations", self._batch_delegations)
            obs.inc("executor.batch.frames_lowered", self._batch_frames_lowered)
            obs.inc("executor.batch.frames_generator", self._batch_frames_generator)
            obs.inc("executor.batch.bodies", len(self._lowered))
        return result

    def _run_loop(self, tracked: bool = False) -> ExecutionResult:
        if self._batch:
            return self._run_loop_batch(tracked)
        self.scheduler.reset()
        # rebind the access fast path in case listeners were attached
        # to the pipeline after construction; with a single listener the
        # pipeline hands back that listener's fused access barrier
        # (ICD + Octet as one call), so ``_emit_access`` dispatches the
        # whole instrumentation stack through one callable
        self._on_access = self.pipeline.on_access
        choose = self.scheduler.choose
        if tracked:
            # scheduler telemetry wraps ``choose`` so the untracked
            # loop below stays byte-identical to the pre-telemetry one
            choose = self._tracking_choose(choose)
            if self._obs.mode == MODE_FULL and self.pipeline.listeners:
                self._time_listener_dispatch()
        started = time.perf_counter()
        for spec in self.program.threads:
            self._spawn(spec.name, spec.method, spec.args)

        runnable = self._runnable
        threads = self.threads
        step_limit = self.step_limit
        while self._live_count:
            if not runnable:
                blocked = {
                    t.name: t.state.value
                    for t in threads.values()
                    if t.is_live()
                }
                raise DeadlockError(blocked)
            chosen = choose(runnable, self._steps)
            if chosen not in self._runnable_set:
                raise ProgramError(
                    f"scheduler chose non-runnable thread {chosen!r}"
                )
            self._steps += 1
            if self._steps > step_limit:
                raise StepLimitExceeded(step_limit)
            self._step(threads[chosen])

        self.pipeline.on_execution_end()
        elapsed = time.perf_counter() - started
        return ExecutionResult(
            steps=self._steps,
            access_count=self._access_count,
            sync_access_count=self._sync_access_count,
            per_thread_ops=dict(self._per_thread_steps),
            elapsed_seconds=elapsed,
            thread_names=sorted(self.threads),
        )

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def _batch_emitter(self):
        """The per-access sink for the batch loop.

        Preference order: a listener-provided *batch barrier* (no
        AccessEvent allocation at all), then the ordinary event path
        (allocating an event per access, exactly like the reference
        arm), then a no-op when nobody is listening.  All three are
        observationally identical because events are value types built
        from the same columns.
        """
        plain_dispatch = self._on_access is self.pipeline.on_access
        listeners = self.pipeline.listeners
        if plain_dispatch and not listeners:

            def discard(seq, thread_name, obj, fieldname, kind, site,
                        address, site_str, is_array):
                return None

            return discard
        if plain_dispatch and len(listeners) == 1:
            factory = getattr(listeners[0], "access_barrier_batch", None)
            if factory is not None:
                barrier = factory()
                if barrier is not None:
                    return barrier
        on_access = self._on_access

        def emit(seq, thread_name, obj, fieldname, kind, site,
                 address, site_str, is_array, _event=AccessEvent):
            on_access(
                _event(seq, thread_name, obj, fieldname, kind, False,
                       is_array, site)
            )

        return emit

    def _lowered_body(self, method: str, args: Tuple[Any, ...]) -> Optional[LoweredBody]:
        key = (method, args)
        try:
            cached = self._lowered.get(key, _UNSET)
        except TypeError:
            # unhashable args cannot key the cache; run as a generator
            return None
        if cached is not _UNSET:
            return cached
        script_fn = getattr(self.program.lookup(method).body, "_dc_script_fn", None)
        lowered = None
        if script_fn is not None:
            lowered = lower_script(
                script_fn(self._context, *args), method, self._addr_intern
            )
        self._lowered[key] = lowered
        return lowered

    def _run_loop_batch(self, tracked: bool = False) -> ExecutionResult:
        """Batch-mode run loop: tight columnar interpretation.

        Lowered frames execute without generator sends, op-dataclass
        allocations, handler-dict dispatch, or Site construction; each
        access calls the emitter with pre-interned column values.
        Control ops, generator frames, blocked-op retries, and thread
        starts delegate to the exact reference-arm handlers, so every
        observable transition matches the reference loop byte for byte.
        """
        self.scheduler.reset()
        self._on_access = self.pipeline.on_access
        choose = self.scheduler.choose
        if tracked:
            choose = self._tracking_choose(choose)
            if self._obs.mode == MODE_FULL and self.pipeline.listeners:
                self._time_listener_dispatch()
        emit = self._batch_emitter()
        started = time.perf_counter()
        for spec in self.program.threads:
            self._spawn(spec.name, spec.method, spec.args)

        runnable = self._runnable
        runnable_set = self._runnable_set
        threads = self.threads
        step_limit = self.step_limit
        per_thread = self._per_thread_steps
        handlers = self._HANDLERS
        pending_classes = (_PendingAcquire, _PendingJoin)
        kind_read = AccessKind.READ
        kind_write = AccessKind.WRITE
        batch_steps = 0
        batch_accesses = 0
        batch_delegations = 0
        while self._live_count:
            if not runnable:
                blocked = {
                    t.name: t.state.value
                    for t in threads.values()
                    if t.is_live()
                }
                raise DeadlockError(blocked)
            chosen = choose(runnable, self._steps)
            if chosen not in runnable_set:
                raise ProgramError(
                    f"scheduler chose non-runnable thread {chosen!r}"
                )
            self._steps += 1
            if self._steps > step_limit:
                raise StepLimitExceeded(step_limit)
            thread = threads[chosen]
            per_thread[chosen] += 1
            if not thread.started:
                thread.started = True
                self.pipeline.on_thread_start(chosen)
                self._emit_sync_access(
                    thread, thread.thread_obj, THREAD_FIELD, kind_read,
                    intern_site("<thread-start>"),
                )
                continue
            if thread.compute_remaining > 0:
                thread.compute_remaining -= 1
                continue
            pending = thread.pending_value
            if pending is not None and pending.__class__ in pending_classes:
                self._retry_pending(thread)
                continue
            frame = thread.frames[-1][1]
            if frame.__class__ is not _LoweredFrame:
                self._advance(thread)
                continue
            # ---- lowered fast path: one column entry per step ----
            batch_steps += 1
            if pending is not None:
                # a value produced for this frame (a callee's return,
                # fork's thread name): scripts never capture those
                thread.pending_value = None
            body = frame.body
            pc = frame.pc
            if pc == body.length:
                # one step past the last op, like a generator's
                # StopIteration step in the reference arm
                self._return_from_frame(thread, None)
                continue
            frame.pc = pc + 1
            code = body.codes[pc]
            if code <= OP_AWRITE:
                batch_accesses += 1
                seq = self._seq + 1
                self._seq = seq
                self._access_count += 1
                obj = body.objs[pc]
                fieldname = body.fields[pc]
                if code == OP_READ:
                    emit(seq, chosen, obj, fieldname, kind_read,
                         body.sites[pc], body.addresses[pc],
                         body.site_strs[pc], False)
                    dst = body.dst_regs[pc]
                    if dst >= 0:
                        frame.regs[dst] = obj.fields.get(fieldname, 0)
                elif code == OP_WRITE:
                    emit(seq, chosen, obj, fieldname, kind_write,
                         body.sites[pc], body.addresses[pc],
                         body.site_strs[pc], False)
                    mode = body.val_modes[pc]
                    if mode == VAL_INC:
                        value = (frame.regs[body.val_regs[pc]] or 0) \
                            + body.val_consts[pc]
                    elif mode == VAL_CONST:
                        value = body.val_consts[pc]
                    else:
                        value = frame.regs[body.val_regs[pc]]
                    obj.fields[fieldname] = value
                elif code == OP_AREAD:
                    emit(seq, chosen, obj, fieldname, kind_read,
                         body.sites[pc], body.addresses[pc],
                         body.site_strs[pc], True)
                    dst = body.dst_regs[pc]
                    if dst >= 0:
                        frame.regs[dst] = obj.elements[body.array_indices[pc]]
                else:  # OP_AWRITE
                    emit(seq, chosen, obj, fieldname, kind_write,
                         body.sites[pc], body.addresses[pc],
                         body.site_strs[pc], True)
                    mode = body.val_modes[pc]
                    if mode == VAL_INC:
                        value = (frame.regs[body.val_regs[pc]] or 0) \
                            + body.val_consts[pc]
                    elif mode == VAL_CONST:
                        value = body.val_consts[pc]
                    else:
                        value = frame.regs[body.val_regs[pc]]
                    obj.elements[body.array_indices[pc]] = value
            elif code == OP_COMPUTE:
                cost = body.val_consts[pc]
                if cost > 1:
                    thread.compute_remaining = cost - 1
            else:
                # control op: sync the op counter so handler-built
                # sites carry this pc, then run the reference handler
                batch_delegations += 1
                thread.op_counters[-1] = pc
                op = body.control_ops[pc]
                handlers[op.__class__](self, thread, op)

        self._batch_steps += batch_steps
        self._batch_accesses += batch_accesses
        self._batch_delegations += batch_delegations
        self.pipeline.on_execution_end()
        elapsed = time.perf_counter() - started
        return ExecutionResult(
            steps=self._steps,
            access_count=self._access_count,
            sync_access_count=self._sync_access_count,
            per_thread_ops=dict(self._per_thread_steps),
            elapsed_seconds=elapsed,
            thread_names=sorted(self.threads),
        )

    # ------------------------------------------------------------------
    # telemetry wrappers (installed only when a registry is active)
    # ------------------------------------------------------------------
    def _tracking_choose(self, choose):
        """Count context switches around the scheduler's choice.

        In ``full`` mode the wrapper also emits one ``executor.quantum``
        trace event per scheduling quantum (capped at
        :data:`QUANTUM_EVENT_LIMIT`).  All of this lives in the wrapper
        — the batch interpreter's hot loop is untouched and stays
        allocation-free; the untracked loop stays byte-identical to the
        pre-telemetry one.
        """
        obs = self._obs
        if obs.mode != MODE_FULL:

            def tracked(runnable: List[str], step: int) -> str:
                chosen = choose(runnable, step)
                if chosen != self._last_chosen:
                    if self._last_chosen is not None:
                        self._context_switches += 1
                    self._last_chosen = chosen
                return chosen

            return tracked

        perf = time.perf_counter
        epoch = obs.epoch

        def tracked_full(runnable: List[str], step: int) -> str:
            chosen = choose(runnable, step)
            last = self._last_chosen
            if chosen != last:
                now = perf()
                if last is not None:
                    self._context_switches += 1
                    if self._quantum_events_left > 0:
                        self._quantum_events_left -= 1
                        obs.emit_event(
                            "executor.quantum", "executor",
                            ts=self._quantum_started - epoch,
                            dur=now - self._quantum_started,
                            args={"thread": last},
                        )
                    else:
                        obs.inc("executor.quantum.truncated")
                self._quantum_started = now
                self._last_chosen = chosen
            return chosen

        return tracked_full

    def _flush_quantum(self) -> None:
        """Emit the final (still-open) quantum of a tracked full-mode
        run — the loop only closes quanta at context switches."""
        obs = self._obs
        if (
            obs.mode == MODE_FULL
            and self._last_chosen is not None
            and self._quantum_events_left > 0
        ):
            self._quantum_events_left -= 1
            obs.emit_event(
                "executor.quantum", "executor",
                ts=self._quantum_started - obs.epoch,
                dur=time.perf_counter() - self._quantum_started,
                args={"thread": self._last_chosen},
            )

    def _time_listener_dispatch(self) -> None:
        """Measure time spent inside the listener barrier (full mode)."""
        inner = self._on_access
        accumulator = self._dispatch_time
        perf = time.perf_counter

        def timed(event: AccessEvent) -> None:
            start = perf()
            inner(event)
            accumulator[0] += perf() - start
            accumulator[1] += 1

        self._on_access = timed

    # ------------------------------------------------------------------
    # runnable-set bookkeeping
    # ------------------------------------------------------------------
    def _block(self, thread: VThread, state: ThreadState) -> None:
        """Transition a runnable thread into a blocked/waiting state."""
        thread.state = state
        self._runnable_set.remove(thread.name)
        self._runnable.remove(thread.name)
        if state is not ThreadState.FINISHED:
            self.pipeline.on_thread_blocked(thread.name)

    def _unblock(self, thread: VThread) -> None:
        """Transition a blocked/waiting thread back to runnable."""
        thread.state = ThreadState.RUNNABLE
        self._runnable_set.add(thread.name)
        insort(self._runnable, thread.name)
        self.pipeline.on_thread_unblocked(thread.name)

    # ------------------------------------------------------------------
    # thread lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, name: str, method: str, args: Tuple[Any, ...]) -> VThread:
        if name in self.threads:
            raise ProgramError(f"duplicate thread name: {name!r}")
        thread_obj = self.heap.alloc(f"<thread:{name}>")
        thread = VThread(name, self._next_tid, thread_obj)
        self._next_tid += 1
        self.threads[name] = thread
        self._live_count += 1
        self._runnable_set.add(name)
        insort(self._runnable, name)
        self._per_thread_steps[name] = 0
        self._push_call(thread, method, args)
        return thread

    def _push_call(self, thread: VThread, method: str, args: Tuple[Any, ...]) -> None:
        if self._batch:
            lowered = self._lowered_body(method, args)
            if lowered is not None:
                self.pipeline.on_method_enter(
                    thread.name, method, thread.call_depth() + 1
                )
                thread.push_frame(method, _LoweredFrame(lowered))
                self._batch_frames_lowered += 1
                return
            self._batch_frames_generator += 1
        definition = self.program.lookup(method)
        result = definition.body(self._context, *args)
        if hasattr(result, "send"):
            gen: Generator[Any, Any, Any] = result
        else:
            # a plain function body: model it as a generator that
            # immediately returns its value
            def _wrap(value: Any) -> Generator[Any, Any, Any]:
                return value
                yield  # pragma: no cover - makes _wrap a generator fn

            gen = _wrap(result)
        self.pipeline.on_method_enter(thread.name, method, thread.call_depth() + 1)
        thread.push_frame(method, gen)

    def _finish_thread(self, thread: VThread) -> None:
        # the finishing thread is the one being stepped, so it is
        # currently in the runnable set
        self._block(thread, ThreadState.FINISHED)
        self._live_count -= 1
        # thread termination happens-before join() return: model it as a
        # release-like write of the thread object
        self._emit_sync_access(
            thread, thread.thread_obj, THREAD_FIELD, AccessKind.WRITE,
            intern_site("<thread-end>"),
        )
        self.pipeline.on_thread_end(thread.name)
        # wake joiners
        for other in self.threads.values():
            if other.state is ThreadState.BLOCKED_JOIN and other.joining == thread.name:
                self._unblock(other)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def _step(self, thread: VThread) -> None:
        self._per_thread_steps[thread.name] += 1
        if not thread.started:
            thread.started = True
            self.pipeline.on_thread_start(thread.name)
            # Thread.start() happens-before the first action of the
            # thread: model the child side as an acquire-like read
            self._emit_sync_access(
                thread, thread.thread_obj, THREAD_FIELD, AccessKind.READ,
                intern_site("<thread-start>"),
            )
            return
        if thread.compute_remaining > 0:
            thread.compute_remaining -= 1
            return
        if thread.pending_value.__class__ in (_PendingAcquire, _PendingJoin):
            self._retry_pending(thread)
            return
        self._advance(thread)

    def _advance(self, thread: VThread) -> None:
        _method, gen = thread.frames[-1]
        value, thread.pending_value = thread.pending_value, None
        try:
            op = gen.send(value)
        except StopIteration as stop:
            self._return_from_frame(thread, stop.value)
            return
        self._dispatch(thread, op)

    def _return_from_frame(self, thread: VThread, value: Any) -> None:
        method = thread.pop_frame()
        self.pipeline.on_method_exit(thread.name, method, thread.call_depth() + 1)
        if thread.frames:
            thread.pending_value = value
        else:
            self._finish_thread(thread)

    # ------------------------------------------------------------------
    # operation dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, thread: VThread, op: Any) -> None:
        handler = self._HANDLERS.get(op.__class__)
        if handler is None:
            raise ProgramError(
                f"thread {thread.name!r} yielded a non-operation: {op!r}"
            )
        handler(self, thread, op)

    def _site(self, thread: VThread) -> Site:
        return intern_site(thread.current_method(), thread.next_op_index())

    def _emit_access(
        self,
        thread: VThread,
        obj: Any,
        fieldname: str,
        kind: AccessKind,
        site: Site,
        is_sync: bool = False,
        is_array: bool = False,
    ) -> None:
        seq = self._seq + 1
        self._seq = seq
        self._access_count += 1
        if is_sync:
            self._sync_access_count += 1
        self._on_access(
            AccessEvent(
                seq, thread.name, obj, fieldname, kind, is_sync, is_array, site
            )
        )

    def _emit_sync_access(
        self, thread: VThread, obj: Any, fieldname: str, kind: AccessKind, site: Site
    ) -> None:
        if self.sync_as_accesses:
            self._emit_access(thread, obj, fieldname, kind, site, is_sync=True)

    # --- memory ---------------------------------------------------------
    def _do_read(self, thread: VThread, op: ops.Read) -> None:
        site = self._site(thread)
        self._emit_access(thread, op.obj, op.fieldname, AccessKind.READ, site)
        thread.pending_value = self.heap.read_field(op.obj, op.fieldname)

    def _do_write(self, thread: VThread, op: ops.Write) -> None:
        site = self._site(thread)
        self._emit_access(thread, op.obj, op.fieldname, AccessKind.WRITE, site)
        self.heap.write_field(op.obj, op.fieldname, op.value)

    def _do_array_read(self, thread: VThread, op: ops.ArrayRead) -> None:
        site = self._site(thread)
        self._emit_access(
            thread, op.array, f"[{op.index}]", AccessKind.READ, site, is_array=True
        )
        thread.pending_value = self.heap.read_element(op.array, op.index)

    def _do_array_write(self, thread: VThread, op: ops.ArrayWrite) -> None:
        site = self._site(thread)
        self._emit_access(
            thread, op.array, f"[{op.index}]", AccessKind.WRITE, site, is_array=True
        )
        self.heap.write_element(op.array, op.index, op.value)

    def _do_new(self, thread: VThread, op: ops.New) -> None:
        thread.next_op_index()
        thread.pending_value = self.heap.alloc(op.label)

    def _do_new_array(self, thread: VThread, op: ops.NewArray) -> None:
        thread.next_op_index()
        thread.pending_value = self.heap.alloc_array(op.label, op.length, op.fill)

    # --- synchronization --------------------------------------------------
    def _do_acquire(self, thread: VThread, op: ops.Acquire) -> None:
        site = self._site(thread)
        if self.locks.try_acquire(thread.name, op.obj):
            self._emit_sync_access(thread, op.obj, LOCK_FIELD, AccessKind.READ, site)
        else:
            self._block(thread, ThreadState.BLOCKED_LOCK)
            thread.blocked_on = op.obj
            thread.pending_value = _PendingAcquire(op.obj, 1, after_wait=False)

    def _do_release(self, thread: VThread, op: ops.Release) -> None:
        site = self._site(thread)
        self._emit_sync_access(thread, op.obj, LOCK_FIELD, AccessKind.WRITE, site)
        freed = self.locks.release(thread.name, op.obj)
        if freed:
            self._wake_lock_blocked(op.obj)

    def _do_wait(self, thread: VThread, op: ops.Wait) -> None:
        site = self._site(thread)
        self.locks.require_owner(thread.name, op.obj, "wait")
        self._emit_sync_access(thread, op.obj, LOCK_FIELD, AccessKind.WRITE, site)
        depth = self.locks.release_fully(thread.name, op.obj)
        self.locks.add_waiter(thread.name, op.obj)
        self._block(thread, ThreadState.WAITING)
        thread.blocked_on = op.obj
        thread.pending_value = _PendingAcquire(op.obj, depth, after_wait=True)
        self._wake_lock_blocked(op.obj)

    def _do_notify(self, thread: VThread, op: ops.Notify) -> None:
        site = self._site(thread)
        self.locks.require_owner(thread.name, op.obj, "notify")
        self._emit_sync_access(thread, op.obj, LOCK_FIELD, AccessKind.WRITE, site)
        for name in self.locks.notify(op.obj, op.wake_all):
            waiter = self.threads[name]
            # notified threads compete for the monitor once it is free;
            # WAITING -> BLOCKED_LOCK never touches the runnable set
            waiter.state = ThreadState.BLOCKED_LOCK

    def _wake_lock_blocked(self, obj: SharedObject) -> None:
        for other in self.threads.values():
            if (
                other.state is ThreadState.BLOCKED_LOCK
                and other.blocked_on is obj
            ):
                self._unblock(other)

    # --- structure & threads ----------------------------------------------
    def _do_invoke(self, thread: VThread, op: ops.Invoke) -> None:
        thread.next_op_index()
        self._push_call(thread, op.method, op.args)

    def _do_fork(self, thread: VThread, op: ops.Fork) -> None:
        site = self._site(thread)
        child = self._spawn(op.thread_name, op.method, op.args)
        # Thread.start(): release-like write on the child's thread object
        self._emit_sync_access(
            thread, child.thread_obj, THREAD_FIELD, AccessKind.WRITE, site
        )
        thread.pending_value = op.thread_name

    def _do_join(self, thread: VThread, op: ops.Join) -> None:
        target = self.threads.get(op.thread_name)
        if target is None:
            raise ProgramError(
                f"thread {thread.name!r} joined unknown thread {op.thread_name!r}"
            )
        site = self._site(thread)
        if target.state is ThreadState.FINISHED:
            self._emit_sync_access(
                thread, target.thread_obj, THREAD_FIELD, AccessKind.READ, site
            )
        else:
            self._block(thread, ThreadState.BLOCKED_JOIN)
            thread.joining = op.thread_name
            thread.pending_value = _PendingJoin(op.thread_name)

    def _do_compute(self, thread: VThread, op: ops.Compute) -> None:
        thread.next_op_index()
        thread.compute_remaining = max(0, op.cost - 1)

    # --- pending retries -----------------------------------------------
    def _retry_pending(self, thread: VThread) -> None:
        pending = thread.pending_value
        if isinstance(pending, _PendingAcquire):
            if self.locks.try_acquire(thread.name, pending.obj, pending.depth):
                thread.pending_value = None
                thread.blocked_on = None
                site = intern_site(thread.current_method(), -1)
                self._emit_sync_access(
                    thread, pending.obj, LOCK_FIELD, AccessKind.READ, site
                )
            else:
                self._block(thread, ThreadState.BLOCKED_LOCK)
            return
        if isinstance(pending, _PendingJoin):
            target = self.threads[pending.target]
            if target.state is ThreadState.FINISHED:
                thread.pending_value = None
                thread.joining = None
                site = intern_site(thread.current_method(), -1)
                self._emit_sync_access(
                    thread, target.thread_obj, THREAD_FIELD, AccessKind.READ, site
                )
            else:
                self._block(thread, ThreadState.BLOCKED_JOIN)
            return
        raise ProgramError(f"unknown pending operation: {pending!r}")

    _HANDLERS = {
        ops.Read: _do_read,
        ops.Write: _do_write,
        ops.ArrayRead: _do_array_read,
        ops.ArrayWrite: _do_array_write,
        ops.New: _do_new,
        ops.NewArray: _do_new_array,
        ops.Acquire: _do_acquire,
        ops.Release: _do_release,
        ops.Wait: _do_wait,
        ops.Notify: _do_notify,
        ops.Invoke: _do_invoke,
        ops.Fork: _do_fork,
        ops.Join: _do_join,
        ops.Compute: _do_compute,
    }


def run_program(
    program: Program,
    scheduler: Optional[Scheduler] = None,
    listeners: Iterable[ExecutionListener] = (),
    step_limit: int = DEFAULT_STEP_LIMIT,
) -> ExecutionResult:
    """Convenience wrapper: build an :class:`Executor` and run it."""
    return Executor(program, scheduler, listeners, step_limit).run()
