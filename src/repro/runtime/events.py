"""Events the executor dispatches to attached analyses.

The central event is :class:`AccessEvent`.  Following the paper
(Section 3.2.2, "Handling synchronization operations"), synchronization
operations are presented to the checkers as accesses: acquire-like
operations (lock acquire, monitor re-entry after ``wait``, the child
side of ``fork``, the parent side of ``join``) are **reads** of the
object being synchronized on, and release-like operations (lock
release, ``wait``'s release, the parent side of ``fork``, thread
termination observed by ``join``) are **writes**.  The ``is_sync`` flag
distinguishes them where a client cares (e.g., Table 3 counts program
accesses, not synthesized synchronization accesses).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional, Tuple


class AccessKind(enum.Enum):
    """Whether an access reads or writes shared state."""

    READ = "read"
    WRITE = "write"


class Site:
    """A static program location: method name plus operation ordinal.

    Sites identify *static* transactions (multi-run mode communicates
    method start locations between runs) and static violation reports
    (Table 2 counts methods blamed at least once).

    A ``__slots__`` value type rather than a dataclass: one is built
    for every dynamic access, so construction cost is on the hot path.
    Treat instances as immutable.
    """

    __slots__ = ("method", "index")

    def __init__(self, method: str, index: int = 0) -> None:
        self.method = method
        self.index = index

    def __eq__(self, other: object) -> bool:
        return (
            other.__class__ is Site
            and self.method == other.method
            and self.index == other.index
        )

    def __hash__(self) -> int:
        return hash((self.method, self.index))

    def __repr__(self) -> str:
        return f"Site(method={self.method!r}, index={self.index!r})"

    def __str__(self) -> str:
        return f"{self.method}@{self.index}"

    def __getstate__(self) -> Tuple[str, int]:
        return (self.method, self.index)

    def __setstate__(self, state: Tuple[str, int]) -> None:
        self.method, self.index = state


#: process-wide site intern table: sites are value types keyed by
#: ``(method, index)``, and the set of distinct sites is bounded by the
#: program text, so canonical instances can be shared freely — the
#: executor, the lowering pass, and ICD's site-string table all probe
#: with the same object, making every downstream hash hit cheap
_SITE_INTERN: dict = {}


def intern_site(method: str, index: int = 0) -> Site:
    """The canonical :class:`Site` for a ``(method, index)`` location.

    Both executor arms use this, so the reference interpreter and the
    lowered column tables share identical instances (not merely equal
    values).  Interning changes object identity only; all comparisons
    remain by value.
    """
    key = (method, index)
    site = _SITE_INTERN.get(key)
    if site is None:
        site = _SITE_INTERN[key] = Site(method, index)
    return site


# Pseudo-field names used when synchronization is modelled as an access.
LOCK_FIELD = "<monitor>"
THREAD_FIELD = "<thread>"


class AccessEvent:
    """One dynamic shared-memory access (or synchronization pseudo-access).

    A ``__slots__`` structure rather than a frozen dataclass: the
    executor allocates one per access, making construction cost part of
    every barrier.  Instances are immutable by convention — listeners
    must never mutate an event they receive.

    Attributes:
        seq: global sequence number assigned by the executor; used only
            by test oracles and never consulted by the checkers (the
            paper's analyses cannot observe a global order either).
        thread_name: the accessing thread.
        obj: the :class:`~repro.runtime.heap.SharedObject` or
            :class:`~repro.runtime.heap.SharedArray` accessed.
        fieldname: field name, ``<monitor>``/``<thread>`` for sync
            pseudo-accesses, or ``[i]`` strings for array elements when
            element granularity is in effect.
        kind: read or write.
        is_sync: true for synchronization pseudo-accesses.
        is_array: true for array element accesses.
        site: static location of the access.
    """

    __slots__ = (
        "seq",
        "thread_name",
        "obj",
        "fieldname",
        "kind",
        "is_sync",
        "is_array",
        "site",
    )

    def __init__(
        self,
        seq: int,
        thread_name: str,
        obj: Any,
        fieldname: str,
        kind: AccessKind,
        is_sync: bool,
        is_array: bool,
        site: Site,
    ) -> None:
        self.seq = seq
        self.thread_name = thread_name
        self.obj = obj
        self.fieldname = fieldname
        self.kind = kind
        self.is_sync = is_sync
        self.is_array = is_array
        self.site = site

    def _key(self) -> Tuple[Any, ...]:
        return (
            self.seq,
            self.thread_name,
            self.obj,
            self.fieldname,
            self.kind,
            self.is_sync,
            self.is_array,
            self.site,
        )

    def __eq__(self, other: object) -> bool:
        return other.__class__ is AccessEvent and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (
            f"AccessEvent(seq={self.seq!r}, thread_name={self.thread_name!r}, "
            f"obj={self.obj!r}, fieldname={self.fieldname!r}, kind={self.kind!r}, "
            f"is_sync={self.is_sync!r}, is_array={self.is_array!r}, "
            f"site={self.site!r})"
        )

    def __getstate__(self) -> Tuple[Any, ...]:
        return self._key()

    def __setstate__(self, state: Tuple[Any, ...]) -> None:
        (
            self.seq,
            self.thread_name,
            self.obj,
            self.fieldname,
            self.kind,
            self.is_sync,
            self.is_array,
            self.site,
        ) = state

    @property
    def address(self) -> Tuple[int, str]:
        """Field-granularity address: (object id, field name)."""
        return (self.obj.oid, self.fieldname)

    @property
    def object_address(self) -> Tuple[int, str]:
        """Object-granularity address, conflating all fields.

        Used by the array-instrumentation experiment, which conflates
        all elements of an array by using array-level metadata.
        """
        return (self.obj.oid, "*")

    def is_read(self) -> bool:
        return self.kind is AccessKind.READ

    def is_write(self) -> bool:
        return self.kind is AccessKind.WRITE


@dataclass(frozen=True)
class MethodEvent:
    """Method entry or exit on a thread."""

    thread_name: str
    method: str
    depth: int


@dataclass(frozen=True)
class ThreadEvent:
    """Thread start or termination."""

    thread_name: str


__all__ = [
    "AccessEvent",
    "AccessKind",
    "LOCK_FIELD",
    "MethodEvent",
    "Site",
    "THREAD_FIELD",
    "ThreadEvent",
    "intern_site",
]
