"""Shared heap for simulated programs.

Objects correspond to the paper's unit of Octet state tracking ("we use
the term 'object' to refer to any unit of shared memory").  Every
object carries a monitor (for ``synchronized``-style locking) and a
dictionary of named fields.  Arrays are a separate type so the
array-instrumentation experiment (Section 5.4) can choose between
element-granularity accesses and array-granularity metadata.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional


class SharedObject:
    """A heap object with named fields and a monitor.

    Analyses never store metadata on the object itself; they keep side
    tables keyed by :attr:`oid` so several analyses can observe the same
    execution without interfering.
    """

    __slots__ = ("oid", "label", "fields")

    def __init__(self, oid: int, label: str) -> None:
        self.oid = oid
        self.label = label
        self.fields: Dict[str, Any] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SharedObject #{self.oid} {self.label!r}>"

    def __hash__(self) -> int:
        return self.oid

    def __eq__(self, other: object) -> bool:
        return self is other


class SharedArray:
    """A heap array; elements are addressed by integer index."""

    __slots__ = ("oid", "label", "elements")

    def __init__(self, oid: int, label: str, length: int, fill: Any = 0) -> None:
        self.oid = oid
        self.label = label
        self.elements: List[Any] = [fill] * length

    def __len__(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SharedArray #{self.oid} {self.label!r} len={len(self.elements)}>"

    def __hash__(self) -> int:
        return self.oid

    def __eq__(self, other: object) -> bool:
        return self is other


class Heap:
    """Allocator and root table for the simulated heap.

    Globals allocated before execution (via :meth:`alloc`) model static
    fields; objects allocated during execution (``yield New(...)``)
    model dynamic allocation.  Thread objects are allocated here too so
    fork/join synchronization can be expressed as accesses to them.
    """

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._objects: Dict[int, Any] = {}

    def alloc(self, label: str = "obj") -> SharedObject:
        """Allocate and register a new :class:`SharedObject`."""
        obj = SharedObject(next(self._ids), label)
        self._objects[obj.oid] = obj
        return obj

    def alloc_array(self, label: str, length: int, fill: Any = 0) -> SharedArray:
        """Allocate and register a new :class:`SharedArray`."""
        arr = SharedArray(next(self._ids), label, length, fill)
        self._objects[arr.oid] = arr
        return arr

    def get(self, oid: int) -> Optional[Any]:
        """Return the object with id ``oid`` or ``None``."""
        return self._objects.get(oid)

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._objects.values())

    def read_field(self, obj: SharedObject, fieldname: str) -> Any:
        """Read a field, defaulting to 0 for never-written fields."""
        return obj.fields.get(fieldname, 0)

    def write_field(self, obj: SharedObject, fieldname: str, value: Any) -> None:
        """Write a field."""
        obj.fields[fieldname] = value

    def read_element(self, arr: SharedArray, index: int) -> Any:
        """Read an array element (bounds-checked)."""
        return arr.elements[index]

    def write_element(self, arr: SharedArray, index: int, value: Any) -> None:
        """Write an array element (bounds-checked)."""
        arr.elements[index] = value
