"""Operation vocabulary for simulated multithreaded programs.

A simulated method body is a Python generator that yields operation
objects.  The executor interprets one yielded operation per scheduler
step and sends the operation's result (if any) back into the generator,
so bodies can be data dependent::

    def increment(ctx):
        value = yield Read(ctx.counter, "value")
        yield Write(ctx.counter, "value", value + 1)

Operations fall into four groups:

* **memory** — :class:`Read`, :class:`Write`, :class:`ArrayRead`,
  :class:`ArrayWrite`, :class:`New`, :class:`NewArray`;
* **synchronization** — :class:`Acquire`, :class:`Release`,
  :class:`Wait`, :class:`Notify`;
* **thread lifecycle** — :class:`Fork`, :class:`Join`;
* **structure** — :class:`Invoke` (method call; transactions are
  demarcated at method granularity) and :class:`Compute` (thread-local
  work with no shared access, useful for spacing interleavings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple


@dataclass(frozen=True)
class Read:
    """Read ``obj.field``; the executor sends back the current value."""

    obj: Any
    fieldname: str


@dataclass(frozen=True)
class Write:
    """Write ``value`` to ``obj.field``."""

    obj: Any
    fieldname: str
    value: Any = None


@dataclass(frozen=True)
class ArrayRead:
    """Read ``array[index]``; the executor sends back the element."""

    array: Any
    index: int


@dataclass(frozen=True)
class ArrayWrite:
    """Write ``value`` to ``array[index]``."""

    array: Any
    index: int
    value: Any = None


@dataclass(frozen=True)
class New:
    """Allocate a fresh shared object; the executor sends back the object."""

    label: str = "obj"


@dataclass(frozen=True)
class NewArray:
    """Allocate a fresh shared array of ``length`` elements."""

    label: str = "array"
    length: int = 0
    fill: Any = 0


@dataclass(frozen=True)
class Acquire:
    """Acquire the monitor of ``obj`` (reentrant); blocks if held elsewhere."""

    obj: Any


@dataclass(frozen=True)
class Release:
    """Release the monitor of ``obj``; errors if the thread does not own it."""

    obj: Any


@dataclass(frozen=True)
class Wait:
    """``obj.wait()``: release the monitor and sleep until notified."""

    obj: Any


@dataclass(frozen=True)
class Notify:
    """``obj.notify()`` / ``obj.notifyAll()`` depending on ``wake_all``."""

    obj: Any
    wake_all: bool = False


@dataclass(frozen=True)
class Invoke:
    """Call method ``method`` with ``args``; sends back the return value.

    Method calls matter to the checkers: an atomic method invoked from a
    non-transactional context starts a regular transaction.
    """

    method: str
    args: Tuple[Any, ...] = field(default=())


@dataclass(frozen=True)
class Fork:
    """Start a new thread running ``method``.

    The parent performs a release-like synchronization on the new
    thread's thread object and the child performs a matching
    acquire-like one before its first operation, mirroring the
    happens-before semantics of ``Thread.start()``.
    """

    thread_name: str
    method: str
    args: Tuple[Any, ...] = field(default=())


@dataclass(frozen=True)
class Join:
    """Block until the named thread finishes (``Thread.join()``)."""

    thread_name: str


@dataclass(frozen=True)
class Compute:
    """Thread-local computation; consumes ``cost`` scheduler steps."""

    cost: int = 1


MemoryOp = (Read, Write, ArrayRead, ArrayWrite)
SyncOp = (Acquire, Release, Wait, Notify)
Operation = (
    Read,
    Write,
    ArrayRead,
    ArrayWrite,
    New,
    NewArray,
    Acquire,
    Release,
    Wait,
    Notify,
    Invoke,
    Fork,
    Join,
    Compute,
)
