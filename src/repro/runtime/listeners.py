"""Listener interface connecting analyses to the executor.

Listeners play the role the paper's compiler-inserted instrumentation
plays in Jikes RVM: :meth:`ExecutionListener.on_access` is the barrier
invoked before each program access (and each synchronization
pseudo-access), and the method/thread lifecycle hooks drive transaction
demarcation.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.runtime.events import AccessEvent


class ExecutionListener:
    """Callbacks dispatched by the executor; override what you need."""

    def on_thread_start(self, thread_name: str) -> None:
        """A thread began executing (before its first operation)."""

    def on_thread_end(self, thread_name: str) -> None:
        """A thread finished (after its last operation)."""

    def on_method_enter(self, thread_name: str, method: str, depth: int) -> None:
        """A method was entered on ``thread_name`` at call ``depth``."""

    def on_method_exit(self, thread_name: str, method: str, depth: int) -> None:
        """A method returned on ``thread_name``."""

    def on_access(self, event: AccessEvent) -> None:
        """Barrier: invoked immediately before the access takes effect."""

    def access_barrier(self) -> Callable[[AccessEvent], None]:
        """The callable the executor dispatches per access.

        Defaults to the listener's bound :meth:`on_access`.  A listener
        that fuses several per-access steps into one specialized
        closure (ICD fuses the Octet state check with its logging)
        overrides this to return that closure; the pipeline calls it
        whenever it rebinds its dispatch.
        """
        return self.on_access

    def access_barrier_batch(self) -> Optional[Callable[..., None]]:
        """A columnar barrier for the batch executor, or ``None``.

        When the batch executor runs a lowered frame it already holds
        every piece of an access as pre-interned column values — so a
        listener may return a callable of signature ``(seq,
        thread_name, obj, fieldname, kind, site, address, site_str,
        is_array)`` that consumes those directly, skipping the
        per-access :class:`AccessEvent` allocation entirely.  Returning
        ``None`` (the default) makes the executor wrap the columns into
        events and dispatch :meth:`access_barrier` as usual, so the
        batch barrier is purely an optimization seam: outputs must be
        byte-identical either way.
        """
        return None

    def on_thread_blocked(self, thread_name: str) -> None:
        """``thread_name`` left the runnable set (lock/wait/join).

        Not fired for thread completion — :meth:`on_thread_end` already
        covers that transition.
        """

    def on_thread_unblocked(self, thread_name: str) -> None:
        """``thread_name`` re-entered the runnable set."""

    def on_execution_end(self) -> None:
        """The whole program finished; flush any pending analysis work."""


def _discard_access(event: AccessEvent) -> None:
    """No-listener fast path: the access barrier is a no-op."""


class ListenerPipeline(ExecutionListener):
    """Dispatch events to an ordered list of listeners.

    Order matters exactly as barrier order matters in the paper: ICD's
    logging instrumentation runs *after* Octet's barrier, which the
    pipeline realizes by registering Octet before ICD's logger.

    ``on_access`` is the hot path — it fires once per dynamic access —
    so the pipeline pre-binds it per instance: with zero listeners it
    is a no-op, with exactly one listener it is that listener's *fused*
    access barrier (:meth:`ExecutionListener.access_barrier` — no loop,
    no indirection, and for ICD no two-stage Octet+logging dispatch),
    and only with two or more does it fan out over each listener's
    barrier.  :meth:`add` rebinds, so the fast path stays correct if
    listeners are attached after construction.
    """

    def __init__(self, listeners: Iterable[ExecutionListener] = ()) -> None:
        self.listeners: List[ExecutionListener] = list(listeners)
        self._rebind_access()

    def add(self, listener: ExecutionListener) -> None:
        self.listeners.append(listener)
        self._rebind_access()

    def _rebind_access(self) -> None:
        # shadow the class-level method with the cheapest correct callable
        if not self.listeners:
            self.on_access = _discard_access  # type: ignore[method-assign]
        elif len(self.listeners) == 1:
            self.on_access = self.listeners[0].access_barrier()  # type: ignore[method-assign]
        else:
            self._access_barriers = [
                listener.access_barrier() for listener in self.listeners
            ]
            self.on_access = self._fan_out_access  # type: ignore[method-assign]

    def on_thread_start(self, thread_name: str) -> None:
        for listener in self.listeners:
            listener.on_thread_start(thread_name)

    def on_thread_end(self, thread_name: str) -> None:
        for listener in self.listeners:
            listener.on_thread_end(thread_name)

    def on_method_enter(self, thread_name: str, method: str, depth: int) -> None:
        for listener in self.listeners:
            listener.on_method_enter(thread_name, method, depth)

    def on_method_exit(self, thread_name: str, method: str, depth: int) -> None:
        for listener in self.listeners:
            listener.on_method_exit(thread_name, method, depth)

    def on_access(self, event: AccessEvent) -> None:  # pragma: no cover
        # overridden per instance by _rebind_access; kept for the
        # ExecutionListener interface contract
        for listener in self.listeners:
            listener.on_access(event)

    def _fan_out_access(self, event: AccessEvent) -> None:
        for barrier in self._access_barriers:
            barrier(event)

    def on_thread_blocked(self, thread_name: str) -> None:
        for listener in self.listeners:
            listener.on_thread_blocked(thread_name)

    def on_thread_unblocked(self, thread_name: str) -> None:
        for listener in self.listeners:
            listener.on_thread_unblocked(thread_name)

    def on_execution_end(self) -> None:
        for listener in self.listeners:
            listener.on_execution_end()


__all__ = ["ExecutionListener", "ListenerPipeline"]
