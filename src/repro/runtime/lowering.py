"""Lowering scriptable method bodies into flat columnar op arrays.

The executor's reference interpreter drives generator-function method
bodies one ``yield`` at a time: every simulated instruction costs a
``gen.send``, a frozen op-dataclass allocation, a handler-dict
dispatch, a :class:`~repro.runtime.events.Site` construction, and an
:class:`~repro.runtime.events.AccessEvent` allocation.  For bodies
whose op stream is *statically known* — no data-dependent control flow
— all of that can be precomputed once.

**Script IR.**  A scriptable body is declared as a *script function*
``script_fn(ctx, *args) -> list`` returning a flat list of op tuples:

======================================  =================================
``("read", obj, field, dst)``           field read; ``dst`` names the
                                        register receiving the value
                                        (``None`` discards it)
``("write", obj, field, vexpr)``        field write
``("aread", arr, index, dst)``          array-element read
``("awrite", arr, index, vexpr)``       array-element write
``("acquire", obj)``                    monitor acquire
``("release", obj)``                    monitor release
``("notify", obj, wake_all)``           notify / notify-all
``("compute", cost)``                   local compute steps
``("invoke", method, args)``            synchronous call
``("fork", name, method, args)``        thread fork
``("join", name)``                      thread join
======================================  =================================

Value expressions ``vexpr`` are ``("const", v)``, ``("inc", reg,
delta)`` — evaluating ``(reg_value or 0) + delta``, the idiomatic
read-modify-write increment — or ``("reg", reg)``.  Registers are
arbitrary strings scoped to one body activation.

The same script is the **single source of truth for both executor
arms**: :func:`script_body` wraps it into an ordinary generator body
(interpreting the tuples op by op — what the reference arm runs) and
tags it with the script function, which the batch executor lowers via
:func:`lower_script` into a :class:`LoweredBody`.  Byte-identical op
streams across arms hold by construction.  Bodies with data-dependent
control flow (branch on a read value, value-derived field names) stay
plain generators and run on the reference path even in batch mode.

**Column layout.**  A :class:`LoweredBody` stores one entry per op in
parallel arrays — ``array('b')`` op-codes and ``array('i')`` columns
for oid, field id, array index, lock id, site id, destination/value
registers — plus interned side tables for field names,
:class:`~repro.runtime.events.Site` objects (shared with the reference
interpreter via :func:`~repro.runtime.events.intern_site`), site
strings, and ``(oid, field)`` address tuples.  This columnar form is
the serialization contract for the sharded-analysis roadmap items; the
object-reference caches (``objs``) exist only because a running
executor needs the live heap objects, not just their ids.

``DOUBLECHECKER_BATCH_EXECUTOR=0`` disables lowering entirely (same
escape-hatch pattern as ``DOUBLECHECKER_BARRIER_FASTPATH``), keeping
the reference interpreter as a permanently exercised arm.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ProgramError
from repro.runtime.events import Site, intern_site
from repro.runtime.ops import (
    Acquire,
    ArrayRead,
    ArrayWrite,
    Compute,
    Fork,
    Invoke,
    Join,
    Notify,
    Read,
    Release,
    Write,
)

#: escape hatch disabling the batch interpreter: the identity tests run
#: with it set to ``0`` to pin the lowered pipeline against the
#: reference generator-driven one
BATCH_ENV = "DOUBLECHECKER_BATCH_EXECUTOR"


def batch_executor_enabled() -> bool:
    """Whether the batch executor is enabled (default: yes)."""
    return os.environ.get(BATCH_ENV, "").strip().lower() not in (
        "0", "false", "off",
    )


# ----------------------------------------------------------------------
# the script-derived reference body
# ----------------------------------------------------------------------
def script_body(script_fn: Callable[..., List[tuple]]) -> Callable[..., Any]:
    """Wrap a script function into a generator method body.

    The returned body interprets the script tuples exactly like a
    hand-written generator would, so registering it with
    :meth:`~repro.runtime.program.Program.method` changes nothing
    observable.  The attached ``_dc_script_fn`` tag is what the batch
    executor lowers.
    """

    def body(ctx, *args):
        return _run_script(script_fn(ctx, *args))

    body._dc_script_fn = script_fn
    body.__name__ = getattr(script_fn, "__name__", "script_body")
    return body


def _eval_value(vexpr: tuple, regs: Dict[str, Any]) -> Any:
    kind = vexpr[0]
    if kind == "const":
        return vexpr[1]
    if kind == "inc":
        return (regs.get(vexpr[1]) or 0) + vexpr[2]
    if kind == "reg":
        return regs.get(vexpr[1])
    raise ProgramError(f"unknown script value expression {vexpr!r}")


def _run_script(script: List[tuple]):
    """Generator interpreting script tuples (the reference arm)."""
    regs: Dict[str, Any] = {}
    for op in script:
        code = op[0]
        if code == "read":
            value = yield Read(op[1], op[2])
            if op[3] is not None:
                regs[op[3]] = value
        elif code == "write":
            yield Write(op[1], op[2], _eval_value(op[3], regs))
        elif code == "aread":
            value = yield ArrayRead(op[1], op[2])
            if op[3] is not None:
                regs[op[3]] = value
        elif code == "awrite":
            yield ArrayWrite(op[1], op[2], _eval_value(op[3], regs))
        elif code == "compute":
            yield Compute(op[1])
        elif code == "invoke":
            yield Invoke(op[1], tuple(op[2]))
        elif code == "acquire":
            yield Acquire(op[1])
        elif code == "release":
            yield Release(op[1])
        elif code == "fork":
            yield Fork(op[1], op[2], tuple(op[3]))
        elif code == "join":
            yield Join(op[1])
        elif code == "notify":
            yield Notify(op[1], op[2])
        else:
            raise ProgramError(f"unknown script op {op!r}")


# ----------------------------------------------------------------------
# the lowered columnar form
# ----------------------------------------------------------------------
OP_READ = 0
OP_WRITE = 1
OP_AREAD = 2
OP_AWRITE = 3
OP_COMPUTE = 4
OP_CONTROL = 5

VAL_CONST = 0
VAL_INC = 1
VAL_REG = 2

_ACCESS_CODES = {
    "read": OP_READ,
    "write": OP_WRITE,
    "aread": OP_AREAD,
    "awrite": OP_AWRITE,
}


class LoweredBody:
    """One scriptable body activation, compiled to parallel columns.

    The canonical columnar form (``codes`` .. ``site_ids`` plus the
    side tables) is self-contained given a heap; the remaining
    attributes are per-pc caches derived from it so the batch
    interpreter runs on direct references without per-step table
    indirection.
    """

    __slots__ = (
        "method",
        "length",
        # canonical int columns (one entry per op; -1 where n/a)
        "codes",          # array('b'): OP_* op-codes
        "oids",           # array('i'): accessed/locked object id
        "field_ids",      # array('i'): index into field_table
        "array_indices",  # array('i'): array element index
        "lock_ids",       # array('i'): monitor object id
        "site_ids",       # array('i'): index into site_table
        "dst_regs",       # array('i'): destination register (-1 discards)
        "val_modes",      # array('b'): VAL_* for write/awrite values
        "val_regs",       # array('i'): source register for INC/REG
        # interned side tables
        "field_table",    # list[str]
        "site_table",     # list[Site] (canonical intern_site instances)
        "site_str_table", # list[str] (str(site), pre-interned for logs)
        "address_table",  # list[(oid, field)] (one tuple per field)
        # derived per-pc execution caches
        "objs",           # heap object (or None for compute/control)
        "fields",         # fieldname str (array ops: "[i]")
        "sites",          # Site per pc
        "site_strs",      # str(site) per pc
        "addresses",      # interned (oid, field) per pc
        "val_consts",     # const value / INC delta / compute cost
        "control_ops",    # prebuilt frozen op instance for OP_CONTROL
        "nregs",
    )

    def __init__(self, method: str, length: int) -> None:
        self.method = method
        self.length = length
        self.codes = array("b", bytes(length))
        self.oids = array("i", [-1] * length)
        self.field_ids = array("i", [-1] * length)
        self.array_indices = array("i", [-1] * length)
        self.lock_ids = array("i", [-1] * length)
        self.site_ids = array("i", [0] * length)
        self.dst_regs = array("i", [-1] * length)
        self.val_modes = array("b", bytes(length))
        self.val_regs = array("i", [-1] * length)
        self.field_table: List[str] = []
        self.site_table: List[Site] = []
        self.site_str_table: List[str] = []
        self.address_table: List[Tuple[int, str]] = []
        self.objs: List[Any] = [None] * length
        self.fields: List[Optional[str]] = [None] * length
        self.sites: List[Site] = [None] * length  # type: ignore[list-item]
        self.site_strs: List[str] = [None] * length  # type: ignore[list-item]
        self.addresses: List[Optional[Tuple[int, str]]] = [None] * length
        self.val_consts: List[Any] = [None] * length
        self.control_ops: List[Any] = [None] * length
        self.nregs = 0


def lower_script(
    script: List[tuple],
    method: str,
    addr_intern: Dict[Tuple[int, str], Tuple[int, str]],
) -> LoweredBody:
    """Compile one script activation into a :class:`LoweredBody`.

    ``addr_intern`` is the executor-wide ``(oid, field)`` intern table:
    every lowered body of one executor shares address tuples, exactly
    like ICD's logging path interns the addresses it builds (identity
    differs across the two tables, but all comparisons are by value).
    """
    body = LoweredBody(method, len(script))
    regs: Dict[str, int] = {}
    field_ids: Dict[str, int] = {}
    table_addresses: set = set()

    def reg_id(name: str) -> int:
        rid = regs.get(name)
        if rid is None:
            rid = regs[name] = len(regs)
        return rid

    def set_value(pc: int, vexpr: tuple) -> None:
        kind = vexpr[0]
        if kind == "const":
            body.val_modes[pc] = VAL_CONST
            body.val_consts[pc] = vexpr[1]
        elif kind == "inc":
            body.val_modes[pc] = VAL_INC
            body.val_regs[pc] = reg_id(vexpr[1])
            body.val_consts[pc] = vexpr[2]
        elif kind == "reg":
            body.val_modes[pc] = VAL_REG
            body.val_regs[pc] = reg_id(vexpr[1])
        else:
            raise ProgramError(
                f"unknown script value expression {vexpr!r} in {method}"
            )

    # hot compile loop: worker bodies run to tens of thousands of ops,
    # so the per-op column stores all go through locals
    b_codes = body.codes
    b_oids = body.oids
    b_objs = body.objs
    b_field_ids = body.field_ids
    b_fields = body.fields
    b_array_indices = body.array_indices
    b_addresses = body.addresses
    b_dst_regs = body.dst_regs
    b_site_ids = body.site_ids
    b_sites = body.sites
    b_site_strs = body.site_strs
    site_table_append = body.site_table.append
    site_str_table_append = body.site_str_table.append
    field_table = body.field_table
    address_table_append = body.address_table.append
    intern_addr = addr_intern.setdefault
    access_codes = _ACCESS_CODES
    for pc, op in enumerate(script):
        code = op[0]
        # sites are (method, pc): unique per op, so the site table is
        # indexed by pc directly (no dedupe pass needed)
        site = intern_site(method, pc)
        site_str = f"{method}@{pc}"
        b_site_ids[pc] = pc
        site_table_append(site)
        site_str_table_append(site_str)
        b_sites[pc] = site
        b_site_strs[pc] = site_str

        opcode = access_codes.get(code)
        if opcode is not None:
            b_codes[pc] = opcode
            obj = op[1]
            b_objs[pc] = obj
            oid = obj.oid
            b_oids[pc] = oid
            if opcode <= OP_WRITE:
                fieldname = op[2]
            else:
                index = op[2]
                b_array_indices[pc] = index
                fieldname = f"[{index}]"
            fid = field_ids.get(fieldname)
            if fid is None:
                fid = field_ids[fieldname] = len(field_table)
                field_table.append(fieldname)
            b_field_ids[pc] = fid
            b_fields[pc] = fieldname
            address = (oid, fieldname)
            address = intern_addr(address, address)
            b_addresses[pc] = address
            if address not in table_addresses:
                table_addresses.add(address)
                address_table_append(address)
            if opcode == OP_READ or opcode == OP_AREAD:
                b_dst_regs[pc] = -1 if op[3] is None else reg_id(op[3])
            else:
                set_value(pc, op[3])
        elif code == "compute":
            body.codes[pc] = OP_COMPUTE
            body.val_consts[pc] = op[1]
        elif code == "acquire":
            body.codes[pc] = OP_CONTROL
            body.oids[pc] = body.lock_ids[pc] = op[1].oid
            body.control_ops[pc] = Acquire(op[1])
        elif code == "release":
            body.codes[pc] = OP_CONTROL
            body.oids[pc] = body.lock_ids[pc] = op[1].oid
            body.control_ops[pc] = Release(op[1])
        elif code == "notify":
            body.codes[pc] = OP_CONTROL
            body.oids[pc] = body.lock_ids[pc] = op[1].oid
            body.control_ops[pc] = Notify(op[1], op[2])
        elif code == "invoke":
            body.codes[pc] = OP_CONTROL
            body.control_ops[pc] = Invoke(op[1], tuple(op[2]))
        elif code == "fork":
            body.codes[pc] = OP_CONTROL
            body.control_ops[pc] = Fork(op[1], op[2], tuple(op[3]))
        elif code == "join":
            body.codes[pc] = OP_CONTROL
            body.control_ops[pc] = Join(op[1])
        else:
            raise ProgramError(f"unknown script op {op!r} in {method}")

    body.nregs = len(regs)
    return body


__all__ = [
    "BATCH_ENV",
    "LoweredBody",
    "OP_AREAD",
    "OP_AWRITE",
    "OP_COMPUTE",
    "OP_CONTROL",
    "OP_READ",
    "OP_WRITE",
    "VAL_CONST",
    "VAL_INC",
    "VAL_REG",
    "batch_executor_enabled",
    "lower_script",
    "script_body",
]
