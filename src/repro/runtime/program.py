"""Program model: methods, thread entry points, and the body context.

A :class:`Program` is a set of named methods plus the threads that
start executing when the program launches (additional threads may be
forked at run time).  Method bodies are generator functions taking a
:class:`BodyContext` plus the ``Invoke``/``Fork`` arguments and
yielding :mod:`repro.runtime.ops` operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ProgramError
from repro.runtime.heap import Heap, SharedArray, SharedObject

BodyFn = Callable[..., Any]


@dataclass(frozen=True)
class MethodDef:
    """A named method.

    Attributes:
        name: unique method name; also the static transaction identity.
        body: generator function ``body(ctx, *args)``.
        interrupting: true for methods containing interrupting calls
            (``wait``/``notify``/...); iterative refinement never places
            these in the atomicity specification (Section 5.1).
    """

    name: str
    body: BodyFn
    interrupting: bool = False


@dataclass(frozen=True)
class ThreadSpec:
    """A thread started at program launch."""

    name: str
    method: str
    args: Tuple[Any, ...] = field(default=())


class BodyContext:
    """Per-program services available to method bodies.

    Bodies receive the context as their first argument and may use it to
    look up globals registered with :meth:`Program.add_global` or to
    reach the heap for pre-allocated structures.  All *shared-memory*
    interaction still goes through yielded operations; the context only
    hands out references.
    """

    def __init__(self, heap: Heap, globals_: Dict[str, Any]) -> None:
        self._heap = heap
        self._globals = globals_

    def __getattr__(self, name: str) -> Any:
        try:
            return self._globals[name]
        except KeyError:
            raise AttributeError(
                f"program has no global named {name!r}; "
                f"known globals: {sorted(self._globals)}"
            ) from None

    @property
    def heap(self) -> Heap:
        return self._heap

    def global_names(self) -> List[str]:
        """Names of all registered globals."""
        return sorted(self._globals)


class Program:
    """A simulated multithreaded program.

    Example::

        program = Program("counter-demo")
        counter = program.add_global_object("counter")

        @program.method
        def increment(ctx):
            value = yield Read(counter, "value")
            yield Write(counter, "value", value + 1)

        @program.method
        def worker(ctx):
            for _ in range(10):
                yield Invoke("increment")

        program.add_thread("T1", "worker")
        program.add_thread("T2", "worker")
    """

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.heap = Heap()
        self.methods: Dict[str, MethodDef] = {}
        self.threads: List[ThreadSpec] = []
        self._globals: Dict[str, Any] = {}
        self._extra_entry_methods: set[str] = set()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def method(self, fn: Optional[BodyFn] = None, *, name: Optional[str] = None,
               interrupting: bool = False) -> Any:
        """Register a method; usable as a decorator.

        ``interrupting`` marks methods excluded from initial atomicity
        specifications (they call ``wait``/``notify`` etc.).
        """
        def register(body: BodyFn) -> BodyFn:
            method_name = name or body.__name__
            self.add_method(MethodDef(method_name, body, interrupting=interrupting))
            return body

        if fn is not None:
            return register(fn)
        return register

    def add_method(self, definition: MethodDef) -> None:
        """Register a :class:`MethodDef`; names must be unique."""
        if definition.name in self.methods:
            raise ProgramError(f"duplicate method name: {definition.name!r}")
        self.methods[definition.name] = definition

    def add_thread(self, name: str, method: str, args: Tuple[Any, ...] = ()) -> None:
        """Add a thread started at launch, running ``method(*args)``."""
        if any(t.name == name for t in self.threads):
            raise ProgramError(f"duplicate thread name: {name!r}")
        self.threads.append(ThreadSpec(name, method, args))

    def add_global(self, name: str, value: Any) -> Any:
        """Register an arbitrary global reachable as ``ctx.<name>``."""
        if name in self._globals:
            raise ProgramError(f"duplicate global name: {name!r}")
        self._globals[name] = value
        return value

    def add_global_object(self, name: str) -> SharedObject:
        """Allocate a shared object and register it as a global."""
        return self.add_global(name, self.heap.alloc(name))

    def add_global_array(self, name: str, length: int, fill: Any = 0) -> SharedArray:
        """Allocate a shared array and register it as a global."""
        return self.add_global(name, self.heap.alloc_array(name, length, fill))

    def add_global_objects(self, prefix: str, count: int) -> List[SharedObject]:
        """Allocate ``count`` objects named ``<prefix>0..`` and register the list."""
        objs = [self.heap.alloc(f"{prefix}{i}") for i in range(count)]
        self.add_global(prefix, objs)
        return objs

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lookup(self, method: str) -> MethodDef:
        """Return the definition of ``method`` or raise ProgramError."""
        try:
            return self.methods[method]
        except KeyError:
            raise ProgramError(f"unknown method: {method!r}") from None

    def method_names(self) -> List[str]:
        """All registered method names, sorted."""
        return sorted(self.methods)

    def mark_entry(self, method: str) -> None:
        """Mark ``method`` as a thread entry point (e.g., a fork target).

        Entry methods are the analogues of ``main()``/``Thread.run()``
        and are excluded from initial atomicity specifications.
        """
        self._extra_entry_methods.add(method)

    def entry_methods(self) -> List[str]:
        """Methods used as thread entry points (launch or fork targets)."""
        launch = {t.method for t in self.threads}
        return sorted(launch | self._extra_entry_methods)

    def interrupting_methods(self) -> List[str]:
        """Methods flagged as containing interrupting calls."""
        return sorted(m.name for m in self.methods.values() if m.interrupting)

    def make_context(self) -> BodyContext:
        """Build the :class:`BodyContext` passed to every body."""
        return BodyContext(self.heap, dict(self._globals))

    def validate(self) -> None:
        """Check that every thread entry point exists."""
        for spec in self.threads:
            if spec.method not in self.methods:
                raise ProgramError(
                    f"thread {spec.name!r} starts at unknown method {spec.method!r}"
                )
        if not self.threads:
            raise ProgramError("program has no threads")
