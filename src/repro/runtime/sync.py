"""Monitor (lock) table with wait sets.

Monitors are reentrant, as in Java.  Threads blocked on a monitor are
woken (made runnable) when it is released and race to re-acquire it
when next scheduled, which models real contention: a woken thread can
lose the monitor to a third thread and re-block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ProgramError
from repro.runtime.heap import SharedObject


@dataclass
class MonitorState:
    """Run-time state of one object's monitor."""

    owner: Optional[str] = None
    depth: int = 0
    wait_set: Set[str] = field(default_factory=set)


class LockTable:
    """Tracks monitor ownership and wait sets for all objects."""

    def __init__(self) -> None:
        self._monitors: Dict[int, MonitorState] = {}

    def _monitor(self, obj: SharedObject) -> MonitorState:
        state = self._monitors.get(obj.oid)
        if state is None:
            state = MonitorState()
            self._monitors[obj.oid] = state
        return state

    # ------------------------------------------------------------------
    def try_acquire(self, thread_name: str, obj: SharedObject, depth: int = 1) -> bool:
        """Attempt to acquire; returns True on success.

        ``depth`` > 1 restores a saved re-entry depth after ``wait``.
        """
        state = self._monitor(obj)
        if state.owner is None:
            state.owner = thread_name
            state.depth = depth
            return True
        if state.owner == thread_name:
            state.depth += depth
            return True
        return False

    def release(self, thread_name: str, obj: SharedObject) -> bool:
        """Release one level of re-entry; returns True when fully freed."""
        state = self._monitor(obj)
        if state.owner != thread_name:
            raise ProgramError(
                f"thread {thread_name!r} released monitor of {obj.label!r} "
                f"owned by {state.owner!r}"
            )
        state.depth -= 1
        if state.depth == 0:
            state.owner = None
            return True
        return False

    def release_fully(self, thread_name: str, obj: SharedObject) -> int:
        """Release all re-entry levels (for ``wait``); returns the depth."""
        state = self._monitor(obj)
        if state.owner != thread_name:
            raise ProgramError(
                f"thread {thread_name!r} waited on monitor of {obj.label!r} "
                f"owned by {state.owner!r}"
            )
        depth = state.depth
        state.owner = None
        state.depth = 0
        return depth

    def owner_of(self, obj: SharedObject) -> Optional[str]:
        state = self._monitors.get(obj.oid)
        return state.owner if state else None

    def require_owner(self, thread_name: str, obj: SharedObject, action: str) -> None:
        """Raise unless ``thread_name`` owns the monitor (for wait/notify)."""
        if self.owner_of(obj) != thread_name:
            raise ProgramError(
                f"thread {thread_name!r} called {action} on {obj.label!r} "
                f"without owning its monitor"
            )

    # ------------------------------------------------------------------
    def add_waiter(self, thread_name: str, obj: SharedObject) -> None:
        self._monitor(obj).wait_set.add(thread_name)

    def notify(self, obj: SharedObject, wake_all: bool) -> List[str]:
        """Remove and return notified threads (deterministic order)."""
        state = self._monitor(obj)
        if not state.wait_set:
            return []
        ordered = sorted(state.wait_set)
        woken = ordered if wake_all else ordered[:1]
        for name in woken:
            state.wait_set.discard(name)
        return woken

    def waiters(self, obj: SharedObject) -> List[str]:
        return sorted(self._monitor(obj).wait_set)
