"""Virtual thread state for the executor."""

from __future__ import annotations

import enum
from typing import Any, Generator, List, Optional

from repro.runtime.heap import SharedObject


class ThreadState(enum.Enum):
    """Lifecycle states of a simulated thread.

    ``BLOCKED_LOCK``/``WAITING``/``BLOCKED_JOIN`` matter to Octet's
    coordination protocol: a conflicting transition against a blocked
    responder uses the *implicit* protocol (Section 3.2.1).
    """

    RUNNABLE = "runnable"
    BLOCKED_LOCK = "blocked-lock"
    WAITING = "waiting"
    BLOCKED_JOIN = "blocked-join"
    FINISHED = "finished"


class VThread:
    """A simulated thread: a call stack of generators plus blocking state."""

    def __init__(self, name: str, tid: int, thread_obj: SharedObject) -> None:
        self.name = name
        self.tid = tid
        #: heap object standing in for the java.lang.Thread instance;
        #: fork/join synchronization is expressed as accesses to it.
        self.thread_obj = thread_obj
        self.state = ThreadState.RUNNABLE
        #: stack of (method-name, generator) frames
        self.frames: List[tuple[str, Generator[Any, Any, Any]]] = []
        #: value to send into the top generator on the next step
        self.pending_value: Any = None
        #: per-frame operation ordinals, for Site construction
        self.op_counters: List[int] = []
        #: object whose monitor this thread is blocked on (if any)
        self.blocked_on: Optional[SharedObject] = None
        #: thread name this thread is joining (if any)
        self.joining: Optional[str] = None
        #: lock re-entry depth to restore after wait()
        self.saved_lock_depth: int = 0
        #: number of Compute steps still to burn
        self.compute_remaining: int = 0
        #: true once the fork-synchronization read has been emitted
        self.started: bool = False

    # ------------------------------------------------------------------
    def is_live(self) -> bool:
        return self.state is not ThreadState.FINISHED

    def is_runnable(self) -> bool:
        return self.state is ThreadState.RUNNABLE

    def is_blocked(self) -> bool:
        """True when Octet would use the implicit coordination protocol."""
        return self.state in (
            ThreadState.BLOCKED_LOCK,
            ThreadState.WAITING,
            ThreadState.BLOCKED_JOIN,
        )

    def current_method(self) -> str:
        """Name of the method on top of the call stack."""
        if not self.frames:
            return "<none>"
        return self.frames[-1][0]

    def push_frame(self, method: str, gen: Generator[Any, Any, Any]) -> None:
        self.frames.append((method, gen))
        self.op_counters.append(0)

    def pop_frame(self) -> str:
        method, _gen = self.frames.pop()
        self.op_counters.pop()
        return method

    def next_op_index(self) -> int:
        """Advance and return the op ordinal within the current frame."""
        index = self.op_counters[-1]
        self.op_counters[-1] = index + 1
        return index

    def call_depth(self) -> int:
        return len(self.frames)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VThread {self.name} {self.state.value} depth={len(self.frames)}>"
