"""Deterministic multithreaded-program interpreter.

This package is the substrate that replaces Jikes RVM in the paper's
setting.  Simulated programs are written as Python generator functions
that yield :mod:`repro.runtime.ops` operations; the
:class:`~repro.runtime.executor.Executor` interleaves the program's
threads one operation at a time under a pluggable, seeded
:mod:`~repro.runtime.scheduler`, applies the operation's semantics
(heap mutation, lock acquisition, thread lifecycle), and dispatches
events to attached :class:`~repro.runtime.listeners.ExecutionListener`
instances.  The dynamic analyses (Octet/ICD/PCD, Velodrome) attach as
listeners, exactly the way their JVM counterparts attach as compiler-
inserted barriers.
"""

from repro.runtime.events import AccessEvent, AccessKind, Site
from repro.runtime.executor import ExecutionResult, Executor
from repro.runtime.heap import Heap, SharedArray, SharedObject
from repro.runtime.listeners import ExecutionListener
from repro.runtime.ops import (
    Acquire,
    ArrayRead,
    ArrayWrite,
    Compute,
    Fork,
    Invoke,
    Join,
    New,
    NewArray,
    Notify,
    Read,
    Release,
    Wait,
    Write,
)
from repro.runtime.program import MethodDef, Program, ThreadSpec
from repro.runtime.scheduler import (
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    ScriptedScheduler,
)

__all__ = [
    "AccessEvent",
    "AccessKind",
    "Acquire",
    "ArrayRead",
    "ArrayWrite",
    "Compute",
    "ExecutionListener",
    "ExecutionResult",
    "Executor",
    "Fork",
    "Heap",
    "Invoke",
    "Join",
    "MethodDef",
    "New",
    "NewArray",
    "Notify",
    "Program",
    "RandomScheduler",
    "Read",
    "Release",
    "RoundRobinScheduler",
    "Scheduler",
    "ScriptedScheduler",
    "SharedArray",
    "SharedObject",
    "Site",
    "ThreadSpec",
    "Wait",
    "Write",
]
