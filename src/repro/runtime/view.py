"""Read-only views of executor state for analyses.

Octet's coordination protocol needs two facts about the world the
analyses cannot derive from access events alone: whether a thread is
currently blocked (explicit vs implicit protocol) and which threads
are live (responders for RdSh→WrEx transitions).  Analyses receive a
:class:`RuntimeView`; binding an :class:`ExecutorView` is optional —
unit tests drive analyses with the :class:`NullView` default.
"""

from __future__ import annotations

from typing import List


class RuntimeView:
    """Interface: what analyses may observe about the runtime."""

    def is_thread_blocked(self, thread_name: str) -> bool:
        """Is the thread at a blocking operation (lock/wait/join)?"""
        raise NotImplementedError

    def holds_any_lock(self, thread_name: str) -> bool:
        """Does the thread own at least one monitor?"""
        raise NotImplementedError


class NullView(RuntimeView):
    """Default view: nobody is ever blocked, nobody holds locks."""

    def is_thread_blocked(self, thread_name: str) -> bool:
        return False

    def holds_any_lock(self, thread_name: str) -> bool:
        return False


class ExecutorView(RuntimeView):
    """Live view over a running :class:`~repro.runtime.executor.Executor`."""

    def __init__(self, executor) -> None:  # type: ignore[no-untyped-def]
        self._executor = executor

    def is_thread_blocked(self, thread_name: str) -> bool:
        thread = self._executor.threads.get(thread_name)
        return thread is not None and thread.is_blocked()

    def holds_any_lock(self, thread_name: str) -> bool:
        monitors = self._executor.locks._monitors
        return any(m.owner == thread_name for m in monitors.values())


__all__ = ["ExecutorView", "NullView", "RuntimeView"]
