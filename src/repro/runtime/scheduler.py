"""Thread schedulers.

The scheduler is the reproduction's stand-in for OS/JVM scheduling
nondeterminism.  Each step the executor asks the scheduler to choose
among the runnable threads.  Seeded :class:`RandomScheduler` instances
model run-to-run interleaving variation (different seeds ~ different
trials in the paper's methodology); :class:`ScriptedScheduler` replays
an exact interleaving (used to reproduce Figure 3's example);
:class:`RoundRobinScheduler` provides a cheap deterministic default.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import SchedulerError


class Scheduler:
    """Base class: choose the next thread to run."""

    def choose(self, runnable: Sequence[str], step: int) -> str:
        """Return the name of the thread to step next.

        ``runnable`` is sorted by thread name and never empty.  The
        executor maintains it incrementally and passes the *same*
        sequence object every step, so implementations must neither
        mutate it nor hold a reference to it across calls.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Reset internal state so the scheduler can drive a fresh run."""


class RoundRobinScheduler(Scheduler):
    """Rotate among runnable threads with a fixed quantum.

    A quantum of ``k`` runs a thread for up to ``k`` consecutive
    operations before preferring the next thread, yielding coarse
    deterministic interleavings.
    """

    def __init__(self, quantum: int = 1) -> None:
        if quantum < 1:
            raise SchedulerError(f"quantum must be >= 1, got {quantum}")
        self.quantum = quantum
        self._current: Optional[str] = None
        self._used = 0

    def choose(self, runnable: Sequence[str], step: int) -> str:
        if self._current in runnable and self._used < self.quantum:
            self._used += 1
            return self._current
        if self._current in runnable:
            # rotate to the thread after the current one
            index = (runnable.index(self._current) + 1) % len(runnable)
        else:
            index = step % len(runnable)
        self._current = runnable[index]
        self._used = 1
        return self._current

    def reset(self) -> None:
        self._current = None
        self._used = 0


class RandomScheduler(Scheduler):
    """Seeded random scheduler with a context-switch bias.

    With probability ``1 - switch_prob`` the previously running thread
    keeps running (if still runnable); otherwise a uniformly random
    runnable thread is chosen.  Lower ``switch_prob`` produces longer
    uninterrupted bursts, which matters for atomicity checking: very
    frequent switching makes interleavings (and hence violations) more
    likely, mimicking a heavily loaded machine.
    """

    def __init__(self, seed: int = 0, switch_prob: float = 0.3) -> None:
        if not 0.0 <= switch_prob <= 1.0:
            raise SchedulerError(f"switch_prob must be in [0, 1], got {switch_prob}")
        self.seed = seed
        self.switch_prob = switch_prob
        self._rng = random.Random(seed)
        # choose() runs once per executor step; bind the RNG methods
        # once per (re)seed instead of resolving them on every call
        self._random = self._rng.random
        self._randrange = self._rng.randrange
        self._current: Optional[str] = None

    def choose(self, runnable: Sequence[str], step: int) -> str:
        if (
            self._current in runnable
            and self._random() >= self.switch_prob
        ):
            return self._current
        self._current = runnable[self._randrange(len(runnable))]
        return self._current

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._random = self._rng.random
        self._randrange = self._rng.randrange
        self._current = None


class ScriptedScheduler(Scheduler):
    """Replay an explicit schedule; fall back to round-robin when exhausted.

    The script is a sequence of thread names.  Entries naming threads
    that are not currently runnable are skipped (they would deadlock the
    replay otherwise); this makes hand-written scripts robust to the
    exact number of operations a body performs.
    """

    def __init__(self, script: Sequence[str]) -> None:
        self.script = list(script)
        self._pos = 0
        self._fallback = RoundRobinScheduler()

    def choose(self, runnable: Sequence[str], step: int) -> str:
        while self._pos < len(self.script):
            candidate = self.script[self._pos]
            self._pos += 1
            if candidate in runnable:
                return candidate
        return self._fallback.choose(runnable, step)

    def reset(self) -> None:
        self._pos = 0
        self._fallback.reset()

    def exhausted(self) -> bool:
        """True once the whole script has been consumed."""
        return self._pos >= len(self.script)


__all__ = [
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "ScriptedScheduler",
]
