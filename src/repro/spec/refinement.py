"""Iterative refinement of atomicity specifications (Figure 6).

Start from the strictest specification (all methods atomic except
entry points and interrupting methods).  Repeatedly run the checker;
whenever blame assignment reports methods as non-atomic, remove them
from the specification and re-run.  Terminate when a full step of
trials reports no new violations — approximating well-tested software,
which has an accurate atomicity specification and few, if any, known
violations (Section 5.1).

The refinement loop is checker-agnostic: callers supply a *runner*
``runner(spec, trial_index) -> set of blamed methods``.  The harness
builds runners for Velodrome, single-run mode, and multi-run mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Set

from repro.spec.specification import AtomicitySpecification

Runner = Callable[[AtomicitySpecification, int], Set[str]]

#: batch runner: executes one whole step's trials (possibly in
#: parallel) and returns one blamed-set per trial index
StepRunner = Callable[[AtomicitySpecification, Sequence[int]], Iterable[Set[str]]]


@dataclass
class RefinementStep:
    """One refinement step: the trials run and the new blames found."""

    step_index: int
    trials: int
    newly_blamed: Set[str]
    spec_size_before: int


@dataclass
class RefinementResult:
    """The full refinement trajectory.

    ``all_blamed`` is what Table 2 counts: every method blamed at least
    once during refinement.  ``intermediate_specs`` snapshots the
    specification after each step, which the Section 5.4 experiment
    (performance at the start/halfway/end of refinement) replays.
    """

    initial_spec: AtomicitySpecification
    final_spec: AtomicitySpecification
    steps: List[RefinementStep] = field(default_factory=list)
    all_blamed: Set[str] = field(default_factory=set)
    intermediate_specs: List[AtomicitySpecification] = field(default_factory=list)
    converged: bool = True

    def violation_count(self) -> int:
        """Static violations found over the whole refinement."""
        return len(self.all_blamed)

    def spec_at_fraction(self, fraction: float) -> AtomicitySpecification:
        """Specification after ``fraction`` of the blamed methods have
        been removed (0.0 = strictest, 1.0 = final)."""
        if not self.all_blamed or fraction <= 0.0:
            return self.initial_spec
        if fraction >= 1.0:
            return self.final_spec
        target = int(len(self.all_blamed) * fraction)
        removed: List[str] = []
        for step in self.steps:
            removed.extend(sorted(step.newly_blamed))
        return self.initial_spec.exclude(removed[:target])


def iterative_refinement(
    initial_spec: AtomicitySpecification,
    runner: Runner,
    *,
    trials_per_step: int = 10,
    max_steps: int = 64,
    step_runner: Optional[StepRunner] = None,
) -> RefinementResult:
    """Run iterative refinement to convergence.

    Args:
        initial_spec: usually :meth:`AtomicitySpecification.initial`.
        runner: executes one checking trial under a given specification
            and returns the methods blamed in that trial.  The trial
            index increases monotonically across steps, so seeded
            schedulers give run-to-run nondeterminism.
        trials_per_step: trials per refinement step; a step with no new
            blames across all its trials terminates refinement.
        max_steps: safety valve; refinement that does not converge
            returns ``converged=False``.
        step_runner: optional batch override — runs one whole step's
            trials (e.g. in parallel via a
            :class:`~repro.harness.parallel.CellPool`) and returns the
            per-trial blamed sets.  Steps remain strictly sequential
            either way: the next step's specification depends on the
            union of this step's blames, and that union is order-
            insensitive, so a parallel step runner refines to exactly
            the serial result.
    """
    spec = initial_spec
    result = RefinementResult(initial_spec=initial_spec, final_spec=initial_spec)
    trial_index = 0

    for step_index in range(max_steps):
        trials = range(trial_index, trial_index + trials_per_step)
        trial_index += trials_per_step
        if step_runner is not None:
            blamed_sets = step_runner(spec, list(trials))
        else:
            blamed_sets = [runner(spec, trial) for trial in trials]
        blamed_this_step: Set[str] = set()
        for blamed in blamed_sets:
            blamed_this_step |= set(blamed)
        new = {m for m in blamed_this_step if spec.is_atomic(m)}
        if not new:
            result.final_spec = spec
            result.converged = True
            return result
        result.steps.append(
            RefinementStep(step_index, trials_per_step, new, len(spec))
        )
        result.all_blamed |= new
        spec = spec.exclude(new)
        result.intermediate_specs.append(spec)

    result.final_spec = spec
    result.converged = False
    return result
