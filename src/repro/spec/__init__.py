"""Atomicity specifications and their iterative refinement."""

from repro.spec.specification import AtomicitySpecification
from repro.spec.refinement import RefinementResult, iterative_refinement

__all__ = [
    "AtomicitySpecification",
    "RefinementResult",
    "iterative_refinement",
]
