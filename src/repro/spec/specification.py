"""Atomicity specifications.

Following the paper's implementation (Section 4), a specification is
an *exclusion list*: it names the methods **not** expected to execute
atomically; every other method is part of the specification, i.e.,
expected to be atomic.  The initial specification for iterative
refinement excludes only top-level methods (thread entry points such
as ``main()`` and ``Thread.run()`` analogues) and methods containing
interrupting calls (``wait``/``notify``/...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List

from repro.errors import SpecificationError
from repro.runtime.program import Program


@dataclass(frozen=True)
class AtomicitySpecification:
    """An immutable atomicity specification.

    Attributes:
        all_methods: the program's method universe (for validation and
            for reporting refinement progress).
        excluded: methods *removed* from the specification — they are
            not expected to be atomic and never start transactions.
    """

    all_methods: FrozenSet[str]
    excluded: FrozenSet[str]

    def __post_init__(self) -> None:
        unknown = self.excluded - self.all_methods
        if unknown:
            raise SpecificationError(
                f"excluded methods not in the program: {sorted(unknown)}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, program: Program) -> "AtomicitySpecification":
        """The strictest specification iterative refinement starts from.

        Excludes thread entry points and interrupting methods, matching
        Section 5.1 (the DaCapo driver thread's entry method is an entry
        point here, so it is excluded the same way).
        """
        all_methods = frozenset(program.method_names())
        excluded = set(program.entry_methods())
        excluded.update(program.interrupting_methods())
        return cls(all_methods, frozenset(excluded))

    @classmethod
    def empty(cls, program: Program) -> "AtomicitySpecification":
        """A specification with *no* atomic methods (baseline timing runs)."""
        all_methods = frozenset(program.method_names())
        return cls(all_methods, all_methods)

    # ------------------------------------------------------------------
    def is_atomic(self, method: str) -> bool:
        """Is ``method`` expected to execute atomically?"""
        if method.startswith("<"):
            return False  # runtime-internal pseudo-methods
        return method not in self.excluded

    def atomic_methods(self) -> List[str]:
        """All methods currently in the specification, sorted."""
        return sorted(m for m in self.all_methods if self.is_atomic(m))

    def exclude(self, methods: Iterable[str]) -> "AtomicitySpecification":
        """Return a copy with ``methods`` additionally excluded."""
        return AtomicitySpecification(
            self.all_methods, self.excluded | frozenset(methods)
        )

    def intersect(self, other: "AtomicitySpecification") -> "AtomicitySpecification":
        """Methods atomic in *both* specifications remain atomic.

        Used to prepare final specifications without bias toward one
        checker (Section 5.1): the final spec is the intersection of the
        specs each checker converged to.
        """
        if self.all_methods != other.all_methods:
            raise SpecificationError(
                "cannot intersect specifications over different programs"
            )
        return AtomicitySpecification(
            self.all_methods, self.excluded | other.excluded
        )

    def __len__(self) -> int:
        return len(self.atomic_methods())

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{len(self)} atomic / {len(self.all_methods)} methods "
            f"({len(self.excluded)} excluded)"
        )
