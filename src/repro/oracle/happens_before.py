"""Octet-derived happens-before tracking and validation.

The tracker maintains one vector clock per thread and applies joins
**only** at the points where Octet establishes happens-before
relationships (Section 3.2.1):

* **conflicting transition** — the coordination roundtrip orders the
  responder's current point before the requester's current point: the
  requester joins the responder's clock;
* **upgrading to RdSh** — the upgrade orders (a) the previous RdEx
  owner's last transition point and (b) the previous RdSh transition
  (the ``gRdShCnt`` chain) before the upgrading read; the upgrading
  thread joins both clocks, and the upgrade's clock is recorded per
  counter value;
* **fence transition** — a stale reader joins the clock of the RdSh
  transition whose counter it is catching up to.

Nothing else creates cross-thread ordering — in particular, fast-path
accesses join nothing, exactly as in the mechanism.

:meth:`HappensBeforeTracker.verify` then checks the soundness theorem
dynamically: for every pair of conflicting accesses (same field,
different threads, at least one write), the earlier access's clock
snapshot must happen-before the later access's — i.e., the transitions
alone impose enough ordering to cover every cross-thread dependence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.octet.runtime import OctetListener, TransitionRecord
from repro.oracle.vector_clock import VectorClock
from repro.runtime.events import AccessEvent, AccessKind
from repro.runtime.listeners import ExecutionListener


@dataclass(frozen=True)
class OrderingViolation:
    """A conflicting access pair Octet's happens-before failed to order."""

    earlier_seq: int
    later_seq: int
    address: Tuple[int, str]
    earlier_thread: str
    later_thread: str

    def __str__(self) -> str:
        return (
            f"accesses #{self.earlier_seq} ({self.earlier_thread}) and "
            f"#{self.later_seq} ({self.later_thread}) on field "
            f"{self.address} conflict but are unordered"
        )


@dataclass
class _AccessSnapshot:
    seq: int
    thread: str
    address: Tuple[int, str]
    kind: AccessKind
    clock: VectorClock


class HappensBeforeTracker(OctetListener, ExecutionListener):
    """Attach alongside ICD: ``icd.octet.add_listener(tracker)`` for the
    transition hooks and register it in the executor pipeline *after*
    the ICD so access snapshots see post-transition clocks."""

    def __init__(self, include_arrays: bool = False) -> None:
        #: mirror the checker's instrumentation scope: the theorem
        #: covers instrumented accesses, and the main configuration does
        #: not instrument arrays (Section 4)
        self.include_arrays = include_arrays
        self._clocks: Dict[str, VectorClock] = {}
        #: clock snapshot of each transition to RdSh, keyed by counter
        self._rdsh_clocks: Dict[int, VectorClock] = {}
        #: clock snapshot of each thread's last transition to RdEx
        self._last_rdex_clocks: Dict[str, VectorClock] = {}
        self._snapshots: List[_AccessSnapshot] = []

    # ------------------------------------------------------------------
    def _clock(self, thread: str) -> VectorClock:
        clock = self._clocks.get(thread)
        if clock is None:
            clock = VectorClock()
            self._clocks[thread] = clock
        return clock

    # ------------------------------------------------------------------
    # OctetListener: the only sources of cross-thread ordering
    # ------------------------------------------------------------------
    def on_conflicting(self, record: TransitionRecord) -> None:
        requester = record.event.thread_name
        assert record.coordination is not None
        clock = self._clock(requester)
        for responder in record.coordination.responders:
            resp_clock = self._clock(responder.thread_name)
            resp_clock.tick(responder.thread_name)  # the response point
            clock.join(resp_clock)
        new_state = record.new_state
        if new_state is not None and new_state.kind.name == "RD_EX":
            self._last_rdex_clocks[requester] = clock.copy()

    def on_upgrading_rd_sh(self, record: TransitionRecord) -> None:
        thread = record.event.thread_name
        clock = self._clock(thread)
        if record.prior_owner is not None:
            prior = self._last_rdex_clocks.get(record.prior_owner)
            if prior is not None:
                clock.join(prior)
            # the owner's exclusive reads happened before this upgrade:
            # its current point is ordered too (the atomic state change)
            clock.join(self._clock(record.prior_owner))
        assert record.rdsh_counter is not None
        previous = self._rdsh_clocks.get(record.rdsh_counter - 1)
        if previous is not None:
            clock.join(previous)
        self._rdsh_clocks[record.rdsh_counter] = clock.copy()

    def on_fence(self, record: TransitionRecord) -> None:
        thread = record.event.thread_name
        state = record.old_state
        assert state is not None and state.counter is not None
        target = self._rdsh_clocks.get(state.counter)
        if target is not None:
            self._clock(thread).join(target)

    # ------------------------------------------------------------------
    # ExecutionListener: snapshot every access
    # ------------------------------------------------------------------
    def on_access(self, event: AccessEvent) -> None:
        if event.is_array and not self.include_arrays:
            return
        clock = self._clock(event.thread_name)
        clock.tick(event.thread_name)
        self._snapshots.append(
            _AccessSnapshot(
                seq=event.seq,
                thread=event.thread_name,
                address=event.address,
                kind=event.kind,
                clock=clock.copy(),
            )
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def verify(self) -> List[OrderingViolation]:
        """Check every conflicting pair is ordered; returns failures.

        An empty result is the dynamic proof of the soundness theorem
        for this execution.
        """
        violations: List[OrderingViolation] = []
        last_write: Dict[Tuple[int, str], _AccessSnapshot] = {}
        last_readers: Dict[Tuple[int, str], Dict[str, _AccessSnapshot]] = {}

        for snap in self._snapshots:
            writer = last_write.get(snap.address)
            if writer is not None and writer.thread != snap.thread:
                self._require(writer, snap, violations)
            if snap.kind is AccessKind.READ:
                last_readers.setdefault(snap.address, {})[snap.thread] = snap
            else:
                for reader in last_readers.get(snap.address, {}).values():
                    if reader.thread != snap.thread:
                        self._require(reader, snap, violations)
                last_readers[snap.address] = {}
                last_write[snap.address] = snap
        return violations

    @staticmethod
    def _require(
        earlier: _AccessSnapshot,
        later: _AccessSnapshot,
        violations: List[OrderingViolation],
    ) -> None:
        # the earlier access's point is covered by the later clock iff
        # the later thread has seen the earlier thread's component
        if earlier.clock.get(earlier.thread) > later.clock.get(earlier.thread):
            violations.append(
                OrderingViolation(
                    earlier_seq=earlier.seq,
                    later_seq=later.seq,
                    address=earlier.address,
                    earlier_thread=earlier.thread,
                    later_thread=later.thread,
                )
            )
