"""Vector clocks (Lamport/Mattern), the textbook happens-before device."""

from __future__ import annotations

from typing import Dict, Iterable, Optional


class VectorClock:
    """An immutable-by-convention vector clock.

    Components default to zero; mutating operations return ``self`` for
    chaining but callers that need a snapshot must :meth:`copy` first.
    """

    __slots__ = ("_clock",)

    def __init__(self, clock: Optional[Dict[str, int]] = None) -> None:
        self._clock: Dict[str, int] = dict(clock or {})

    def copy(self) -> "VectorClock":
        return VectorClock(self._clock)

    def get(self, thread: str) -> int:
        return self._clock.get(thread, 0)

    def tick(self, thread: str) -> "VectorClock":
        """Advance ``thread``'s component (a local step)."""
        self._clock[thread] = self._clock.get(thread, 0) + 1
        return self

    def join(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum (receiving a happens-before edge)."""
        for thread, value in other._clock.items():
            if value > self._clock.get(thread, 0):
                self._clock[thread] = value
        return self

    def leq(self, other: "VectorClock") -> bool:
        """Pointwise ≤: does this clock happen-before-or-equal other?"""
        return all(
            value <= other._clock.get(thread, 0)
            for thread, value in self._clock.items()
        )

    def threads(self) -> Iterable[str]:
        return self._clock.keys()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{t}:{v}" for t, v in sorted(self._clock.items()))
        return f"<VC {inner}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        keys = set(self._clock) | set(other._clock)
        return all(self.get(k) == other.get(k) for k in keys)

    def __hash__(self) -> int:  # clocks are not meant to be dict keys
        raise TypeError("VectorClock is unhashable")
