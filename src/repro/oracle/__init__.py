"""Dynamic-analysis oracles.

Library-grade reference implementations used to validate the
production analyses (and usable on their own): a vector-clock
implementation and a happens-before tracker that derives its ordering
*only* from Octet state transitions — the mechanism's soundness
theorem ("Octet's state transitions establish happens-before edges
that transitively imply all cross-thread dependences", Section 3.2.1)
as executable, checkable code.
"""

from repro.oracle.vector_clock import VectorClock
from repro.oracle.happens_before import HappensBeforeTracker, OrderingViolation

__all__ = ["HappensBeforeTracker", "OrderingViolation", "VectorClock"]
