"""Replaying recorded traces through analysis listeners.

Checkers never dereference program values — they consume object
identities, field names, access kinds and method boundaries — so a
replay can reconstruct lightweight object shims and drive the same
listener interface the live executor drives.  An online checker run
over a replayed trace produces exactly the result it produced online
(``tests/trace/test_replay.py`` pins this).
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.runtime.events import AccessEvent, AccessKind, Site
from repro.runtime.listeners import ExecutionListener, ListenerPipeline
from repro.trace.recorder import ACCESS, END, ENTER, EXIT, START, Trace


class _ObjectShim:
    """Stands in for a heap object during replay (identity only)."""

    __slots__ = ("oid", "label")

    def __init__(self, oid: int, label: str) -> None:
        self.oid = oid
        self.label = label

    def __hash__(self) -> int:
        return self.oid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ObjectShim) and other.oid == self.oid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<shim #{self.oid} {self.label!r}>"


def replay_trace(
    trace: Trace, listeners: Iterable[ExecutionListener]
) -> None:
    """Dispatch every recorded event to ``listeners`` in order."""
    pipeline = ListenerPipeline(list(listeners))
    shims: Dict[int, _ObjectShim] = {}

    for record in trace.records:
        kind = record[0]
        if kind == ACCESS:
            (
                _k,
                seq,
                thread,
                oid,
                label,
                fieldname,
                access_kind,
                is_sync,
                is_array,
                site_method,
                site_index,
            ) = record
            shim = shims.get(oid)
            if shim is None:
                shim = _ObjectShim(oid, label)
                shims[oid] = shim
            pipeline.on_access(
                AccessEvent(
                    seq=seq,
                    thread_name=thread,
                    obj=shim,
                    fieldname=fieldname,
                    kind=AccessKind(access_kind),
                    is_sync=bool(is_sync),
                    is_array=bool(is_array),
                    site=Site(site_method, site_index),
                )
            )
        elif kind == ENTER:
            pipeline.on_method_enter(record[1], record[2], record[3])
        elif kind == EXIT:
            pipeline.on_method_exit(record[1], record[2], record[3])
        elif kind == START:
            pipeline.on_thread_start(record[1])
        elif kind == END:
            pipeline.on_thread_end(record[1])
        else:  # pragma: no cover - corrupted input
            raise ValueError(f"unknown trace record kind: {kind!r}")
    pipeline.on_execution_end()
