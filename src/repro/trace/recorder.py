"""Recording executions as serializable traces."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.runtime.events import AccessEvent
from repro.runtime.executor import Executor
from repro.runtime.listeners import ExecutionListener
from repro.runtime.program import Program
from repro.runtime.scheduler import Scheduler

#: trace record kinds
ACCESS, ENTER, EXIT, START, END = "a", "m+", "m-", "t+", "t-"


@dataclass
class Trace:
    """A recorded execution: an ordered list of event tuples.

    Access records: ``(ACCESS, seq, thread, oid, label, field, kind,
    is_sync, is_array, site_method, site_index)``.
    Method records: ``(ENTER/EXIT, thread, method, depth)``.
    Thread records: ``(START/END, thread)``.
    """

    records: List[tuple] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def access_count(self) -> int:
        return sum(1 for r in self.records if r[0] == ACCESS)

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialize, one JSON array per line."""
        return "\n".join(json.dumps(list(r)) for r in self.records)

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        records = [
            tuple(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        ]
        return cls(records)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl() + "\n")

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path) as handle:
            return cls.from_jsonl(handle.read())


class TraceRecorder(ExecutionListener):
    """Listener that captures the full event stream."""

    def __init__(self) -> None:
        self.trace = Trace()

    def on_thread_start(self, thread_name: str) -> None:
        self.trace.records.append((START, thread_name))

    def on_thread_end(self, thread_name: str) -> None:
        self.trace.records.append((END, thread_name))

    def on_method_enter(self, thread_name: str, method: str, depth: int) -> None:
        self.trace.records.append((ENTER, thread_name, method, depth))

    def on_method_exit(self, thread_name: str, method: str, depth: int) -> None:
        self.trace.records.append((EXIT, thread_name, method, depth))

    def on_access(self, event: AccessEvent) -> None:
        self.trace.records.append(
            (
                ACCESS,
                event.seq,
                event.thread_name,
                event.obj.oid,
                getattr(event.obj, "label", ""),
                event.fieldname,
                event.kind.value,
                event.is_sync,
                event.is_array,
                event.site.method,
                event.site.index,
            )
        )


def record_execution(
    program: Program,
    scheduler: Optional[Scheduler] = None,
    extra_listeners: Iterable[ExecutionListener] = (),
) -> Trace:
    """Run ``program`` once and return its trace."""
    recorder = TraceRecorder()
    Executor(program, scheduler, [*extra_listeners, recorder]).run()
    return recorder.trace
