"""Recording executions as serializable traces."""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.errors import TraceFormatError
from repro.runtime.events import AccessEvent
from repro.runtime.executor import Executor
from repro.runtime.listeners import ExecutionListener
from repro.runtime.program import Program
from repro.runtime.scheduler import Scheduler

#: trace record kinds
ACCESS, ENTER, EXIT, START, END = "a", "m+", "m-", "t+", "t-"

#: required record length per kind (see :class:`Trace`)
_RECORD_ARITY = {ACCESS: 11, ENTER: 4, EXIT: 4, START: 2, END: 2}


@dataclass
class Trace:
    """A recorded execution: an ordered list of event tuples.

    Access records: ``(ACCESS, seq, thread, oid, label, field, kind,
    is_sync, is_array, site_method, site_index)``.
    Method records: ``(ENTER/EXIT, thread, method, depth)``.
    Thread records: ``(START/END, thread)``.
    """

    records: List[tuple] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def access_count(self) -> int:
        return sum(1 for r in self.records if r[0] == ACCESS)

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialize, one JSON array per line."""
        return "\n".join(json.dumps(list(r)) for r in self.records)

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Parse and validate, raising :class:`TraceFormatError` (with
        the 1-based line number) on the first corrupt line."""
        records = []
        for line_number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise TraceFormatError(line_number, f"not valid JSON ({exc})")
            if not isinstance(record, list) or not record:
                raise TraceFormatError(
                    line_number, "record is not a non-empty JSON array"
                )
            kind = record[0]
            arity = _RECORD_ARITY.get(kind)
            if arity is None:
                raise TraceFormatError(
                    line_number,
                    f"unknown record kind {kind!r} (expected one of "
                    f"{sorted(_RECORD_ARITY)})",
                )
            if len(record) != arity:
                raise TraceFormatError(
                    line_number,
                    f"{kind!r} record has {len(record)} fields, expected "
                    f"{arity}",
                )
            records.append(tuple(record))
        return cls(records)

    def save(self, path: str) -> None:
        """Atomic write-then-rename: a failed save can never truncate
        an existing trace file (same pattern as the obs exporters)."""
        directory = os.path.dirname(os.path.abspath(path)) or "."
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".trace-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(self.to_jsonl() + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path) as handle:
            return cls.from_jsonl(handle.read())


class TraceRecorder(ExecutionListener):
    """Listener that captures the full event stream."""

    def __init__(self) -> None:
        self.trace = Trace()

    def on_thread_start(self, thread_name: str) -> None:
        self.trace.records.append((START, thread_name))

    def on_thread_end(self, thread_name: str) -> None:
        self.trace.records.append((END, thread_name))

    def on_method_enter(self, thread_name: str, method: str, depth: int) -> None:
        self.trace.records.append((ENTER, thread_name, method, depth))

    def on_method_exit(self, thread_name: str, method: str, depth: int) -> None:
        self.trace.records.append((EXIT, thread_name, method, depth))

    def on_access(self, event: AccessEvent) -> None:
        self.trace.records.append(
            (
                ACCESS,
                event.seq,
                event.thread_name,
                event.obj.oid,
                getattr(event.obj, "label", ""),
                event.fieldname,
                event.kind.value,
                event.is_sync,
                event.is_array,
                event.site.method,
                event.site.index,
            )
        )


def record_execution(
    program: Program,
    scheduler: Optional[Scheduler] = None,
    extra_listeners: Iterable[ExecutionListener] = (),
) -> Trace:
    """Run ``program`` once and return its trace."""
    recorder = TraceRecorder()
    Executor(program, scheduler, [*extra_listeners, recorder]).run()
    return recorder.trace
