"""Execution-trace recording and replay.

DoubleChecker and Velodrome are *online* analyses: they run inside the
program's execution.  The related work the paper compares against
(Farzan & Parthasarathy, CAV 2008) detects cycles *offline*, after the
execution finishes.  This package provides the shared substrate for
offline work: record an execution's event stream once, persist it,
and replay it through any :class:`~repro.runtime.listeners.
ExecutionListener` — including the online checkers themselves, which
produce identical results on a replayed trace (tested).
"""

from repro.errors import TraceFormatError
from repro.trace.recorder import Trace, TraceRecorder, record_execution
from repro.trace.replay import replay_trace

__all__ = [
    "Trace",
    "TraceFormatError",
    "TraceRecorder",
    "record_execution",
    "replay_trace",
]
