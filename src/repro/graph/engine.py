"""Incremental directed-graph maintenance with cycle extraction.

The engine maintains, for a growing directed graph, (a) a topological
order of its condensation (Pearce–Kelly style incremental topological
sort) and (b) the strongly connected components themselves (union-find
contraction).  The payoff is the cost profile the online analyses
need:

* ``add_edge`` is O(1) when the new edge already respects the current
  order — the overwhelmingly common case for dependence graphs, whose
  edges point from older to newer transactions;
* when an edge *violates* the order, only the **affected region** —
  nodes whose position lies between the edge's endpoints — is
  searched, instead of the whole graph;
* when an edge creates a cycle, the members of the new strongly
  connected component are identified (the forward/backward search
  frontiers intersected) and contracted, so every later membership
  query is a near-O(1) union-find lookup.

Clients use the component structure as a *certificate*: two nodes in
different components provably have no cycle through them, so the
per-edge cycle checks of the PDG and the Velodrome checker — and the
transaction-end Tarjan pass of ICD — can skip or restrict their
traversals without changing any report (see ``repro.core.pdg``,
``repro.core.scc`` and ``repro.graph.dirty`` for the equivalence
arguments).

The reordering step follows Pearce & Kelly ("A Dynamic Topological
Sort Algorithm for Directed Acyclic Graphs", JEA 2006): the visited
forward set is placed after the visited backward set, reusing the
sorted pool of their old positions.  Contraction places the merged
component between the surviving backward and forward nodes, which
preserves validity because an edge between an untouched node and a
moved node either leaves the affected index window (and is unaffected)
or would have put the untouched node into one of the search frontiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.obs.registry import publish_stats

#: outcomes of :meth:`IncrementalSccDigraph.add_edge`
EDGE_FAST = "fast"  # respected the current order: O(1) accept
EDGE_REORDERED = "reordered"  # affected region searched, no cycle
EDGE_CYCLE = "cycle"  # closed a cycle: components merged
EDGE_SELF = "self"  # endpoints already share a component
EDGE_DUPLICATE = "duplicate"  # component-level duplicate


@dataclass
class GraphEngineStats:
    """Work counters for the incremental engine.

    ``search_visits`` is the engine's total traversal work — the
    analysis stats expose it so the cost model keeps charging for the
    graph maintenance that actually happens (instead of the
    whole-graph traversals it replaced).
    """

    nodes: int = 0
    edges: int = 0
    fast_edges: int = 0
    duplicate_edges: int = 0
    self_edges: int = 0
    reorders: int = 0
    search_visits: int = 0
    cycle_edges: int = 0
    merges: int = 0
    merged_nodes: int = 0
    forgotten_nodes: int = 0

    def publish(self, target, prefix: str) -> None:
        """Publish the counters onto a registry under ``prefix`` (the
        owning analysis namespaces them, e.g. ``icd.engine``)."""
        publish_stats(target, prefix, self)


class IncrementalSccDigraph:
    """Incremental topological order + SCC maintenance over hashables."""

    __slots__ = ("_ord", "_next_ord", "_parent", "_members", "_out", "_in", "stats")

    def __init__(self) -> None:
        #: representative -> topological index (unique, sparse)
        self._ord: Dict[object, int] = {}
        self._next_ord = 0
        #: union-find parent links (roots are absent)
        self._parent: Dict[object, object] = {}
        #: representative -> member set (only for multi-node components)
        self._members: Dict[object, Set[object]] = {}
        #: representative -> successor/predecessor representative sets
        #: (entries may be stale after merges; resolved lazily)
        self._out: Dict[object, Set[object]] = {}
        self._in: Dict[object, Set[object]] = {}
        self.stats = GraphEngineStats()

    # ------------------------------------------------------------------
    # union-find
    # ------------------------------------------------------------------
    def find(self, node: object) -> object:
        """Representative of ``node``'s component (path-halving)."""
        parent = self._parent
        while node in parent:
            grand = parent.get(parent[node], parent[node])
            parent[node] = grand
            node = grand
        return node

    def contains(self, node: object) -> bool:
        return node in self._ord or node in self._parent

    def add_node(self, node: object) -> None:
        """Register ``node`` (appended at the end of the order)."""
        if node in self._ord or node in self._parent:
            return
        self._ord[node] = self._next_ord
        self._next_ord += 1
        self.stats.nodes += 1

    # ------------------------------------------------------------------
    # component queries
    # ------------------------------------------------------------------
    def same_component(self, a: object, b: object) -> bool:
        return self.find(a) is self.find(b) or self.find(a) == self.find(b)

    def component_members(self, node: object) -> Set[object]:
        """Members of ``node``'s component (do not mutate)."""
        rep = self.find(node)
        members = self._members.get(rep)
        if members is None:
            return {rep}
        return members

    def component_size(self, node: object) -> int:
        rep = self.find(node)
        members = self._members.get(rep)
        return 1 if members is None else len(members)

    def cyclic_members(self, node: object) -> Optional[Set[object]]:
        """Member set when the component is cyclic, else ``None``.

        One ``find`` resolves both questions the scheduler asks per
        ending transaction — is the component cyclic, and who is in it
        — so the hot path pays a single lookup (do not mutate).
        """
        return self._members.get(self.find(node))

    def in_cycle(self, node: object) -> bool:
        """True when the node's component contains a cycle.

        Clients never insert self-edges, so a component is cyclic
        exactly when it has more than one member — the same convention
        as :func:`repro.core.scc.is_cyclic_component`.
        """
        return self.component_size(node) > 1

    # ------------------------------------------------------------------
    # edge insertion
    # ------------------------------------------------------------------
    def add_edge(self, src: object, dst: object) -> str:
        """Insert ``src -> dst``; returns one of the ``EDGE_*`` outcomes."""
        # ~3 of 4 insertions respect the current order, so endpoint
        # resolution and the accept path are inlined (no add_node/find
        # calls, single dict probe per endpoint for known roots)
        ordd = self._ord
        parent = self._parent
        stats = self.stats
        if src in parent:
            ru = self.find(src)
        elif src in ordd:
            ru = src
        else:
            ordd[src] = self._next_ord
            self._next_ord += 1
            stats.nodes += 1
            ru = src
        if dst in parent:
            rv = self.find(dst)
        elif dst in ordd:
            rv = dst
        else:
            ordd[dst] = self._next_ord
            self._next_ord += 1
            stats.nodes += 1
            rv = dst
        stats.edges += 1
        if ru is rv or ru == rv:
            # both endpoints already inside one SCC: the edge closes
            # (another) cycle through the existing component
            stats.self_edges += 1
            stats.cycle_edges += 1
            return EDGE_SELF
        out = self._out.get(ru)
        if out is not None and rv in out:
            stats.duplicate_edges += 1
            return EDGE_DUPLICATE
        ord_u = ordd[ru]
        ord_v = ordd[rv]
        if ord_u < ord_v:
            if out is None:
                self._out[ru] = {rv}
            else:
                out.add(rv)
            into = self._in.get(rv)
            if into is None:
                self._in[rv] = {ru}
            else:
                into.add(ru)
            stats.fast_edges += 1
            return EDGE_FAST
        # the edge goes against the current order: search the affected
        # region [ord_v, ord_u] only
        forward, hit = self._forward(rv, ord_u)
        backward = self._backward(ru, ord_v)
        self.stats.search_visits += len(forward) + len(backward)
        if hit:
            self.stats.cycle_edges += 1
            merged = self._contract(forward & backward, backward, forward)
            self._link(self.find(src), self.find(dst))
            del merged
            return EDGE_CYCLE
        self._reorder(
            sorted(backward, key=self._ord.__getitem__),
            sorted(forward, key=self._ord.__getitem__),
            backward | forward,
        )
        self._link(ru, rv)
        self.stats.reorders += 1
        return EDGE_REORDERED

    def ingest_edges(self, pairs: Iterable[Tuple[object, object]]) -> Dict[str, int]:
        """Bulk-ingest an ordered ``(src, dst)`` edge stream.

        The ingest seam for externally merged dependence streams (the
        partitioned analysis plane folds its globally seq-ordered
        cross-partition edge exchange in here): edges are applied one
        by one through :meth:`add_edge` — order matters, the
        incremental topological order and SCC contraction are
        path-dependent — and the outcome tally is returned for
        callers that assert on the stream's shape.
        """
        out: Dict[str, int] = {}
        add = self.add_edge
        for src, dst in pairs:
            outcome = add(src, dst)
            out[outcome] = out.get(outcome, 0) + 1
        return out

    # ------------------------------------------------------------------
    def _link(self, ru: object, rv: object) -> None:
        if ru is rv or ru == rv:
            return
        self._out.setdefault(ru, set()).add(rv)
        self._in.setdefault(rv, set()).add(ru)

    def _neighbours(self, rep: object, table: Dict[object, Set[object]]) -> List[object]:
        """Resolved neighbour representatives, cleaning stale entries."""
        raw = table.get(rep)
        if not raw:
            return []
        resolved: List[object] = []
        stale = False
        for target in raw:
            actual = self.find(target)
            if actual not in self._ord:
                stale = True  # forgotten node
                continue
            if actual is not target:
                stale = True
            if actual is rep or actual == rep:
                stale = True  # became intra-component after a merge
                continue
            resolved.append(actual)
        if stale:
            table[rep] = set(resolved)
        return resolved

    def _forward(self, start: object, upper: int) -> tuple[Set[object], bool]:
        """Reps reachable from ``start`` with order <= ``upper``.

        Returns the visited set and whether the node *at* ``upper``
        (the violating edge's source) was reached — i.e. a cycle.
        """
        ordd = self._ord
        seen = {start}
        stack = [start]
        hit = False
        while stack:
            node = stack.pop()
            for succ in self._neighbours(node, self._out):
                if succ in seen:
                    continue
                o = ordd[succ]
                if o > upper:
                    continue
                seen.add(succ)
                if o == upper:
                    hit = True  # reached the edge's source: cycle
                    continue
                stack.append(succ)
        return seen, hit

    def _backward(self, start: object, lower: int) -> Set[object]:
        """Reps reaching ``start`` with order >= ``lower``."""
        ordd = self._ord
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for pred in self._neighbours(node, self._in):
                if pred in seen or ordd[pred] < lower:
                    continue
                seen.add(pred)
                if ordd[pred] > lower:
                    stack.append(pred)
        return seen

    def _contract(
        self, scc: Set[object], backward: Set[object], forward: Set[object]
    ) -> object:
        """Merge ``scc`` into one component and restore the order."""
        assert len(scc) >= 2, "contraction needs at least two components"
        # union by member count
        rep = max(scc, key=self.component_size)
        members = self._members.setdefault(rep, {rep})
        new_out: Set[object] = self._out.pop(rep, set())
        new_in: Set[object] = self._in.pop(rep, set())
        for node in scc:
            if node is rep or node == rep:
                continue
            self._parent[node] = rep
            absorbed = self._members.pop(node, None)
            if absorbed is None:
                members.add(node)
            else:
                members.update(absorbed)
            new_out |= self._out.pop(node, set())
            new_in |= self._in.pop(node, set())
        self.stats.merges += 1
        self.stats.merged_nodes += len(scc)
        # positions: surviving backward nodes keep the smallest old
        # slots (they never move up), surviving forward nodes the
        # largest (they never move down), the merged component lands on
        # the first slot between them; the remaining middle slots —
        # freed by the contraction — stay unused
        slots = sorted(
            self._ord[node] for node in (backward | forward)
        )
        before = sorted(backward - scc, key=self._ord.__getitem__)
        after = sorted(forward - scc, key=self._ord.__getitem__)
        for node in backward | forward:
            del self._ord[node]
        for node, slot in zip(before, slots):
            self._ord[node] = slot
        self._ord[rep] = slots[len(before)]
        if after:
            for node, slot in zip(after, slots[-len(after):]):
                self._ord[node] = slot
        # resolve the merged adjacency now that parents are final
        self._out[rep] = {
            t for t in map(self.find, new_out) if t is not rep and t != rep
        }
        self._in[rep] = {
            t for t in map(self.find, new_in) if t is not rep and t != rep
        }
        for succ in self._out[rep]:
            self._in.setdefault(succ, set()).add(rep)
        for pred in self._in[rep]:
            self._out.setdefault(pred, set()).add(rep)
        return rep

    def _reorder(
        self, backward: List[object], forward: List[object], touched: Set[object]
    ) -> None:
        """Pearce–Kelly shift: backward set first, forward set after."""
        slots = sorted(self._ord[node] for node in touched)
        for node, slot in zip(backward + forward, slots):
            self._ord[node] = slot

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def forget(self, nodes: Iterable[object]) -> int:
        """Drop singleton nodes the client has garbage-collected.

        Only nodes that never joined a cycle can be forgotten: merged
        components must survive because their membership is the
        engine's acyclicity certificate.  Returns how many nodes were
        removed.
        """
        removed = 0
        for node in nodes:
            if node in self._parent or node not in self._ord:
                continue  # merged away, or unknown
            if node in self._members:
                continue  # represents a multi-node component
            for succ in self._out.pop(node, ()):  # unlink both directions
                peers = self._in.get(succ)
                if peers is not None:
                    peers.discard(node)
            for pred in self._in.pop(node, ()):
                peers = self._out.get(pred)
                if peers is not None:
                    peers.discard(node)
            del self._ord[node]
            removed += 1
        self.stats.forgotten_nodes += removed
        return removed

    # ------------------------------------------------------------------
    # verification (test hook)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert the order is topological over the condensation."""
        seen_slots: Set[int] = set()
        for rep, slot in self._ord.items():
            assert rep not in self._parent, f"{rep!r} is not a root"
            assert slot not in seen_slots, "duplicate topological index"
            seen_slots.add(slot)
        for rep in list(self._ord):
            for succ in self._neighbours(rep, self._out):
                assert self._ord[rep] < self._ord[succ], (
                    f"edge {rep!r}->{succ!r} violates the maintained order"
                )
