"""Dirty-marking schedule for ICD's transaction-end SCC pass.

ICD runs cycle detection when a transaction ends (Section 3.2.3).  The
original schedule launched a full iterative Tarjan from *every* ending
transaction that had a cross-thread edge, exploring its entire
finished reachable region each time.  The scheduler replaces that with
two engine-certified fast paths over a chain-collapsed engine graph
(:class:`~repro.graph.chains.ChainCollapsedGraph` — only cross-edge
endpoints are registered, so the per-transaction program-order traffic
costs the engine nothing):

* **Clean-component skip.**  The engine re-certifies a component
  acyclic on every edge insertion (that is what maintaining the
  topological order means).  A transaction whose component never
  gained a cycle-forming edge — it is still a singleton — provably has
  a singleton SCC, so its Tarjan pass is skipped outright.  This
  extends the existing ``scc_skipped_no_edges`` fast path (no edges at
  all) to the much larger class "has edges, but none that ever closed
  a cycle".

* **Unchanged-component skip.**  A component is *dirty* from the
  moment a merge changes its membership until a Tarjan pass covers all
  of its registered members.  A member ending while the component is
  clean would recompute exactly the already-processed member set —
  ICD's processed-SCC dedup would drop it — so the pass is skipped.
  Cross edges that do not merge components never change a Tarjan
  result (membership is untouched), so they do not re-dirty.

* **Frontier-restricted Tarjan.**  When a check must run, the
  transaction's true SCC is contained in its engine component plus the
  unregistered chain interiors the component's per-thread id windows
  admit (the engine graph is a supergraph of the live subgraph Tarjan
  walks).  Tarjan is seeded with that :class:`ChainFrontier` and never
  explores outside it, bounding the pass by the component size instead
  of the whole reachable region.  Any cycle through the root lies
  inside its SCC, so every member of the root's SCC stays admitted
  under the restriction and the computed component is **identical** to
  the unrestricted pass.

Reports are byte-identical to the original schedule: clean skips are
exactly the passes that would have computed a singleton (non-cyclic)
component, unchanged skips are passes whose result was already
processed, and restricted passes compute the same component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Optional, Set

from repro.graph.chains import ChainCollapsedGraph, ChainFrontier


@dataclass
class DirtySccStats:
    """Scheduler-level counters (engine counters live on the engine)."""

    #: ends skipped because the component was certified acyclic
    skipped_clean: int = 0
    #: ends skipped because the component was unchanged since a check
    #: that resolved it completely
    skipped_unchanged: int = 0
    #: checks that did run, and the total frontier size seeding them
    checks: int = 0
    frontier_seeded: int = 0


class DirtySccScheduler:
    """Decides whether an ending transaction needs a Tarjan pass."""

    __slots__ = ("chains", "graph", "stats", "last_skip_clean", "_dirty")

    def __init__(self) -> None:
        self.chains = ChainCollapsedGraph()
        self.graph = self.chains.graph
        self.stats = DirtySccStats()
        #: why the most recent ``frontier_for`` returned ``None``:
        #: True = component certified acyclic, False = unchanged
        self.last_skip_clean = True
        #: representatives of components whose membership changed since
        #: the last pass that covered them (stale reps are harmless:
        #: every merge re-marks the surviving representative)
        self._dirty: Set[object] = set()

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    def note_cross_edge(
        self, src_id: int, src_chain: str, dst_id: int, dst_chain: str
    ) -> str:
        """A cross-thread IDG edge; dirties components a merge touched.

        Only merges dirty: an edge that does not change any component's
        membership cannot change any future Tarjan result, so resolved
        components stay resolved across it.
        """
        graph = self.graph
        merges_before = graph.stats.merges
        outcome = self.chains.note_cross_edge(src_id, src_chain, dst_id, dst_chain)
        if graph.stats.merges != merges_before:
            # registration splices can merge too, not only the cross
            # edge itself — mark both endpoint components
            self._dirty.add(graph.find(src_id))
            self._dirty.add(graph.find(dst_id))
        return outcome

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def frontier_for(self, tx_id: int) -> Optional[ChainFrontier]:
        """The frontier to seed Tarjan with, or ``None`` to skip."""
        graph = self.graph
        members = graph.cyclic_members(tx_id)
        if members is None:
            self.stats.skipped_clean += 1
            self.last_skip_clean = True
            return None
        if graph.find(tx_id) not in self._dirty:
            self.stats.skipped_unchanged += 1
            self.last_skip_clean = False
            return None
        self.stats.checks += 1
        self.stats.frontier_seeded += len(members)
        return self.chains.frontier_of(members)

    def note_checked(self, tx_id: int, component_ids: AbstractSet[int]) -> None:
        """Record a completed Tarjan pass rooted in ``tx_id``'s component.

        The component counts as resolved only when the pass covered
        every registered member — a partial result (members still
        unfinished, or outside the root's SCC) must stay dirty so later
        member ends re-check.
        """
        graph = self.graph
        members = graph.cyclic_members(tx_id)
        if members is not None and members <= component_ids:
            self._dirty.discard(graph.find(tx_id))

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def forget(self, tx_ids) -> int:
        """Forward collected singleton transactions to the engine."""
        return self.chains.forget(tx_ids)
