"""Shared incremental cycle-detection engine.

``repro.graph`` hosts the graph maintenance machinery shared by the
three online analyses:

* :class:`~repro.graph.engine.IncrementalSccDigraph` — Pearce–Kelly
  incremental topological ordering with union-find SCC contraction;
  the acyclicity/membership certificate behind every fast path.
* :class:`~repro.graph.chains.ChainCollapsedGraph` — the lazy
  registration layer: only cross-edge endpoints enter the engine, with
  each thread's program-order chain collapsed to edges between its
  consecutive registered transactions.
* :class:`~repro.graph.dirty.DirtySccScheduler` — the dirty-marking
  transaction-end schedule ICD layers on top of the engine.

See ``docs/API.md`` ("Analysis performance") for the design and the
report-equivalence arguments.
"""

from repro.graph.engine import (
    EDGE_CYCLE,
    EDGE_DUPLICATE,
    EDGE_FAST,
    EDGE_REORDERED,
    EDGE_SELF,
    GraphEngineStats,
    IncrementalSccDigraph,
)
from repro.graph.chains import ChainCollapsedGraph, ChainFrontier
from repro.graph.dirty import DirtySccScheduler, DirtySccStats

__all__ = [
    "EDGE_CYCLE",
    "EDGE_DUPLICATE",
    "EDGE_FAST",
    "EDGE_REORDERED",
    "EDGE_SELF",
    "GraphEngineStats",
    "IncrementalSccDigraph",
    "ChainCollapsedGraph",
    "ChainFrontier",
    "DirtySccScheduler",
    "DirtySccStats",
]
