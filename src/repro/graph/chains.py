"""Chain-collapsed view of the incremental engine.

The dependence graphs the engine certifies are *mostly chains*: every
transaction is linked to its thread predecessor by a program-order
edge, but only a small minority of transactions ever acquire a
cross-thread edge — and only those can seed or join a cycle.  Feeding
every program-order edge to the engine therefore pays per-transaction
maintenance for nodes that provably never matter.

:class:`ChainCollapsedGraph` keeps the engine graph restricted to the
cross-edge endpoints.  Each thread's program-order chain is collapsed
to edges between its *consecutive registered* transactions: for
registered ``a < b`` with no registered transaction between them, the
engine holds ``a -> b``, standing for the real path ``a -> ... -> b``
through the unregistered chain interior.  Registration happens lazily,
on a transaction's first cross edge; a later registration between two
already-registered neighbours splices into the chain (the existing
collapsed edge stays — it still denotes a real path, and extra edges
only ever make engine components larger, never smaller).

The engine graph remains a **supergraph** of live reachability: every
cross edge is inserted verbatim, and every chain segment between
registered transactions is covered transitively by the collapse edges.
Components are therefore still valid certificates — two registered
transactions in different components have no cycle through them.

What the collapse changes is *membership*: a real SCC can pass through
unregistered chain interiors (enter a thread at one registered
transaction, leave at a later one), and those interiors are absent
from the engine component.  :class:`ChainFrontier` restores them with
per-chain id windows: an interior transaction lies, by construction,
between two registered members of its own chain, hence inside the
``[min, max]`` window of that chain's member ids.  Admitting a few
extra in-window transactions is harmless — a restricted traversal that
admits any superset of the true SCC computes the same component in the
same order (an explored non-member can never reach back into the SCC,
or it would be a member).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Set

from repro.graph.engine import IncrementalSccDigraph


class ChainFrontier:
    """Membership predicate seeding a restricted SCC/cycle traversal.

    ``members`` are the registered ids of one engine component;
    ``windows`` maps a chain key (thread name) to the ``[lo, hi]`` id
    range its registered members span, admitting the unregistered
    chain interiors a cycle may run through.
    """

    __slots__ = ("members", "windows")

    def __init__(self, members: Set[int], windows: Dict[str, List[int]]) -> None:
        self.members = members
        self.windows = windows

    def __len__(self) -> int:
        return len(self.members)

    def admits(self, chain: str, node_id: int) -> bool:
        if node_id in self.members:
            return True
        window = self.windows.get(chain)
        return window is not None and window[0] <= node_id <= window[1]


class ChainCollapsedGraph:
    """Engine wrapper registering nodes lazily, on first cross edge."""

    __slots__ = ("graph", "_chains", "_chain_of")

    def __init__(self) -> None:
        self.graph = IncrementalSccDigraph()
        #: chain key -> ascending registered ids (ids are creation-
        #: ordered per chain, so id order *is* chain order)
        self._chains: Dict[str, List[int]] = {}
        #: registered id -> its chain key
        self._chain_of: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def register(self, node_id: int, chain: str) -> None:
        """Enter ``node_id`` into the engine, spliced into its chain."""
        self._chain_of[node_id] = chain
        graph = self.graph
        seq = self._chains.get(chain)
        if not seq:  # first registration, or the chain was fully swept
            self._chains[chain] = [node_id]
            graph.add_node(node_id)
            return
        if node_id > seq[-1]:
            # the common case: the chain's newest transaction
            graph.add_edge(seq[-1], node_id)
            seq.append(node_id)
            return
        # late registration (an old transaction resurfacing as an edge
        # source): splice between its registered chain neighbours
        index = bisect_left(seq, node_id)
        graph.add_node(node_id)
        if index > 0:
            graph.add_edge(seq[index - 1], node_id)
        if index < len(seq):
            graph.add_edge(node_id, seq[index])
        seq.insert(index, node_id)

    def note_cross_edge(
        self, src_id: int, src_chain: str, dst_id: int, dst_chain: str
    ) -> str:
        """Insert a cross-thread edge, registering unseen endpoints."""
        chain_of = self._chain_of
        if src_id not in chain_of:
            self.register(src_id, src_chain)
        if dst_id not in chain_of:
            self.register(dst_id, dst_chain)
        return self.graph.add_edge(src_id, dst_id)

    # ------------------------------------------------------------------
    # certificates
    # ------------------------------------------------------------------
    def same_component(self, a: int, b: int) -> bool:
        return self.graph.same_component(a, b)

    def in_cycle(self, node_id: int) -> bool:
        return self.graph.in_cycle(node_id)

    def frontier(self, node_id: int) -> ChainFrontier:
        """The membership predicate for ``node_id``'s component."""
        return self.frontier_of(self.graph.component_members(node_id))

    def frontier_of(self, members: Set[int]) -> ChainFrontier:
        """Build the window predicate for a known member set."""
        windows: Dict[str, List[int]] = {}
        chain_of = self._chain_of
        for member in members:
            chain = chain_of[member]
            window = windows.get(chain)
            if window is None:
                windows[chain] = [member, member]
            elif member < window[0]:
                window[0] = member
            elif member > window[1]:
                window[1] = member
        return ChainFrontier(members, windows)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def forget(self, node_ids: Iterable[int]) -> int:
        """Drop collected registered singletons from the engine.

        A collected transaction's chain paths are already dead (the
        collector proved it unreachable from any future cycle), so
        un-splicing it without bridging its neighbours keeps the engine
        a supergraph of *live* reachability.
        """
        chain_of = self._chain_of
        candidates = [i for i in node_ids if i in chain_of]
        removed = self.graph.forget(candidates)
        if removed:
            graph = self.graph
            for node_id in candidates:
                if graph.contains(node_id):
                    continue  # merged into a component: must survive
                chain = chain_of.pop(node_id)
                seq = self._chains[chain]
                index = bisect_left(seq, node_id)
                if index < len(seq) and seq[index] == node_id:
                    del seq[index]
        return removed
