"""The calibrated execution-time model.

Wall-clock numbers cannot transfer from a JVM on an i5 to a Python
simulator, so Figure 7's normalized execution times are reproduced
from *event counts*: every analysis counts exactly the events whose
hardware costs dominate in the paper (atomic operations, memory
fences, coordination roundtrips, log appends, graph and replay work),
and the model maps counts to time through per-event weights.

The weights are expressed in abstract cost units where one simulated
program operation costs :attr:`CostWeights.program_op`.  They are
calibrated against three anchors from the paper:

* Velodrome slows programs 6.1X, with 82% of its overhead coming from
  the analysis-access atomicity synchronization (Section 5.3) — so the
  atomic + fence terms dominate its per-access cost;
* DoubleChecker's single-run mode slows programs 3.6X; about two-fifths
  of that overhead is Octet + IDG + SCC work (≈ the first run of
  multi-run mode at 1.9X), nearly all the rest is read/write logging,
  and less than one-tenth is PCD (Section 5.3);
* GC time is driven by the footprint of long-lived read/write logs
  (Figure 7's sub-bars), modelled as a per-log-entry charge plus a
  per-collection charge proportional to the surviving graph.

The model is validated in ``benchmarks/bench_figure7_performance.py``:
with the catalog workloads, the geomean normalized times land near the
paper's 6.1X / 3.6X / 1.9X / 2.4X ordering with the same winners and
the same xalan6 crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.doublechecker import FirstRunResult, SingleRunResult
from repro.velodrome.checker import VelodromeResult


@dataclass(frozen=True)
class CostWeights:
    """Per-event costs, in abstract units (program op = 10)."""

    #: one simulated program operation (the uninstrumented baseline)
    program_op: float = 10.0

    # --- synchronization hardware costs -------------------------------
    #: an atomic read-modify-write (CAS); includes its serializing effect
    atomic_op: float = 36.0
    #: a memory fence
    fence: float = 9.0
    #: one coordination roundtrip of Octet's explicit protocol
    coordination_roundtrip: float = 130.0
    #: an implicit-protocol response (flag set + hold)
    coordination_implicit: float = 30.0

    # --- barrier bodies -------------------------------------------------
    #: Octet's fast-path state check (no writes, no synchronization)
    octet_fast_check: float = 2.3
    #: Velodrome's per-access analysis body (metadata read + compare),
    #: excluding the synchronization accounted separately
    velodrome_access_body: float = 7.0
    #: a metadata update (store of last writer/reader words)
    metadata_update: float = 2.5

    # --- graph work -----------------------------------------------------
    #: adding one dependence edge (allocation + list append)
    edge_add: float = 22.0
    #: one cycle-detection/SCC node visit
    graph_visit: float = 4.0
    #: launching one SCC computation (setup)
    scc_setup: float = 16.0

    # --- logging (single-run mode's dominant cost) ----------------------
    #: appending one read/write log entry (allocation + store)
    log_append: float = 18.0
    #: the elision check performed at every logged-candidate access
    elision_check: float = 2.5
    #: GC charge per log entry ever created (long-lived log footprint)
    gc_per_log_entry: float = 10.0
    #: GC charge per live transaction scanned per collection
    gc_per_tx_scanned: float = 0.4
    #: GC charge per unit of the live-log integral (entries alive at
    #: each transaction end): repeated collector traversals of retained
    #: logs.  Small for collected runs; ruinous when everything is
    #: retained, as in the PCD-only straw man (Section 5.4)
    gc_live_log_scan: float = 0.22

    # --- PCD --------------------------------------------------------------
    #: replaying one log entry (Figure 5 rules + merge step)
    pcd_replay_entry: float = 6.0
    #: one PDG edge + its incremental cycle check
    pcd_edge: float = 14.0


@dataclass
class CostBreakdown:
    """Modelled time for one configuration on one benchmark."""

    base_units: float
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def overhead_units(self) -> float:
        return sum(self.components.values())

    @property
    def total_units(self) -> float:
        return self.base_units + self.overhead_units

    @property
    def normalized_time(self) -> float:
        """Execution time normalized to the uninstrumented baseline."""
        return self.total_units / self.base_units

    @property
    def gc_fraction(self) -> float:
        """Share of total time spent in GC (Figure 7's sub-bars)."""
        gc = self.components.get("gc", 0.0)
        return gc / self.total_units if self.total_units else 0.0

    def component_fraction(self, name: str) -> float:
        """Share of *overhead* attributed to one component."""
        if not self.overhead_units:
            return 0.0
        return self.components.get(name, 0.0) / self.overhead_units


class CostModel:
    """Maps analysis statistics to modelled normalized execution times."""

    def __init__(self, weights: Optional[CostWeights] = None) -> None:
        self.weights = weights or CostWeights()

    # ------------------------------------------------------------------
    def baseline_units(self, steps: int) -> float:
        return steps * self.weights.program_op

    # ------------------------------------------------------------------
    def velodrome(self, result: VelodromeResult) -> CostBreakdown:
        """Model Velodrome's cost from its counters."""
        w = self.weights
        s = result.stats
        breakdown = CostBreakdown(self.baseline_units(result.execution.steps))
        breakdown.components["synchronization"] = (
            s.atomic_operations * w.atomic_op + s.memory_fences * w.fence
        )
        breakdown.components["analysis"] = (
            s.instrumented_accesses * w.velodrome_access_body
            + s.metadata_updates * w.metadata_update
        )
        breakdown.components["graph"] = (
            s.edges * w.edge_add
            + s.cycle_checks * w.scc_setup
            + s.cycle_check_visits * w.graph_visit
            + s.engine_search_visits * w.graph_visit
        )
        breakdown.components["gc"] = (
            result.gc_stats.transactions_collected * w.gc_per_tx_scanned
            + result.gc_stats.peak_live_transactions * w.gc_per_tx_scanned
        )
        return breakdown

    # ------------------------------------------------------------------
    def _icd_components(
        self, icd_stats, octet_stats, protocol_stats, breakdown: CostBreakdown
    ) -> None:
        w = self.weights
        breakdown.components["octet"] = (
            octet_stats.barriers * w.octet_fast_check
            + octet_stats.atomic_operations * w.atomic_op
            + octet_stats.memory_fences_issued * w.fence
            + protocol_stats.get("explicit_responses", 0)
            * w.coordination_roundtrip
            + protocol_stats.get("implicit_responses", 0)
            * w.coordination_implicit
        )
        breakdown.components["idg"] = (
            icd_stats.idg_edges * w.edge_add
            + icd_stats.scc_computations * w.scc_setup
            # charge the Tarjan traversal work that actually ran plus
            # the engine's own maintenance searches — real work done,
            # whichever schedule (legacy or dirty-marking) produced it
            + icd_stats.scc_visits * w.graph_visit
            + icd_stats.engine_search_visits * w.graph_visit
            + icd_stats.cycle_detection_calls * w.graph_visit
        )

    def double_checker_single(self, result: SingleRunResult) -> CostBreakdown:
        """Model single-run mode (or the second run of multi-run mode)."""
        w = self.weights
        breakdown = CostBreakdown(self.baseline_units(result.execution.steps))
        self._icd_components(
            result.icd_stats, result.octet_stats, result.protocol_stats, breakdown
        )
        logged = result.icd_stats.log_entries + result.icd_stats.log_marks
        candidates = result.elision_stats.logged + result.elision_stats.elided
        breakdown.components["logging"] = (
            logged * w.log_append + candidates * w.elision_check
        )
        if result.pcd_stats is not None:
            breakdown.components["pcd"] = (
                result.pcd_stats.entries_replayed * w.pcd_replay_entry
                + result.pcd_stats.pdg_edges * w.pcd_edge
                + result.pcd_stats.cycle_check_visits * w.graph_visit
                + result.pcd_stats.engine_search_visits * w.graph_visit
            )
        breakdown.components["gc"] = (
            logged * w.gc_per_log_entry
            + result.gc_stats.transactions_collected * w.gc_per_tx_scanned
            + result.gc_stats.peak_live_log_entries * w.gc_per_tx_scanned
            + result.icd_stats.live_log_entry_integral * w.gc_live_log_scan
        )
        return breakdown

    def double_checker_first(self, result: FirstRunResult) -> CostBreakdown:
        """Model the first run of multi-run mode (ICD without logging)."""
        breakdown = CostBreakdown(self.baseline_units(result.execution.steps))
        self._icd_components(
            result.icd_stats, result.octet_stats, result.protocol_stats, breakdown
        )
        breakdown.components["gc"] = (
            result.gc_stats.transactions_collected
            * self.weights.gc_per_tx_scanned
        )
        return breakdown
