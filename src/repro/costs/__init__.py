"""Event-cost accounting and the calibrated execution-time model."""

from repro.costs.model import CostBreakdown, CostModel, CostWeights

__all__ = ["CostBreakdown", "CostModel", "CostWeights"]
