"""Velodrome's per-field last-access metadata.

The paper's implementation "adds two words for each object and static
field: one references the transaction to write the field, and the
other references the last transaction(s) (up to one per thread) to
read the field since the last write", plus an extra header word for
the last transaction to release each object's lock.  Synchronization
operations reach this table through the same read/write mapping the
rest of the reproduction uses (acquire = read of the monitor
pseudo-field, release = write), so the release metadata word is simply
the write slot of that pseudo-field.

Metadata references are *weak* in the original (collected transactions
drop out).  :meth:`MetadataTable.purge_collected` reproduces that
behaviour after each transaction-graph collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.transactions import Transaction

Address = Tuple[int, str]


@dataclass
class FieldMetadata:
    """The two metadata words of one field."""

    last_writer: Optional[Transaction] = None
    #: thread name -> last transaction of that thread to read the field
    #: since the last write
    last_readers: Dict[str, Transaction] = field(default_factory=dict)

    def would_change_on_read(self, tx: Transaction) -> bool:
        """Does a read by ``tx`` need a metadata update?"""
        return self.last_readers.get(tx.thread_name) is not tx

    def would_change_on_write(self, tx: Transaction) -> bool:
        """Does a write by ``tx`` need a metadata update?

        A reader entry for ``tx`` itself is subsumed by making ``tx``
        the writer, so it does not force a synchronized update — this
        is the "current transaction is already the last writer or
        reader" case the unsound variant skips synchronization for.
        """
        if self.last_writer is not tx:
            return True
        return any(reader is not tx for reader in self.last_readers.values())


class MetadataTable:
    """Side table mapping field addresses to their metadata words."""

    def __init__(self) -> None:
        self._fields: Dict[Address, FieldMetadata] = {}

    def lookup(self, address: Address) -> FieldMetadata:
        meta = self._fields.get(address)
        if meta is None:
            meta = FieldMetadata()
            self._fields[address] = meta
        return meta

    def peek(self, address: Address) -> Optional[FieldMetadata]:
        return self._fields.get(address)

    def __len__(self) -> int:
        return len(self._fields)

    def purge_collected(self) -> int:
        """Clear weak references to collected transactions."""
        cleared = 0
        for meta in self._fields.values():
            if meta.last_writer is not None and meta.last_writer.collected:
                meta.last_writer = None
                cleared += 1
            dead = [
                t for t, tx in meta.last_readers.items() if tx.collected
            ]
            for thread_name in dead:
                del meta.last_readers[thread_name]
            cleared += len(dead)
        return cleared

    def live_reference_count(self) -> int:
        """How many metadata words currently hold references."""
        count = 0
        for meta in self._fields.values():
            if meta.last_writer is not None:
                count += 1
            count += len(meta.last_readers)
        return count
