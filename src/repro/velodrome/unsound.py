"""The unsound Velodrome variant (Section 5.3).

According to the Velodrome authors, their implementation "eschews
synchronization when metadata does not actually need to change, i.e.,
the current transaction is already the last writer or reader".  The
paper's re-implementation of this variant is unsound: without the
analysis-access critical section, racy accesses can interleave with
metadata updates, losing dependences — and it crashes outright on
avrora9 "due to races accessing metadata".

The simulator serializes operations, so metadata races cannot occur
naturally; we model their *effects* mechanically and deterministically:

* **cost** — the atomic operation and fences are only paid when the
  metadata actually changes (the variant's entire point);
* **lost updates** — when an access updates a field's metadata while a
  *different* thread updated the same field's metadata within the last
  ``race_window`` global events, and the accessing thread holds no
  monitor, the two barriers would have raced on the real hardware; the
  update is dropped with probability ``loss_prob`` (seeded RNG);
* **crashes** — if the number of racy update pairs on any single field
  exceeds ``crash_threshold``, a :class:`MetadataRaceError` is raised,
  reproducing the avrora9 crash mode (heavily contended metadata).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ReproError
from repro.runtime.events import AccessEvent
from repro.velodrome.checker import VelodromeChecker


class MetadataRaceError(ReproError):
    """The unsound variant corrupted its metadata beyond recovery."""

    def __init__(self, address: Tuple[int, str], races: int) -> None:
        super().__init__(
            f"metadata race storm on field {address}: {races} racy update "
            "pairs (the unsound variant crashes under this contention)"
        )
        self.address = address
        self.races = races


class UnsoundVelodrome(VelodromeChecker):
    """Velodrome without analysis-access atomicity.

    Accepts all :class:`VelodromeChecker` arguments plus:

    Args:
        seed: RNG seed for the lost-update model.
        loss_prob: probability a racy metadata update is lost.
        race_window: how close (in global event sequence numbers) two
            different-thread updates must be to count as racy.
        crash_threshold: racy-pair count on one field that crashes the
            analysis (``None`` disables crashing).
    """

    def __init__(
        self,
        spec,
        *,
        seed: int = 0,
        loss_prob: float = 0.05,
        race_window: int = 3,
        crash_threshold: Optional[int] = None,
        **kwargs,
    ) -> None:
        super().__init__(spec, **kwargs)
        self._rng = random.Random(seed)
        self.loss_prob = loss_prob
        self.race_window = race_window
        self.crash_threshold = crash_threshold
        #: address -> (seq, thread) of the last metadata update
        self._last_update: Dict[Tuple[int, str], Tuple[int, str]] = {}
        self._race_counts: Dict[Tuple[int, str], int] = {}

    # ------------------------------------------------------------------
    # cost: pay for synchronization only when metadata changes
    # ------------------------------------------------------------------
    def _enter_critical_section(self, event: AccessEvent, tx, address) -> None:
        meta = self.metadata.lookup(address)
        changes = (
            meta.would_change_on_read(tx)
            if event.is_read()
            else meta.would_change_on_write(tx)
        )
        if changes:
            self.stats.atomic_operations += 1
            self.stats.memory_fences += 1

    def _exit_critical_section(self, event: AccessEvent, tx, address) -> None:
        """No releasing fence: the variant runs unsynchronized."""

    # ------------------------------------------------------------------
    # unsoundness: racy updates can be lost, storms crash
    # ------------------------------------------------------------------
    def _metadata_update_allowed(self, event: AccessEvent, tx, address) -> bool:
        last = self._last_update.get(address)
        self._last_update[address] = (event.seq, event.thread_name)
        if last is None:
            return True
        last_seq, last_thread = last
        racy = (
            last_thread != event.thread_name
            and event.seq - last_seq <= self.race_window
            and not self.view.holds_any_lock(event.thread_name)
        )
        if not racy:
            return True
        races = self._race_counts.get(address, 0) + 1
        self._race_counts[address] = races
        if self.crash_threshold is not None and races > self.crash_threshold:
            raise MetadataRaceError(address, races)
        if self._rng.random() < self.loss_prob:
            self.stats.lost_metadata_updates += 1
            return False
        return True
