"""The Velodrome online checker.

Transactions are demarcated exactly as in DoubleChecker (the shared
:class:`~repro.core.transactions.TransactionManager`), and dependence
graphs are represented the same way (edges on the transaction objects)
— matching Section 4's statement that the two implementations share
features as much as possible.  What differs is the work done per
access: Velodrome detects cross-thread dependences *precisely* at
every access, updates the field's last-access metadata inside a
critical section (one atomic operation + fences per instrumented
access), adds edges eagerly, and runs a cycle check after every new
edge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.blame import blamed_nodes
from repro.core.gc import GcStats, TransactionCollector
from repro.core.pdg import PdgEdge
from repro.core.reports import ViolationRecord, ViolationSummary
from repro.core.transactions import (
    IdgEdge,
    Transaction,
    TransactionManager,
    TransactionStats,
)
from repro.errors import OutOfMemoryBudget
from repro.graph.chains import ChainCollapsedGraph, ChainFrontier
from repro.graph.engine import GraphEngineStats
from repro.obs.registry import publish_stats, recorder as obs_recorder
from repro.runtime.events import AccessEvent
from repro.runtime.executor import ExecutionResult, Executor
from repro.runtime.listeners import ExecutionListener
from repro.runtime.program import Program
from repro.runtime.scheduler import Scheduler
from repro.runtime.view import ExecutorView, NullView, RuntimeView
from repro.spec.specification import AtomicitySpecification
from repro.velodrome.metadata import MetadataTable


@dataclass
class VelodromeStats:
    """Access-level work counters (feed the cost model)."""

    instrumented_accesses: int = 0
    atomic_operations: int = 0
    memory_fences: int = 0
    metadata_updates: int = 0
    edges: int = 0
    cycle_checks: int = 0
    cycle_check_visits: int = 0
    #: checks resolved by the engine's component certificate alone —
    #: the endpoints sat in different components, so no traversal ran
    cycle_checks_certified: int = 0
    cycles_found: int = 0
    array_accesses_skipped: int = 0
    lost_metadata_updates: int = 0
    #: the engine's live counters (linked when the engine is active);
    #: ``engine_search_visits`` reads through, so it cannot drift
    engine: Optional[GraphEngineStats] = None

    @property
    def engine_search_visits(self) -> int:
        """Nodes visited by the engine's reorder/contraction searches
        (0 when the engine is disabled)."""
        return 0 if self.engine is None else self.engine.search_visits


@dataclass
class VelodromeResult:
    """Outcome of one execution under Velodrome."""

    violations: ViolationSummary
    execution: ExecutionResult
    stats: VelodromeStats
    tx_stats: TransactionStats
    gc_stats: GcStats
    elapsed_seconds: float = 0.0

    @property
    def blamed_methods(self) -> set:
        return self.violations.blamed_methods()


class VelodromeChecker(ExecutionListener):
    """Sound and precise online conflict-serializability checking.

    Args:
        spec: the atomicity specification.
        monitor_regular / monitor_unary: instrumentation filters (used
            when Velodrome serves as the *second run* of multi-run
            mode, a variant Section 5.3 evaluates at 2.9X).
        instrument_arrays / array_granularity_object: the Section 5.4
            array experiment knobs (array-granularity metadata makes
            the analysis imprecise, so the harness disables cycle
            detection when it sets this).
        cycle_detection: run the per-edge cycle check.
        memory_budget: cap on live transactions (out-of-memory model).
        gc_interval: transaction-collector cadence.
    """

    def __init__(
        self,
        spec: AtomicitySpecification,
        *,
        monitor_regular: Optional[Callable[[str], bool]] = None,
        monitor_unary: bool = True,
        instrument_arrays: bool = False,
        array_granularity_object: bool = False,
        cycle_detection: bool = True,
        memory_budget: Optional[int] = None,
        gc_interval: Optional[int] = 64,
        use_engine: bool = True,
    ) -> None:
        self.spec = spec
        self.instrument_arrays = instrument_arrays
        self.array_granularity_object = array_granularity_object
        self.cycle_detection = cycle_detection
        self.memory_budget = memory_budget
        self.gc_interval = gc_interval
        self.view: RuntimeView = NullView()

        self.stats = VelodromeStats()
        self.metadata = MetadataTable()
        self.violations = ViolationSummary()
        self.tx_manager = TransactionManager(
            spec,
            monitor_regular=monitor_regular,
            monitor_unary=monitor_unary,
            on_transaction_start=self._transaction_started,
            on_transaction_end=self._transaction_ended,
        )
        self.collector = TransactionCollector(self.tx_manager)
        self._edge_order = 0
        #: creation order of the implicit intra-thread edge into each
        #: transaction (the edge-counter value at transaction start)
        self._intra_order: Dict[int, int] = {}
        self._reported_cycles: Set[frozenset] = set()
        self._tx_ends_since_gc = 0
        #: incremental certificate for the per-edge cycle checks;
        #: ``use_engine=False`` restores the original whole-graph DFS
        #: (the analysis-throughput benchmark's baseline arm)
        self.engine: Optional[ChainCollapsedGraph] = (
            ChainCollapsedGraph() if use_engine and cycle_detection else None
        )
        if self.engine is not None:
            self.stats.engine = self.engine.graph.stats
        self._obs = obs_recorder()

    # ------------------------------------------------------------------
    # ExecutionListener
    # ------------------------------------------------------------------
    def on_method_enter(self, thread_name: str, method: str, depth: int) -> None:
        self.tx_manager.on_method_enter(thread_name, method, depth)

    def on_method_exit(self, thread_name: str, method: str, depth: int) -> None:
        self.tx_manager.on_method_exit(thread_name, method, depth)

    def on_thread_end(self, thread_name: str) -> None:
        self.tx_manager.on_thread_end(thread_name)

    def on_execution_end(self) -> None:
        self.tx_manager.finish_all()
        self.publish_metrics()

    def publish_metrics(self) -> None:
        """Publish every counter this analysis owns onto the registry."""
        obs = self._obs
        if not obs.enabled:
            return
        publish_stats(obs, "velodrome", self.stats)
        obs.inc(
            "velodrome.engine_search_visits", self.stats.engine_search_visits
        )
        publish_stats(obs, "transactions", self.tx_manager.stats)
        publish_stats(
            obs,
            "gc",
            self.collector.stats,
            gauges=("peak_live_transactions", "peak_live_log_entries"),
        )
        if self.engine is not None:
            self.engine.graph.stats.publish(obs, "velodrome.engine")

    def on_access(self, event: AccessEvent) -> None:
        if event.is_array and not self.instrument_arrays:
            self.stats.array_accesses_skipped += 1
            return
        tx = self.tx_manager.transaction_for_access(event)
        if tx is None:
            return
        self.stats.instrumented_accesses += 1
        address = (
            event.object_address
            if (event.is_array and self.array_granularity_object)
            else event.address
        )
        self._enter_critical_section(event, tx, address)
        try:
            self._analyze_access(event, tx, address)
        finally:
            self._exit_critical_section(event, tx, address)

    # ------------------------------------------------------------------
    # synchronization cost model hooks (overridden by the unsound variant)
    # ------------------------------------------------------------------
    def _enter_critical_section(self, event: AccessEvent, tx, address) -> None:
        """Lock the field's metadata word: one atomic op + fence."""
        self.stats.atomic_operations += 1
        self.stats.memory_fences += 1

    def _exit_critical_section(self, event: AccessEvent, tx, address) -> None:
        """Unlock: a releasing store with a fence."""
        self.stats.memory_fences += 1

    def _metadata_update_allowed(self, event: AccessEvent, tx, address) -> bool:
        """The sound checker never loses an update."""
        return True

    # ------------------------------------------------------------------
    # the per-access analysis (Figure 5 rules, applied online)
    # ------------------------------------------------------------------
    def _analyze_access(
        self, event: AccessEvent, tx: Transaction, address: Tuple[int, str]
    ) -> None:
        meta = self.metadata.lookup(address)
        new_edges: List[IdgEdge] = []

        writer = meta.last_writer
        if writer is not None and writer.thread_name != tx.thread_name:
            edge = self._add_edge(writer, tx)
            if edge is not None:
                new_edges.append(edge)

        if event.is_read():
            if self._metadata_update_allowed(event, tx, address):
                if meta.last_readers.get(tx.thread_name) is not tx:
                    self.stats.metadata_updates += 1
                meta.last_readers[tx.thread_name] = tx
        else:
            # snapshot: adding an edge can end an interrupted unary
            # transaction, whose GC purges weak metadata references
            for thread_name, reader in list(meta.last_readers.items()):
                if thread_name != tx.thread_name:
                    edge = self._add_edge(reader, tx)
                    if edge is not None:
                        new_edges.append(edge)
            if self._metadata_update_allowed(event, tx, address):
                self.stats.metadata_updates += 1
                meta.last_readers.clear()
                meta.last_writer = tx

        if self.cycle_detection:
            for edge in new_edges:
                self._check_cycle(edge)

    def _add_edge(self, src: Transaction, dst: Transaction) -> Optional[IdgEdge]:
        if src is dst or src.collected:
            return None
        if any(e.dst is dst for e in src.out_edges):
            return None  # the edge already exists; do nothing
        self._edge_order += 1
        edge = IdgEdge(src, dst, "velodrome", self._edge_order)
        src.out_edges.append(edge)
        dst.in_edges.append(edge)
        src.edge_touched = True
        dst.edge_touched = True
        self.stats.edges += 1
        if self.engine is not None:
            self.engine.note_cross_edge(
                src.tx_id, src.thread_name, dst.tx_id, dst.thread_name
            )
        # eagerly end an interrupted unary transaction on the source
        # side (the destination is the accessor, mid-access)
        self.tx_manager.end_if_interrupted_unary(src)
        return edge

    # ------------------------------------------------------------------
    # cycle detection: DFS for a path dst ⇝ src over cross edges and the
    # intra-thread chains (cycles may include intra edges: a transaction
    # overlapping two transactions of another thread closes through
    # program order)
    # ------------------------------------------------------------------
    def _check_cycle(self, closing: IdgEdge) -> None:
        self.stats.cycle_checks += 1
        target = closing.src
        start = closing.dst
        membership: Optional[ChainFrontier] = None
        if self.engine is not None:
            if not self.engine.same_component(start.tx_id, target.tx_id):
                # certified acyclic: the engine already has the closing
                # edge, so a dst ⇝ src path would have merged the two
                # components — different components means no cycle
                self.stats.cycle_checks_certified += 1
                return
            # restricting the DFS to the component's frontier cannot
            # change the outcome: every node on a dst ⇝ src path lies
            # on a cycle through the closing edge (hence in the
            # component, or an admitted chain interior of it), and a
            # visited node outside the frontier can never reach back
            # into it, so discovery order — and the reported cycle —
            # are identical to the whole-graph search
            membership = self.engine.frontier(start.tx_id)
        discovered: Dict[Transaction, Tuple[Transaction, Optional[IdgEdge]]] = {}
        stack = [start]
        seen = {start}
        found = False
        while stack and not found:
            node = stack.pop()
            steps: List[Tuple[Transaction, Optional[IdgEdge]]] = [
                (e.dst, e) for e in node.out_edges
            ]
            if node.intra_next is not None:
                steps.append((node.intra_next, None))
            for succ, via in steps:
                if succ in seen:
                    continue
                if membership is not None and not membership.admits(
                    succ.thread_name, succ.tx_id
                ):
                    continue
                seen.add(succ)
                discovered[succ] = (node, via)
                if succ is target:
                    found = True
                    break
                stack.append(succ)
        self.stats.cycle_check_visits += len(seen)
        if not found:
            return
        self._report_cycle(closing, discovered, start, target)

    def _report_cycle(
        self,
        closing: IdgEdge,
        discovered: Dict[Transaction, Tuple[Transaction, Optional[IdgEdge]]],
        start: Transaction,
        target: Transaction,
    ) -> None:
        # reconstruct the path start ⇝ target, then append the closing edge
        steps: List[Tuple[Transaction, Transaction, int]] = []
        node = target
        while node is not start:
            prev, via = discovered[node]
            order = via.order if via is not None else self._intra_order.get(
                node.tx_id, 0
            )
            steps.append((prev, node, order))
            node = prev
        steps.reverse()
        steps.append((closing.src, closing.dst, closing.order))

        cycle_edges = [PdgEdge(s.tx_id, d.tx_id, order) for s, d, order in steps]
        key = frozenset((e.src, e.dst) for e in cycle_edges)
        if key in self._reported_cycles:
            return
        self._reported_cycles.add(key)
        self.stats.cycles_found += 1

        tx_by_id = {s.tx_id: s for s, _d, _o in steps}
        for _s, d, _o in steps:
            tx_by_id[d.tx_id] = d
        blamed = blamed_nodes(cycle_edges)
        # prefer blaming a regular transaction (see repro.core.pcd)
        regular = [b for b in blamed if not tx_by_id[b].is_unary]
        blamed_id = (regular or blamed)[0]
        blamed_tx = tx_by_id[blamed_id]
        cycle_ids = tuple(e.src for e in cycle_edges)
        self.violations.add(
            ViolationRecord(
                blamed_method=blamed_tx.method,
                blamed_tx_id=blamed_id,
                thread_name=blamed_tx.thread_name,
                cycle_methods=tuple(tx_by_id[i].method for i in cycle_ids),
                cycle_tx_ids=cycle_ids,
                detector="velodrome",
            )
        )

    # ------------------------------------------------------------------
    # transaction lifecycle, GC, memory budget
    # ------------------------------------------------------------------
    def _transaction_started(self, tx: Transaction) -> None:
        self._intra_order[tx.tx_id] = self._edge_order

    def _transaction_ended(self, tx: Transaction) -> None:
        self._tx_ends_since_gc += 1
        if (
            self.gc_interval is not None
            and self._tx_ends_since_gc >= self.gc_interval
        ):
            self._tx_ends_since_gc = 0
            self.collector.note_peak()
            population = self.tx_manager.all_transactions
            self.collector.collect()
            if self.engine is not None:
                self.engine.forget(
                    t.tx_id for t in population if t.collected
                )
            self.metadata.purge_collected()
            live = {t.tx_id for t in self.tx_manager.all_transactions}
            self._intra_order = {
                k: v for k, v in self._intra_order.items() if k in live
            }
        if self.memory_budget is not None:
            used = len(self.tx_manager.all_transactions)
            if used > self.memory_budget:
                raise OutOfMemoryBudget("Velodrome", used, self.memory_budget)

    # ------------------------------------------------------------------
    def bind_view(self, view: RuntimeView) -> None:
        self.view = view

    def run(
        self, program: Program, scheduler: Optional[Scheduler] = None
    ) -> VelodromeResult:
        """Execute ``program`` under this checker."""
        started = time.perf_counter()
        executor = Executor(program, scheduler, [self])
        self.bind_view(ExecutorView(executor))
        execution = executor.run()
        elapsed = time.perf_counter() - started
        return VelodromeResult(
            violations=self.violations,
            execution=execution,
            stats=self.stats,
            tx_stats=self.tx_manager.stats,
            gc_stats=self.collector.stats,
            elapsed_seconds=elapsed,
        )
