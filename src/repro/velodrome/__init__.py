"""Velodrome (Flanagan, Freund & Yi, PLDI 2008) — the baseline.

A sound and precise online conflict-serializability checker: it
maintains, for every field, the last transaction to write it and each
thread's last transaction to read it; detects cross-thread dependences
at every access; adds edges to a transaction dependence graph; and
checks for a cycle whenever an edge is added.  To keep analysis and
access atomic in the face of races, every instrumented access executes
inside a small critical section that locks a word of the field's
metadata — the dominant cost the paper measures (82% of Velodrome's
overhead in the authors' implementation).

:class:`~repro.velodrome.unsound.UnsoundVelodrome` reproduces the
variant that skips synchronization when metadata does not need to
change (Section 5.3): cheaper, but able to miss dependences — and to
crash — under metadata races.
"""

from repro.velodrome.checker import VelodromeChecker, VelodromeResult, VelodromeStats
from repro.velodrome.metadata import FieldMetadata, MetadataTable
from repro.velodrome.unsound import MetadataRaceError, UnsoundVelodrome

__all__ = [
    "FieldMetadata",
    "MetadataRaceError",
    "MetadataTable",
    "UnsoundVelodrome",
    "VelodromeChecker",
    "VelodromeResult",
    "VelodromeStats",
]
