"""Replaying traces through the online checkers."""

import pytest

from repro.core.icd import ICD
from repro.core.pcd import PCD
from repro.core.reports import ViolationSummary
from repro.runtime.scheduler import RandomScheduler
from repro.trace.recorder import Trace, record_execution
from repro.trace.replay import replay_trace
from repro.velodrome.checker import VelodromeChecker

from tests.util import counter_program, spec_for


@pytest.fixture(scope="module")
def trace_and_spec():
    program = counter_program(threads=3, iterations=12)
    spec = spec_for(program)
    trace = record_execution(program, RandomScheduler(seed=8, switch_prob=0.7))
    return trace, spec


def test_velodrome_offline_equals_online(trace_and_spec):
    trace, spec = trace_and_spec
    online = VelodromeChecker(spec)
    program = counter_program(threads=3, iterations=12)
    online_result = online.run(program, RandomScheduler(seed=8, switch_prob=0.7))

    offline = VelodromeChecker(spec)
    replay_trace(trace, [offline])
    assert offline.violations.blamed_methods() == online_result.blamed_methods
    assert offline.stats.edges == online_result.stats.edges


def test_doublechecker_pipeline_over_replay(trace_and_spec):
    trace, spec = trace_and_spec
    violations = ViolationSummary()
    pcd = PCD()
    icd = ICD(spec, on_scc=lambda c: violations.extend(pcd.process(c)))
    replay_trace(trace, [icd])
    assert violations.blamed_methods() == {"rmw"}


def test_replay_is_deterministic(trace_and_spec):
    trace, spec = trace_and_spec

    def run():
        checker = VelodromeChecker(spec)
        replay_trace(trace, [checker])
        return (checker.stats.edges, frozenset(checker.violations.blamed_methods()))

    assert run() == run()


def test_replay_after_serialization(trace_and_spec, tmp_path):
    trace, spec = trace_and_spec
    path = tmp_path / "t.jsonl"
    trace.save(str(path))
    restored = Trace.load(str(path))
    checker = VelodromeChecker(spec)
    replay_trace(restored, [checker])
    assert checker.violations.blamed_methods() == {"rmw"}


def test_unknown_record_kind_rejected():
    with pytest.raises(ValueError):
        replay_trace(Trace([("??", 1)]), [])
