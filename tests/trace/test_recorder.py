"""Trace recording and serialization."""

import os

import pytest

from repro.errors import TraceFormatError
from repro.runtime.scheduler import RandomScheduler
from repro.trace.recorder import ACCESS, Trace, record_execution

from tests.util import counter_program


def test_records_all_event_kinds():
    trace = record_execution(
        counter_program(threads=2, iterations=3),
        RandomScheduler(seed=1),
    )
    kinds = {r[0] for r in trace.records}
    assert kinds == {"a", "m+", "m-", "t+", "t-"}


def test_access_count_matches_execution():
    from repro.runtime.executor import Executor
    from repro.trace.recorder import TraceRecorder

    program = counter_program(threads=2, iterations=3)
    recorder = TraceRecorder()
    result = Executor(program, RandomScheduler(seed=1), [recorder]).run()
    assert recorder.trace.access_count() == result.access_count


def test_jsonl_round_trip():
    trace = record_execution(
        counter_program(threads=2, iterations=3), RandomScheduler(seed=2)
    )
    restored = Trace.from_jsonl(trace.to_jsonl())
    assert restored.records == trace.records


def test_save_and_load(tmp_path):
    trace = record_execution(
        counter_program(threads=2, iterations=2), RandomScheduler(seed=3)
    )
    path = tmp_path / "run.trace.jsonl"
    trace.save(str(path))
    assert Trace.load(str(path)).records == trace.records


def test_access_records_carry_field_identity():
    trace = record_execution(
        counter_program(threads=1, iterations=1), RandomScheduler(seed=1)
    )
    accesses = [r for r in trace.records if r[0] == ACCESS]
    fields = {r[5] for r in accesses}
    assert "value" in fields


def test_catalog_round_trip():
    """Save/load identity over recorded catalog runs (real workloads
    exercise sync pseudo-accesses and fork/join records too)."""
    from repro.workloads.catalog import build

    for name in ("hedc", "philo"):
        trace = record_execution(build(name), RandomScheduler(seed=7))
        restored = Trace.from_jsonl(trace.to_jsonl())
        assert restored.records == trace.records


class TestCorruptLineRejection:
    def test_invalid_json(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            Trace.from_jsonl('["t+", "A"]\n{not json')

    def test_non_array_record(self):
        with pytest.raises(TraceFormatError, match="line 1"):
            Trace.from_jsonl('{"kind": "a"}')

    def test_unknown_kind(self):
        with pytest.raises(TraceFormatError, match="unknown record kind"):
            Trace.from_jsonl('["zz", 1, 2]')

    def test_truncated_access_record(self):
        trace = record_execution(
            counter_program(threads=2, iterations=2), RandomScheduler(seed=4)
        )
        lines = trace.to_jsonl().splitlines()
        index = next(i for i, l in enumerate(lines) if l.startswith('["a"'))
        lines[index] = lines[index].rsplit(",", 1)[0] + "]"
        with pytest.raises(TraceFormatError, match=f"line {index + 1}"):
            Trace.from_jsonl("\n".join(lines))

    def test_wrong_method_record_arity(self):
        with pytest.raises(TraceFormatError, match="expected 4"):
            Trace.from_jsonl('["m+", "A", "worker"]')

    def test_load_names_line_number(self, tmp_path):
        path = tmp_path / "bad.trace.jsonl"
        path.write_text('["t+", "A"]\n["a", 1]\n')
        with pytest.raises(TraceFormatError) as excinfo:
            Trace.load(str(path))
        assert excinfo.value.line_number == 2


class TestAtomicSave:
    def test_failed_save_preserves_existing_file(self, tmp_path, monkeypatch):
        trace = record_execution(
            counter_program(threads=2, iterations=2), RandomScheduler(seed=5)
        )
        path = tmp_path / "run.trace.jsonl"
        trace.save(str(path))
        original = path.read_text()

        def boom(self):
            raise OSError("disk full")

        monkeypatch.setattr(Trace, "to_jsonl", boom)
        with pytest.raises(OSError):
            trace.save(str(path))
        assert path.read_text() == original

    def test_no_temp_file_left_behind(self, tmp_path):
        trace = record_execution(
            counter_program(threads=1, iterations=1), RandomScheduler(seed=6)
        )
        path = tmp_path / "run.trace.jsonl"
        trace.save(str(path))
        assert os.listdir(tmp_path) == ["run.trace.jsonl"]
