"""Trace recording and serialization."""

from repro.runtime.scheduler import RandomScheduler
from repro.trace.recorder import ACCESS, Trace, record_execution

from tests.util import counter_program


def test_records_all_event_kinds():
    trace = record_execution(
        counter_program(threads=2, iterations=3),
        RandomScheduler(seed=1),
    )
    kinds = {r[0] for r in trace.records}
    assert kinds == {"a", "m+", "m-", "t+", "t-"}


def test_access_count_matches_execution():
    from repro.runtime.executor import Executor
    from repro.trace.recorder import TraceRecorder

    program = counter_program(threads=2, iterations=3)
    recorder = TraceRecorder()
    result = Executor(program, RandomScheduler(seed=1), [recorder]).run()
    assert recorder.trace.access_count() == result.access_count


def test_jsonl_round_trip():
    trace = record_execution(
        counter_program(threads=2, iterations=3), RandomScheduler(seed=2)
    )
    restored = Trace.from_jsonl(trace.to_jsonl())
    assert restored.records == trace.records


def test_save_and_load(tmp_path):
    trace = record_execution(
        counter_program(threads=2, iterations=2), RandomScheduler(seed=3)
    )
    path = tmp_path / "run.trace.jsonl"
    trace.save(str(path))
    assert Trace.load(str(path)).records == trace.records


def test_access_records_carry_field_identity():
    trace = record_execution(
        counter_program(threads=1, iterations=1), RandomScheduler(seed=1)
    )
    accesses = [r for r in trace.records if r[0] == ACCESS]
    fields = {r[5] for r in accesses}
    assert "value" in fields
