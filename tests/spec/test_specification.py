"""Atomicity specifications."""

import pytest

from repro.errors import SpecificationError
from repro.runtime.ops import Compute, Wait
from repro.runtime.program import Program
from repro.spec.specification import AtomicitySpecification


def sample_program():
    program = Program("p")
    box = program.add_global_object("box")

    def main(ctx):
        yield Compute(1)

    def helper(ctx):
        yield Compute(1)

    def waiter(ctx):
        yield Wait(box)

    program.method(main, name="main")
    program.method(helper, name="helper")
    program.method(waiter, name="waiter", interrupting=True)
    program.add_thread("T", "main")
    return program


class TestInitial:
    def test_excludes_entry_and_interrupting(self):
        spec = AtomicitySpecification.initial(sample_program())
        assert not spec.is_atomic("main")
        assert not spec.is_atomic("waiter")
        assert spec.is_atomic("helper")

    def test_excludes_marked_entries(self):
        program = sample_program()
        program.mark_entry("helper")
        spec = AtomicitySpecification.initial(program)
        assert not spec.is_atomic("helper")

    def test_empty_spec(self):
        spec = AtomicitySpecification.empty(sample_program())
        assert spec.atomic_methods() == []


class TestManipulation:
    def test_exclude_returns_new_spec(self):
        spec = AtomicitySpecification.initial(sample_program())
        refined = spec.exclude(["helper"])
        assert spec.is_atomic("helper")
        assert not refined.is_atomic("helper")

    def test_exclude_unknown_method_rejected(self):
        spec = AtomicitySpecification.initial(sample_program())
        with pytest.raises(SpecificationError):
            spec.exclude(["ghost"])

    def test_intersect(self):
        program = sample_program()
        base = AtomicitySpecification.initial(program)
        a = base.exclude(["helper"])
        b = base  # helper atomic here
        merged = a.intersect(b)
        assert not merged.is_atomic("helper")

    def test_intersect_different_programs_rejected(self):
        a = AtomicitySpecification.initial(sample_program())
        other = Program("q")

        def m(ctx):
            yield Compute(1)

        other.method(m, name="m")
        other.add_thread("T", "m")
        b = AtomicitySpecification.initial(other)
        with pytest.raises(SpecificationError):
            a.intersect(b)

    def test_runtime_pseudo_methods_never_atomic(self):
        spec = AtomicitySpecification.initial(sample_program())
        assert not spec.is_atomic("<unary>")
        assert not spec.is_atomic("<thread-start>")

    def test_len_and_describe(self):
        spec = AtomicitySpecification.initial(sample_program())
        assert len(spec) == 1
        assert "1 atomic" in spec.describe()
