"""Iterative refinement (Figure 6)."""

from repro.core.doublechecker import DoubleChecker
from repro.runtime.scheduler import RandomScheduler
from repro.spec.refinement import iterative_refinement
from repro.spec.specification import AtomicitySpecification

from tests.util import counter_program, spec_for


class TestLoopMechanics:
    def _spec(self):
        methods = frozenset({"a", "b", "c", "entry"})
        return AtomicitySpecification(methods, frozenset({"entry"}))

    def test_converges_when_no_blames(self):
        result = iterative_refinement(self._spec(), lambda spec, t: set())
        assert result.converged
        assert result.violation_count() == 0
        assert result.final_spec is result.initial_spec

    def test_excludes_blamed_methods_step_by_step(self):
        # blame 'a' while it is atomic, then 'b', then nothing
        def runner(spec, trial):
            if spec.is_atomic("a"):
                return {"a"}
            if spec.is_atomic("b"):
                return {"b"}
            return set()

        result = iterative_refinement(self._spec(), runner, trials_per_step=2)
        assert result.converged
        assert result.all_blamed == {"a", "b"}
        assert not result.final_spec.is_atomic("a")
        assert not result.final_spec.is_atomic("b")
        assert result.final_spec.is_atomic("c")
        assert len(result.steps) == 2

    def test_blames_outside_spec_ignored(self):
        def runner(spec, trial):
            return {"entry"}  # already excluded

        result = iterative_refinement(self._spec(), runner)
        assert result.converged
        assert result.violation_count() == 0

    def test_union_across_trials_within_step(self):
        def runner(spec, trial):
            if not spec.is_atomic("a"):
                return set()
            return {"a"} if trial % 2 == 0 else {"b"}

        result = iterative_refinement(self._spec(), runner, trials_per_step=2)
        assert result.steps[0].newly_blamed == {"a", "b"}

    def test_max_steps_guard(self):
        # a runner that always blames something that is still atomic
        def runner(spec, trial):
            atomic = spec.atomic_methods()
            return {atomic[0]} if atomic else set()

        result = iterative_refinement(
            self._spec(), runner, trials_per_step=1, max_steps=2
        )
        assert not result.converged

    def test_spec_at_fraction(self):
        def runner(spec, trial):
            for m in ("a", "b", "c"):
                if spec.is_atomic(m):
                    return {m}
            return set()

        result = iterative_refinement(self._spec(), runner, trials_per_step=1)
        start = result.spec_at_fraction(0.0)
        half = result.spec_at_fraction(0.5)
        final = result.spec_at_fraction(1.0)
        assert len(start) > len(half) > len(final) or len(start) >= len(half)
        assert final.atomic_methods() == []


class TestEndToEnd:
    def test_refinement_removes_violating_method(self):
        trial_counter = [0]

        def runner(spec, trial):
            program = counter_program(threads=2, iterations=12)
            # the refined spec applies to the same method universe
            spec = AtomicitySpecification(
                frozenset(program.method_names()),
                spec.excluded & frozenset(program.method_names())
                | frozenset(program.entry_methods()),
            )
            checker = DoubleChecker(spec)
            result = checker.run_single(
                program, RandomScheduler(seed=trial, switch_prob=0.7)
            )
            return result.blamed_methods

        program = counter_program(threads=2, iterations=12)
        result = iterative_refinement(
            spec_for(program), runner, trials_per_step=3
        )
        assert result.converged
        assert result.all_blamed == {"rmw"}
        assert not result.final_spec.is_atomic("rmw")
