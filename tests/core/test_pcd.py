"""PCD: topological log replay and precise cycle detection."""

import pytest

from repro.core.pcd import PCD
from repro.core.rwlog import ReadWriteLog
from repro.core.transactions import IdgEdge, Transaction
from repro.errors import OutOfMemoryBudget
from repro.runtime.events import AccessKind

R, W = AccessKind.READ, AccessKind.WRITE


def make_tx(tx_id, thread, method=None):
    tx = Transaction(tx_id, thread, method or f"m{tx_id}", False)
    tx.finished = True
    tx.log = ReadWriteLog()
    return tx


def log(tx, kind, oid, field, seq):
    tx.log.append_access(kind, oid, field, seq, "site")


_order = [0]


def link(src, dst, seq):
    _order[0] += 1
    edge = IdgEdge(src, dst, "test", _order[0])
    edge.src_log_index = src.log.append_mark(edge.order, True, seq)
    edge.dst_log_index = dst.log.append_mark(edge.order, False, seq)
    src.out_edges.append(edge)
    dst.in_edges.append(edge)


class TestCycles:
    def test_classic_write_read_cycle(self):
        a = make_tx(1, "T1", "methodA")
        b = make_tx(2, "T2", "methodB")
        log(a, W, 100, "f", 1)
        log(b, R, 100, "f", 2)
        log(b, W, 100, "f", 3)
        log(a, R, 100, "f", 4)
        violations = PCD().process([a, b])
        assert len(violations) == 1
        record = violations[0]
        assert set(record.cycle_tx_ids) == {1, 2}
        # methodA kept running after its effects escaped: it is blamed
        assert record.blamed_method == "methodA"

    def test_no_cycle_for_one_way_dependence(self):
        a = make_tx(1, "T1")
        b = make_tx(2, "T2")
        log(a, W, 100, "f", 1)
        log(b, R, 100, "f", 2)
        assert PCD().process([a, b]) == []

    def test_field_granularity_rules_out_icd_false_positive(self):
        """Different fields of one object: ICD (object granularity)
        would cycle these; PCD must not."""
        a = make_tx(1, "T1")
        b = make_tx(2, "T2")
        log(a, W, 100, "f", 1)
        log(b, W, 100, "g", 2)
        log(b, R, 100, "g", 3)
        log(a, R, 100, "f", 4)
        assert PCD().process([a, b]) == []

    def test_read_write_conflict_cycle(self):
        """R->W then W->R in the other direction."""
        a = make_tx(1, "T1")
        b = make_tx(2, "T2")
        log(a, R, 100, "f", 1)   # A reads f
        log(b, W, 100, "f", 2)   # B writes f: R->W edge A->B
        log(b, R, 100, "g", 3)   # B reads g
        log(a, W, 100, "g", 4)   # A writes g: R->W edge B->A -> cycle
        violations = PCD().process([a, b])
        assert len(violations) == 1

    def test_three_party_cycle(self):
        a, b, c = make_tx(1, "T1"), make_tx(2, "T2"), make_tx(3, "T3")
        log(a, W, 1, "x", 1)
        log(b, R, 1, "x", 2)   # a -> b
        log(b, W, 2, "y", 3)
        log(c, R, 2, "y", 4)   # b -> c
        log(c, W, 3, "z", 5)
        log(a, R, 3, "z", 6)   # c -> a: cycle
        violations = PCD().process([a, b, c])
        assert len(violations) == 1
        assert set(violations[0].cycle_tx_ids) == {1, 2, 3}

    def test_same_thread_transactions_never_create_cross_edges(self):
        a1 = make_tx(1, "T1")
        a2 = make_tx(2, "T1")
        log(a1, W, 1, "f", 1)
        log(a2, R, 1, "f", 2)
        assert PCD().process([a1, a2]) == []

    def test_duplicate_cycles_reported_once(self):
        pcd = PCD()
        a = make_tx(1, "T1")
        b = make_tx(2, "T2")
        log(a, W, 1, "f", 1)
        log(b, R, 1, "f", 2)
        log(b, W, 1, "f", 3)
        log(a, R, 1, "f", 4)
        first = pcd.process([a, b])
        second = pcd.process([a, b])  # ICD may re-submit a grown SCC
        assert len(first) == 1 and second == []


class TestReplayOrdering:
    def test_edge_marks_constrain_merge(self):
        """A sink mark must wait for its source even when sequence
        numbers would tempt the merge to run ahead."""
        a = make_tx(1, "T1")
        b = make_tx(2, "T2")
        log(a, W, 1, "f", 10)
        link(a, b, 11)          # A's state change happened before B's read
        log(b, R, 1, "f", 12)
        pcd = PCD()
        pcd.process([a, b])
        assert pcd.stats.order_fallbacks == 0
        assert pcd.stats.entries_replayed == 4  # 2 accesses + 2 marks

    def test_marks_for_out_of_component_edges_ignored(self):
        a = make_tx(1, "T1")
        b = make_tx(2, "T2")
        outsider = make_tx(3, "T3")
        log(a, W, 1, "f", 1)
        link(a, outsider, 2)    # edge leaves the component
        log(b, R, 1, "f", 3)
        pcd = PCD()
        assert pcd.process([a, b]) == []
        assert pcd.stats.order_fallbacks == 0

    def test_conflicting_accesses_replayed_in_execution_order(self):
        a = make_tx(1, "T1")
        b = make_tx(2, "T2")
        # true order: B writes f (5), A writes f (6): dependence B -> A only
        log(b, W, 1, "f", 5)
        log(a, W, 1, "f", 6)
        pcd = PCD()
        assert pcd.process([a, b]) == []
        assert pcd.stats.pdg_edges == 1

    def test_late_created_marks_never_reorder_accesses(self):
        """Edge marks created long after the source transaction's
        accesses (or attributed by ICD to a thread's *next* transaction,
        whose log starts later) must not hold their stream in the heap
        at the creation seq: a trailing source mark with a large seq
        used to block its whole stream — including a second source mark
        another stream was parked on — letting a third stream's later
        accesses overtake the parked earlier ones, deriving a phantom
        backwards dependence and a false-positive cycle."""
        x1 = make_tx(1, "TX")  # writes f early
        x2 = make_tx(2, "TX")  # ICD attributes a later edge to it
        y = make_tx(3, "TY")   # reads then writes f in the middle
        z = make_tx(4, "TZ")   # writes f last
        log(x1, W, 1, "f", 10)
        log(y, R, 1, "f", 20)
        # an edge attributed to TX's *next* transaction: its source
        # mark opens x2's (still empty) log, its sink parks TY's
        # stream before the seq-28 write
        link(x2, y, 27)
        log(y, W, 1, "f", 28)
        log(z, W, 1, "f", 45)
        # a late edge anchored at the END of x1's log with seq 51: the
        # TX stream must emit it before reaching x2's source mark, so
        # the old heap held TX at priority 51 while TZ's seq-45 write
        # overtook TY's parked seq-28 write
        link(x1, z, 51)
        pcd = PCD()
        violations = pcd.process([x1, x2, y, z])
        # true access order 10 < 20 < 28 < 45 is acyclic: x1->y->z
        assert violations == []
        assert pcd.stats.order_fallbacks == 0


class TestInputHandling:
    def test_components_smaller_than_two_skipped(self):
        a = make_tx(1, "T1")
        log(a, W, 1, "f", 1)
        assert PCD().process([a]) == []

    def test_transactions_without_logs_skipped(self):
        a = make_tx(1, "T1")
        log(a, W, 1, "f", 1)
        b = Transaction(2, "T2", "m2", False)  # no log (unmonitored)
        b.finished = True
        assert PCD().process([a, b]) == []

    def test_memory_budget_enforced(self):
        a = make_tx(1, "T1")
        b = make_tx(2, "T2")
        for i in range(50):
            log(a, W, 1, f"f{i}", i)
            log(b, R, 1, f"f{i}", 100 + i)
        with pytest.raises(OutOfMemoryBudget):
            PCD(memory_budget=10).process([a, b])

    def test_stats_accumulate(self):
        pcd = PCD()
        a = make_tx(1, "T1")
        b = make_tx(2, "T2")
        log(a, W, 1, "f", 1)
        log(b, R, 1, "f", 2)
        pcd.process([a, b])
        assert pcd.stats.components_processed == 1
        assert pcd.stats.transactions_processed == 2
        assert pcd.stats.accesses_replayed == 2
        assert pcd.stats.pdg_edges == 1
